"""Naive reference implementation of the packing model.

This module preserves the original, allocation-heavy packer exactly as
it shipped before the incremental kernel rewrite of
:mod:`repro.schedulers.packing`. It is the *executable specification*
of the schedule model: a stepwise-constant free-capacity timeline whose
breakpoints are maintained with ``np.insert`` and rebuilt from scratch
for every permutation evaluation.

It is deliberately slow (O(k) array reallocation per breakpoint, full
rebuild per pack) and deliberately retained:

* the randomized equivalence tests assert that the incremental kernel
  produces **bit-identical** placements and profile states against this
  reference on arbitrary workloads;
* ``repro-sched bench`` uses it as the "before" side of the replanning
  speedup measurement, so the reported speedup is measured against the
  real prior implementation rather than a synthetic strawman.

Do not optimize this module. Behavioral changes here must be mirrored
in :mod:`repro.schedulers.packing` and vice versa.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.schedulers.packing import PackedJob, PackingError
from repro.sim.job import Job


class ReferenceResourceProfile:
    """The original ``np.insert``-based stepwise capacity timeline."""

    def __init__(
        self,
        origin: float,
        free_nodes: float,
        free_memory_gb: float,
        releases: Iterable[tuple[float, float, float]] = (),
    ) -> None:
        deltas: dict[float, list[float]] = {}
        for time, nodes, mem in releases:
            t = max(float(time), origin)
            slot = deltas.setdefault(t, [0.0, 0.0])
            slot[0] += nodes
            slot[1] += mem
        times = [origin] + sorted(t for t in deltas if t > origin)
        k = len(times)
        fn = np.empty(k)
        fm = np.empty(k)
        cur_n, cur_m = float(free_nodes), float(free_memory_gb)
        if origin in deltas:
            cur_n += deltas[origin][0]
            cur_m += deltas[origin][1]
        fn[0], fm[0] = cur_n, cur_m
        for i, t in enumerate(times[1:], start=1):
            cur_n += deltas[t][0]
            cur_m += deltas[t][1]
            fn[i], fm[i] = cur_n, cur_m
        self.times = np.array(times)
        self.free_nodes = fn
        self.free_memory = fm

    # -- queries ----------------------------------------------------------
    def earliest_start(
        self,
        nodes: float,
        memory_gb: float,
        duration: float,
        not_before: float,
    ) -> float:
        times = self.times
        k = times.size
        feas = (self.free_nodes >= nodes - 1e-9) & (
            self.free_memory >= memory_gb - 1e-9
        )
        cb = np.concatenate(([0], np.cumsum(~feas)))
        starts = np.maximum(times, not_before)
        ends_idx = np.searchsorted(times, starts + duration, side="left")
        ok = feas & (cb[ends_idx] - cb[np.arange(k)] == 0)
        if k > 1:
            interval_end = np.concatenate((times[1:], [np.inf]))
            ok &= interval_end > not_before
        idx = np.flatnonzero(ok)
        if idx.size == 0:
            raise PackingError(
                f"request for {nodes} nodes / {memory_gb:g} GB × "
                f"{duration:g}s never fits this profile"
            )
        return float(starts[idx[0]])

    def capacity_at(self, time: float) -> tuple[float, float]:
        i = int(np.searchsorted(self.times, time, side="right")) - 1
        i = max(i, 0)
        return float(self.free_nodes[i]), float(self.free_memory[i])

    # -- mutation -----------------------------------------------------------
    def _ensure_breakpoint(self, t: float) -> None:
        i = int(np.searchsorted(self.times, t, side="left"))
        if i < self.times.size and self.times[i] == t:
            return
        prev = max(i - 1, 0)
        self.times = np.insert(self.times, i, t)
        self.free_nodes = np.insert(self.free_nodes, i, self.free_nodes[prev])
        self.free_memory = np.insert(
            self.free_memory, i, self.free_memory[prev]
        )

    def reserve(
        self, start: float, duration: float, nodes: float, memory_gb: float
    ) -> None:
        end = start + duration
        self._ensure_breakpoint(start)
        self._ensure_breakpoint(end)
        i = int(np.searchsorted(self.times, start, side="left"))
        j = int(np.searchsorted(self.times, end, side="left"))
        if np.any(self.free_nodes[i:j] < nodes - 1e-9) or np.any(
            self.free_memory[i:j] < memory_gb - 1e-9
        ):
            raise PackingError(
                f"reservation [{start:g}, {end:g}) for {nodes} nodes / "
                f"{memory_gb:g} GB oversubscribes the profile"
            )
        self.free_nodes[i:j] -= nodes
        self.free_memory[i:j] -= memory_gb


def reference_pack_order(
    jobs: Sequence[Job],
    *,
    now: float,
    free_nodes: float,
    free_memory_gb: float,
    releases: Iterable[tuple[float, float, float]] = (),
) -> list[PackedJob]:
    """Full-rebuild serial schedule-generation scheme (the original
    :func:`repro.schedulers.packing.pack_order`)."""
    profile = ReferenceResourceProfile(
        now, free_nodes, free_memory_gb, releases
    )
    placements: list[PackedJob] = []
    for job in jobs:
        start = profile.earliest_start(
            job.nodes, job.memory_gb, job.duration,
            not_before=max(now, job.submit_time),
        )
        profile.reserve(start, job.duration, job.nodes, job.memory_gb)
        placements.append(PackedJob(job, start))
    return placements
