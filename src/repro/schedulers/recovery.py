"""Shared recovery-aware planning helpers for the plan-based
optimizers (annealer, GA).

Both optimizers decode job-priority permutations against the packing
model; under disruptions they need the same two adjustments before
packing, factored here so the logic cannot drift between them:

* :func:`effective_jobs` — checkpoint-restarted jobs only have their
  *remaining* runtime left; plan with that instead of the original
  duration. On undisrupted runs the mapping is empty and the original
  ``Job`` objects pass through untouched (bit-identical planning).
* :func:`split_unpackable` — with nodes failed (offline and not
  restored by any release in the planning horizon) a job can exceed
  the profile's eventual capacity and would never pack; such jobs are
  parked (planned at ``+inf``) until repairs restore capacity instead
  of crashing the packer. Skipped entirely on healthy clusters.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

from repro.sim.job import Job
from repro.sim.simulator import SystemView


def effective_jobs(view: SystemView, jobs: Sequence[Job]) -> list[Job]:
    """Remap *jobs* to their remaining runtimes (no-op when none)."""
    rem = view.remaining_runtimes
    if not rem:
        return list(jobs)
    return [
        replace(j, duration=rem[j.job_id]) if j.job_id in rem else j
        for j in jobs
    ]


def split_unpackable(
    view: SystemView,
    jobs: Sequence[Job],
    releases: Iterable[tuple[float, float, float]],
) -> tuple[list[Job], list[Job]]:
    """Split *jobs* into (packable, unpackable) against the eventual
    capacity of a planning profile built from *releases*.

    *releases* is whatever ``(time, nodes, memory_gb)`` stream the
    caller packs with — running-job completions, plus drain notches
    for drain-aware planners. Eventual capacity is current free plus
    every delta; node capacity is non-decreasing outside drain notches,
    so a job fits some interval iff it fits the eventual capacity.
    """
    if view.nodes_offline <= 0:
        return list(jobs), []
    eventual_nodes = view.free_nodes + sum(r[1] for r in releases)
    eventual_mem = view.free_memory_gb + sum(r[2] for r in releases)
    packable: list[Job] = []
    unpackable: list[Job] = []
    for j in jobs:
        if j.nodes <= eventual_nodes and j.memory_gb <= eventual_mem + 1e-9:
            packable.append(j)
        else:
            unpackable.append(j)
    return packable, unpackable
