"""Shared recovery-aware planning helpers for the plan-based
optimizers (annealer, GA).

Both optimizers decode job-priority permutations against the packing
model; under disruptions they need the same two adjustments before
packing, factored here so the logic cannot drift between them:

* :func:`effective_jobs` — checkpoint-restarted jobs only have their
  *remaining* runtime left; plan with that instead of the original
  duration. On undisrupted runs the mapping is empty and the original
  ``Job`` objects pass through untouched (bit-identical planning).
* :func:`split_unpackable` — with nodes failed (offline and not
  restored by any release in the planning horizon) a job can exceed
  the profile's eventual capacity and would never pack; such jobs are
  parked (planned at ``+inf``) until repairs restore capacity instead
  of crashing the packer. Skipped entirely on healthy clusters.

With a non-flat :class:`~repro.sim.topology.ClusterTopology` the view
additionally carries per-domain free capacity, and this module grows
the *spread-across-domains* placement helpers: :func:`domain_pressures`
(announced domain-scoped drain load per rack),
:func:`fits_healthy_domain` (can a requeued job restart somewhere
*outside* the failing/draining domain?), and :func:`spread_requeue`
(demote requeued jobs that currently have no healthy domain to restart
into). All of them are identity/no-op on flat topologies, so
recovery-aware policies stay byte-identical on legacy runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from repro.sim.job import Job
from repro.sim.simulator import SystemView


def effective_jobs(view: SystemView, jobs: Sequence[Job]) -> list[Job]:
    """Remap *jobs* to their remaining runtimes (no-op when none)."""
    rem = view.remaining_runtimes
    if not rem:
        return list(jobs)
    return [
        replace(j, duration=rem[j.job_id]) if j.job_id in rem else j
        for j in jobs
    ]


def split_unpackable(
    view: SystemView,
    jobs: Sequence[Job],
    releases: Iterable[tuple[float, float, float]],
) -> tuple[list[Job], list[Job]]:
    """Split *jobs* into (packable, unpackable) against the eventual
    capacity of a planning profile built from *releases*.

    *releases* is whatever ``(time, nodes, memory_gb)`` stream the
    caller packs with — running-job completions, plus drain notches
    for drain-aware planners. Eventual capacity is current free plus
    every delta; node capacity is non-decreasing outside drain notches,
    so a job fits some interval iff it fits the eventual capacity.
    """
    if view.nodes_offline <= 0:
        return list(jobs), []
    eventual_nodes = view.free_nodes + sum(r[1] for r in releases)
    eventual_mem = view.free_memory_gb + sum(r[2] for r in releases)
    packable: list[Job] = []
    unpackable: list[Job] = []
    for j in jobs:
        if j.nodes <= eventual_nodes and j.memory_gb <= eventual_mem + 1e-9:
            packable.append(j)
        else:
            unpackable.append(j)
    return packable, unpackable


# ---------------------------------------------------------------------------
# Spread-across-domains placement (topology-aware recovery)
# ---------------------------------------------------------------------------

def domain_pressures(view: SystemView) -> tuple[int, ...]:
    """Per-rack node count claimed by announced, not-yet-started,
    domain-scoped drains.

    An announced rack drain is *one* capacity notch against that rack
    — never N per-node events — so the pressure for rack *r* is the
    peak of its scoped windows' node counts (windows on one domain
    come from one maintenance plan; overlapping re-announcements do
    not stack). Unscoped drains have no domain to charge and are
    already handled by the aggregate ``drain_safe`` capacity test.
    Empty for flat/absent topologies.
    """
    topo = view.topology
    if topo is None or topo.is_flat:
        return ()
    pressure = [0] * topo.n_racks
    for d in view.upcoming_drains:
        if d.domain is None or d.start <= view.now:
            continue
        nodes = topo.domain_range(d.domain)
        for rack in range(
            topo.rack_of(nodes.start), topo.rack_of(nodes.stop - 1) + 1
        ):
            pressure[rack] = max(pressure[rack], d.nodes)
    return tuple(pressure)


def fits_healthy_domain(
    view: SystemView,
    job: Job,
    pressures: "tuple[int, ...] | None" = None,
) -> bool:
    """Can *job* start inside at least one domain that is neither
    failing nor about to drain out from under it?

    Single-rack jobs need one rack with enough healthy capacity. Jobs
    wider than one rack necessarily spread across racks, but can still
    live inside a single *switch group*: they fit healthily when some
    group's racks jointly offer the nodes after subtracting announced
    drain pressure. Jobs wider than a whole switch group span groups
    no matter what — the aggregate drain/capacity tests govern them
    (vacuously True here, as for flat/absent topologies). Used to keep
    requeued work from being restarted straight back into the domain
    whose shock or announced drain just evicted it.
    """
    if not view.has_domains:
        return True
    topo = view.topology
    if pressures is None:
        pressures = domain_pressures(view)
    free = view.domain_free_nodes
    if job.nodes > topo.rack_size:
        if job.nodes > topo.rack_size * topo.racks_per_switch:
            return True
        # Switch-group level: spread across the group's racks, but stay
        # behind one healthy switch.
        for switch in range(topo.n_switches):
            lo = switch * topo.racks_per_switch
            hi = min(lo + topo.racks_per_switch, topo.n_racks)
            group_free = sum(
                free[r] - (pressures[r] if pressures else 0)
                for r in range(lo, hi)
                if free[r] > (pressures[r] if pressures else 0)
            )
            if job.nodes <= group_free:
                return True
        return False
    for rack, rack_free in enumerate(free):
        drained = pressures[rack] if pressures else 0
        if job.nodes <= rack_free - drained:
            return True
    return False


def healthy_domain_mask(
    view: SystemView,
    nodes: np.ndarray,
    pressures: "tuple[int, ...] | None" = None,
) -> np.ndarray:
    """Vectorized :func:`fits_healthy_domain` over a node-count column.

    One boolean per entry of *nodes* (a per-job node-request vector in
    any order the caller likes), elementwise-identical to calling the
    scalar predicate per job: the test depends on a job only through
    its node count, so the three placement levels collapse to three
    scalar capacity ceilings computed once —

    * single-rack jobs (``nodes <= rack_size``) need the best rack's
      post-pressure headroom,
    * switch-group jobs need the best group's summed *positive*
      headroom (racks at or below their drain pressure contribute
      nothing, exactly like the scalar loop's ``free > pressure``
      guard),
    * group-spanning jobs are vacuously True.

    All-True (no copy semantics beyond one array) when the view has no
    real failure domains.
    """
    n = len(nodes)
    if not view.has_domains:
        return np.ones(n, dtype=bool)
    topo = view.topology
    if pressures is None:
        pressures = domain_pressures(view)
    free = np.asarray(view.domain_free_nodes, dtype=np.int64)
    if pressures:
        headroom = free - np.asarray(pressures, dtype=np.int64)
    else:
        headroom = free
    rack_cap = int(headroom.max())
    rack_size = topo.rack_size
    group_size = rack_size * topo.racks_per_switch
    nodes = np.asarray(nodes)
    mask = nodes <= rack_cap
    over_rack = nodes > rack_size
    if over_rack.any():
        positive = np.maximum(headroom, 0)
        starts = np.arange(0, topo.n_racks, topo.racks_per_switch)
        group_cap = int(np.add.reduceat(positive, starts).max())
        np.copyto(mask, nodes <= group_cap, where=over_rack)
        mask |= nodes > group_size
    return mask


def spread_requeue(view: SystemView, jobs: Sequence[Job]) -> list[Job]:
    """Stable reorder of *jobs* demoting requeued jobs with no healthy
    domain to restart into.

    Requeued jobs (present in ``view.remaining_runtimes``) that
    :func:`fits_healthy_domain` rejects move to the back of the order
    — they wait for repairs / drain ends instead of being re-placed in
    the failing domain — while everything else keeps its relative
    order. Identity on flat topologies and undisrupted runs (no
    remapping, no reorder), so plan-based optimizers consuming this are
    bit-identical there.
    """
    if not view.has_domains or not view.remaining_runtimes:
        return list(jobs)
    pressures = domain_pressures(view)
    healthy: list[Job] = []
    parked: list[Job] = []
    for job in jobs:
        if job.job_id in view.remaining_runtimes and not fits_healthy_domain(
            view, job, pressures
        ):
            parked.append(job)
        else:
            healthy.append(job)
    return healthy + parked
