"""Scheduler registry: names → factories.

The experiment harness refers to policies by name (matching the
paper's figure legends); this module centralizes construction so every
entry point builds schedulers identically. LLM-agent entries are
registered lazily by :mod:`repro.core` to keep the dependency direction
clean (core builds on schedulers, not vice versa).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.schedulers.base import BaseScheduler
from repro.schedulers.fcfs import EasyBackfillScheduler, FCFSScheduler
from repro.schedulers.heuristics import (
    FirstFitScheduler,
    LargestFirstScheduler,
    RandomScheduler,
)
from repro.schedulers.genetic import GeneticOptimizer
from repro.schedulers.optimizer import AnnealingConfig, AnnealingOptimizer
from repro.schedulers.sjf import SJFScheduler

SchedulerFactory = Callable[..., BaseScheduler]


def _annealer_factory(
    seed: int = 0,
    anneal_window: Optional[int] = None,
    config: Optional[AnnealingConfig] = None,
    use_columns: Optional[bool] = None,
    **kw,
) -> AnnealingOptimizer:
    """``ortools_like`` factory; ``anneal_window`` overlays the
    windowed-replanning knob onto the (possibly explicit) config."""
    if anneal_window is not None:
        config = (
            dataclasses.replace(config, window=anneal_window)
            if config is not None
            else AnnealingConfig(window=anneal_window)
        )
    return AnnealingOptimizer(
        seed=seed, config=config, use_columns=use_columns, **kw
    )


SCHEDULER_FACTORIES: Dict[str, SchedulerFactory] = {
    "fcfs": lambda seed=0, use_columns=None, **kw: FCFSScheduler(
        use_columns=use_columns
    ),
    "fcfs_backfill": lambda seed=0, use_columns=None, **kw: (
        EasyBackfillScheduler(use_columns=use_columns)
    ),
    "sjf": lambda seed=0, use_columns=None, **kw: SJFScheduler(
        strict=True, use_columns=use_columns
    ),
    "sjf_firstfit": lambda seed=0, use_columns=None, **kw: SJFScheduler(
        strict=False, use_columns=use_columns
    ),
    "ortools_like": _annealer_factory,
    "genetic": lambda seed=0, **kw: GeneticOptimizer(seed=seed, **kw),
    "first_fit": lambda seed=0, use_columns=None, **kw: FirstFitScheduler(
        use_columns=use_columns
    ),
    "largest_first": lambda seed=0, use_columns=None, **kw: (
        LargestFirstScheduler(use_columns=use_columns)
    ),
    "random": lambda seed=0, **kw: RandomScheduler(seed=seed),
}

#: Schedulers that consume the ``anneal_window`` option; the harness
#: only forwards the flag (and decorates the recorded scheduler label)
#: for these — ``--anneal-window`` on a mixed matrix leaves every other
#: policy, and its cell identity, untouched.
WINDOW_AWARE_SCHEDULERS: frozenset[str] = frozenset({"ortools_like"})

#: Schedulers with a columnar decision kernel (``supports_columns`` on
#: the class). Columnar is the default for these; ``use_columns=False``
#: at construction selects the byte-identical facade twin the parity
#: tests diff against.
COLUMNAR_SCHEDULERS: frozenset[str] = frozenset(
    {
        "fcfs",
        "fcfs_backfill",
        "sjf",
        "sjf_firstfit",
        "first_fit",
        "largest_first",
        "ortools_like",
        "genetic",
    }
)


def supports_anneal_window(name: str) -> bool:
    """Does the named scheduler consume the ``anneal_window`` option?"""
    return name in WINDOW_AWARE_SCHEDULERS


def supports_columns(name: str) -> bool:
    """Does the named scheduler have a columnar decision kernel?"""
    return name in COLUMNAR_SCHEDULERS


def register_scheduler(name: str, factory: SchedulerFactory) -> None:
    """Add (or replace) a named scheduler factory."""
    SCHEDULER_FACTORIES[name] = factory


def create_scheduler(name: str, seed: int = 0, **kwargs) -> BaseScheduler:
    """Instantiate a scheduler by registry name.

    LLM-agent names (``claude-3.7-sim``, ``o4-mini-sim``) become
    available once :mod:`repro.core` is imported; importing
    :mod:`repro` top-level does that automatically.
    """
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(sorted(SCHEDULER_FACTORIES))}"
        ) from None
    return factory(seed=seed, **kwargs)


def available_schedulers() -> list[str]:
    """Sorted list of registered scheduler names."""
    return sorted(SCHEDULER_FACTORIES)
