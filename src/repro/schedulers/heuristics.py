"""Additional simple policies used for ablations and testing.

None of these appear in the paper's comparison; they exist to bracket
the baselines (how much of the LLM agent's advantage is explained by
plain greedy packing?) and to exercise the simulator under policies
with different structural behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.simulator import SystemView


class FirstFitScheduler(BaseScheduler):
    """Start the first queued job (arrival order) that fits right now.

    FCFS with queue-order skipping — a minimal backfilling-like policy
    with no reservation guarantee (long jobs can starve).
    """

    name = "first_fit"
    supports_columns = True

    def decide(self, view: SystemView) -> Action:
        if self.columnar(view):
            cols = view.columns()
            hits = np.flatnonzero(cols.fits_mask())
            if hits.size:
                return StartJob(cols.id_at(int(hits[0])))
            return Delay
        # Inlined can_fit with hoisted capacity locals: this scan runs
        # once per decision over the whole queue.
        free_nodes = view.free_nodes
        free_mem = view.free_memory_gb + 1e-9
        for job in view.queued:
            if job.nodes <= free_nodes and job.memory_gb <= free_mem:
                return StartJob(job.job_id)
        return Delay


class LargestFirstScheduler(BaseScheduler):
    """Start the feasible job with the largest node-seconds footprint.

    A greedy packing heuristic (LPT flavour) that tends to optimize
    makespan/utilization while ignoring wait-time fairness — a cheap
    sanity bracket for the optimizer.
    """

    name = "largest_first"
    supports_columns = True

    def decide(self, view: SystemView) -> Action:
        if self.columnar(view):
            cols = view.columns()
            feasible = np.flatnonzero(cols.fits_mask())
            if not feasible.size:
                return Delay
            # max by (node_seconds, job_id): ids are unique, so the
            # lexsort's last entry is exactly the facade's max-key job.
            winner = feasible[
                np.lexsort(
                    (cols.ids[feasible], cols.node_seconds[feasible])
                )[-1]
            ]
            return StartJob(cols.id_at(int(winner)))
        # Single pass: track the max feasible job instead of
        # materializing the feasible tuple first.
        free_nodes = view.free_nodes
        free_mem = view.free_memory_gb + 1e-9
        best = None
        best_key = None
        for job in view.queued:
            if job.nodes <= free_nodes and job.memory_gb <= free_mem:
                key = (job.node_seconds, job.job_id)
                if best_key is None or key > best_key:
                    best, best_key = job, key
        if best is None:
            return Delay
        return StartJob(best.job_id)


class RandomScheduler(BaseScheduler):
    """Start a uniformly random feasible job.

    Useful as a stochastic chaff policy in property tests: any
    invariant the simulator guarantees must hold under arbitrary
    feasible choices.
    """

    name = "random"

    def __init__(self, seed: int | np.random.SeedSequence = 0):
        super().__init__()
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)

    def decide(self, view: SystemView) -> Action:
        feasible = view.feasible_jobs()
        if not feasible:
            return Delay
        pick = feasible[int(self._rng.integers(0, len(feasible)))]
        return StartJob(pick.job_id)


class DelayingScheduler(BaseScheduler):
    """Always delays for *n* decisions before behaving like first-fit.

    Exists purely for simulator tests (retry/deadlock handling).
    """

    name = "delaying"

    def __init__(self, delays: int = 0):
        super().__init__()
        self.delays = delays
        self._count = 0

    def reset(self) -> None:
        super().reset()
        self._count = 0

    def decide(self, view: SystemView) -> Action:
        if self._count < self.delays:
            self._count += 1
            return Delay
        for job in view.queued:
            if view.can_fit(job):
                return StartJob(job.job_id)
        return Delay
