"""Resource-profile packing: the optimizer's schedule model.

A :class:`ResourceProfile` is a stepwise-constant timeline of free
(node, memory) capacity with breakpoints at reservation starts/ends and
at the expected release times of already-running jobs. The serial
schedule-generation scheme (:func:`pack_order`) places a permutation of
jobs at their earliest feasible start times against the profile — the
classic list-scheduling construction the annealing optimizer searches
over, and the same model EASY backfilling uses for reservations.

The feasibility scan is numpy-vectorized (prefix sums of infeasible
intervals + ``searchsorted``), keeping a full 100-job packing in the
hundreds of microseconds so the annealer can afford hundreds of
evaluations per replanning event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.sim.job import Job


class PackingError(RuntimeError):
    """Raised when a reservation would drive free capacity negative."""


class ResourceProfile:
    """Stepwise free-capacity timeline supporting earliest-fit queries.

    Parameters
    ----------
    origin:
        Left edge of the timeline (current simulation time); queries
        never return starts before it.
    free_nodes / free_memory_gb:
        Free capacity at the origin.
    releases:
        ``(time, nodes, memory_gb)`` triples for resources that will be
        freed in the future (expected completions of running jobs).
        Times before the origin are clamped to it.
    """

    def __init__(
        self,
        origin: float,
        free_nodes: float,
        free_memory_gb: float,
        releases: Iterable[tuple[float, float, float]] = (),
    ) -> None:
        deltas: dict[float, list[float]] = {}
        for time, nodes, mem in releases:
            t = max(float(time), origin)
            slot = deltas.setdefault(t, [0.0, 0.0])
            slot[0] += nodes
            slot[1] += mem
        times = [origin] + sorted(t for t in deltas if t > origin)
        k = len(times)
        fn = np.empty(k)
        fm = np.empty(k)
        cur_n, cur_m = float(free_nodes), float(free_memory_gb)
        if origin in deltas:
            cur_n += deltas[origin][0]
            cur_m += deltas[origin][1]
        fn[0], fm[0] = cur_n, cur_m
        for i, t in enumerate(times[1:], start=1):
            cur_n += deltas[t][0]
            cur_m += deltas[t][1]
            fn[i], fm[i] = cur_n, cur_m
        self.times = np.array(times)
        self.free_nodes = fn
        self.free_memory = fm

    # -- queries ----------------------------------------------------------
    def earliest_start(
        self,
        nodes: float,
        memory_gb: float,
        duration: float,
        not_before: float,
    ) -> float:
        """Earliest ``t >= not_before`` such that ``nodes``/``memory_gb``
        are free throughout ``[t, t + duration)``.

        Raises
        ------
        PackingError
            If no interval ever has enough capacity (request exceeds the
            profile's eventual maximum).
        """
        times = self.times
        k = times.size
        feas = (self.free_nodes >= nodes - 1e-9) & (
            self.free_memory >= memory_gb - 1e-9
        )
        # cb[i] = number of infeasible intervals among the first i.
        cb = np.concatenate(([0], np.cumsum(~feas)))
        starts = np.maximum(times, not_before)
        ends_idx = np.searchsorted(times, starts + duration, side="left")
        ok = feas & (cb[ends_idx] - cb[np.arange(k)] == 0)
        # Ignore intervals that end before not_before (their clamped
        # start falls in a later interval that is checked on its own).
        if k > 1:
            interval_end = np.concatenate((times[1:], [np.inf]))
            ok &= interval_end > not_before
        idx = np.flatnonzero(ok)
        if idx.size == 0:
            raise PackingError(
                f"request for {nodes} nodes / {memory_gb:g} GB × "
                f"{duration:g}s never fits this profile"
            )
        return float(starts[idx[0]])

    def capacity_at(self, time: float) -> tuple[float, float]:
        """Free (nodes, memory) at *time* (clamped to the origin)."""
        i = int(np.searchsorted(self.times, time, side="right")) - 1
        i = max(i, 0)
        return float(self.free_nodes[i]), float(self.free_memory[i])

    # -- mutation -----------------------------------------------------------
    def _ensure_breakpoint(self, t: float) -> None:
        i = int(np.searchsorted(self.times, t, side="left"))
        if i < self.times.size and self.times[i] == t:
            return
        prev = max(i - 1, 0)
        self.times = np.insert(self.times, i, t)
        self.free_nodes = np.insert(self.free_nodes, i, self.free_nodes[prev])
        self.free_memory = np.insert(
            self.free_memory, i, self.free_memory[prev]
        )

    def reserve(
        self, start: float, duration: float, nodes: float, memory_gb: float
    ) -> None:
        """Subtract capacity over ``[start, start + duration)``.

        Raises :class:`PackingError` if the reservation oversubscribes
        any interval (callers should have used :meth:`earliest_start`).
        """
        end = start + duration
        self._ensure_breakpoint(start)
        self._ensure_breakpoint(end)
        i = int(np.searchsorted(self.times, start, side="left"))
        j = int(np.searchsorted(self.times, end, side="left"))
        if np.any(self.free_nodes[i:j] < nodes - 1e-9) or np.any(
            self.free_memory[i:j] < memory_gb - 1e-9
        ):
            raise PackingError(
                f"reservation [{start:g}, {end:g}) for {nodes} nodes / "
                f"{memory_gb:g} GB oversubscribes the profile"
            )
        self.free_nodes[i:j] -= nodes
        self.free_memory[i:j] -= memory_gb


@dataclass(frozen=True)
class PackedJob:
    """One job placement produced by the packer."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.duration


def pack_order(
    jobs: Sequence[Job],
    *,
    now: float,
    free_nodes: float,
    free_memory_gb: float,
    releases: Iterable[tuple[float, float, float]] = (),
) -> list[PackedJob]:
    """Serial schedule-generation scheme over a job permutation.

    Places each job of *jobs*, in the given order, at its earliest
    feasible start (never before its submit time or *now*) against a
    shared :class:`ResourceProfile`. Later jobs in the order may start
    earlier in time if they fit into gaps — permutations are priority
    lists, not start-time orders.
    """
    profile = ResourceProfile(now, free_nodes, free_memory_gb, releases)
    placements: list[PackedJob] = []
    for job in jobs:
        start = profile.earliest_start(
            job.nodes, job.memory_gb, job.duration,
            not_before=max(now, job.submit_time),
        )
        profile.reserve(start, job.duration, job.nodes, job.memory_gb)
        placements.append(PackedJob(job, start))
    return placements


def plan_makespan(placements: Sequence[PackedJob], now: float) -> float:
    """Makespan of a packed plan measured from *now*."""
    if not placements:
        return 0.0
    return max(p.end for p in placements) - now


def plan_total_completion(placements: Sequence[PackedJob]) -> float:
    """Sum of completion times (the flow-time tiebreak objective)."""
    return float(sum(p.end for p in placements))
