"""Resource-profile packing: the optimizer's schedule model.

A :class:`ResourceProfile` is a stepwise-constant timeline of free
(node, memory) capacity with breakpoints at reservation starts/ends and
at the expected release times of already-running jobs. The serial
schedule-generation scheme (:func:`pack_order`) places a permutation of
jobs at their earliest feasible start times against the profile — the
classic list-scheduling construction the annealing optimizer searches
over, and the same model EASY backfilling uses for reservations.

The profile is the replanning hot path, so it is engineered for
evaluation throughput:

* breakpoints live in **flat preallocated arrays** with in-place
  shifting on insert — no per-reservation ``np.insert`` reallocation
  (three fresh arrays per breakpoint in the naive model, retained in
  :mod:`repro.schedulers.packing_reference`);
* the full profile state can be captured and restored in O(k)
  (:meth:`ResourceProfile.snapshot` / :meth:`ResourceProfile.restore`),
  which :class:`IncrementalPacker` uses to cache prefix-pack states so
  a candidate permutation differing from the incumbent only from
  position *m* onward re-packs just the suffix.

Every query and mutation performs the *same floating-point operations
in the same order* as the reference implementation, so placements,
objectives, and therefore entire seeded annealing trajectories are
bit-identical — verified by ``tests/test_packing_equivalence.py``.

The feasibility scan is numpy-vectorized (prefix sums of infeasible
intervals + ``searchsorted``), keeping a full 100-job packing in the
hundreds of microseconds so the annealer can afford hundreds of
evaluations per replanning event.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.sim.job import Job


class PackingError(RuntimeError):
    """Raised when a reservation would drive free capacity negative."""


@dataclass(frozen=True)
class ProfileSnapshot:
    """An O(k) copy of a profile's breakpoint state.

    Immutable by convention: the arrays are private copies made by
    :meth:`ResourceProfile.snapshot` and are only read back by
    :meth:`ResourceProfile.restore`.
    """

    size: int
    times: np.ndarray
    free_nodes: np.ndarray
    free_memory: np.ndarray


class ResourceProfile:
    """Stepwise free-capacity timeline supporting earliest-fit queries.

    Parameters
    ----------
    origin:
        Left edge of the timeline (current simulation time); queries
        never return starts before it.
    free_nodes / free_memory_gb:
        Free capacity at the origin.
    releases:
        ``(time, nodes, memory_gb)`` triples for resources that will be
        freed in the future (expected completions of running jobs).
        Times before the origin are clamped to it.
    """

    __slots__ = ("_times", "_fn", "_fm", "_size", "_b_feas", "_b_tmp")

    def __init__(
        self,
        origin: float,
        free_nodes: float,
        free_memory_gb: float,
        releases: Iterable[tuple[float, float, float]] = (),
    ) -> None:
        deltas: dict[float, list[float]] = {}
        for time, nodes, mem in releases:
            t = max(float(time), origin)
            slot = deltas.setdefault(t, [0.0, 0.0])
            slot[0] += nodes
            slot[1] += mem
        times = [origin] + sorted(t for t in deltas if t > origin)
        k = len(times)
        # Preallocate headroom: each later reservation adds at most two
        # breakpoints, so 2k+16 defers the first regrow past typical
        # replan sizes; _grow doubles beyond that.
        self._alloc(2 * k + 16)
        self._size = k
        self._times[:k] = times
        cur_n, cur_m = float(free_nodes), float(free_memory_gb)
        if origin in deltas:
            cur_n += deltas[origin][0]
            cur_m += deltas[origin][1]
        self._fn[0], self._fm[0] = cur_n, cur_m
        for i, t in enumerate(times[1:], start=1):
            cur_n += deltas[t][0]
            cur_m += deltas[t][1]
            self._fn[i], self._fm[i] = cur_n, cur_m

    def _alloc(self, cap: int) -> None:
        """(Re)allocate breakpoint storage and the scratch buffers the
        query path writes into instead of allocating temporaries."""
        self._times = np.empty(cap)
        self._fn = np.empty(cap)
        self._fm = np.empty(cap)
        self._b_feas = np.empty(cap, dtype=bool)
        self._b_tmp = np.empty(cap, dtype=bool)

    # -- views -------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view of the live prefix)."""
        return self._times[: self._size]

    @property
    def free_nodes(self) -> np.ndarray:
        """Free node capacity per interval (read-only view)."""
        return self._fn[: self._size]

    @property
    def free_memory(self) -> np.ndarray:
        """Free memory capacity per interval (read-only view)."""
        return self._fm[: self._size]

    # -- snapshot / rollback ------------------------------------------------
    def snapshot(self) -> ProfileSnapshot:
        """Capture the full breakpoint state in O(k)."""
        k = self._size
        return ProfileSnapshot(
            size=k,
            times=self._times[:k].copy(),
            free_nodes=self._fn[:k].copy(),
            free_memory=self._fm[:k].copy(),
        )

    def restore(self, snap: ProfileSnapshot) -> None:
        """Roll the profile back to *snap* in O(k)."""
        k = snap.size
        if k > self._times.size:
            self._grow(k)
        self._times[:k] = snap.times
        self._fn[:k] = snap.free_nodes
        self._fm[:k] = snap.free_memory
        self._size = k

    def _grow(self, need: int) -> None:
        cap = max(2 * self._times.size, need + 16)
        k = self._size
        old_times, old_fn, old_fm = self._times, self._fn, self._fm
        self._alloc(cap)
        self._times[:k] = old_times[:k]
        self._fn[:k] = old_fn[:k]
        self._fm[:k] = old_fm[:k]

    # -- queries ----------------------------------------------------------
    def earliest_start(
        self,
        nodes: float,
        memory_gb: float,
        duration: float,
        not_before: float,
    ) -> float:
        """Earliest ``t >= not_before`` such that ``nodes``/``memory_gb``
        are free throughout ``[t, t + duration)``.

        Raises
        ------
        PackingError
            If no interval ever has enough capacity (request exceeds the
            profile's eventual maximum).
        """
        # Early-exit scan, equivalent interval-by-interval to the
        # reference's full-vector formula (same clamping arithmetic,
        # same searchsorted sides), so the returned start is
        # bit-identical. Candidate intervals are visited in index
        # order with two provably-safe skips:
        #
        # * intervals ending at or before ``not_before`` can never be
        #   the answer (their clamped start lies in a later interval
        #   checked on its own) — begin at the interval containing
        #   ``not_before``;
        # * when the span check fails at infeasible interval b, every
        #   candidate at or below b also spans b — resume at b + 1.
        #
        # The infeasible positions are materialized once, and a
        # monotone pointer walks them: total cost is O(k) for the
        # feasibility vector plus O(1) scalar work per probe, against
        # the reference's ~10 full-array operations per query.
        k = self._size
        times = self._times[:k]
        feas = self._b_feas[:k]
        tmp = self._b_tmp[:k]
        np.greater_equal(self._fn[:k], nodes - 1e-9, out=feas)
        np.greater_equal(self._fm[:k], memory_gb - 1e-9, out=tmp)
        feas &= tmp
        infeasible = np.flatnonzero(np.logical_not(feas, out=tmp)).tolist()
        n_inf = len(infeasible)
        i = int(times.searchsorted(not_before, side="right")) - 1
        if i < 0:
            i = 0
        ptr = bisect_left(infeasible, i)
        while i < k:
            # Advance past the infeasible run at i, if any.
            while ptr < n_inf and infeasible[ptr] == i:
                i += 1
                ptr += 1
            if i >= k:
                break
            start = times[i]
            if start < not_before:
                start = not_before
            j = int(times.searchsorted(start + duration, side="left"))
            if ptr >= n_inf or infeasible[ptr] >= j:
                return float(start)
            # Span fails at infeasible[ptr]; skip every candidate that
            # would span it too.
            i = infeasible[ptr] + 1
            ptr += 1
        raise PackingError(
            f"request for {nodes} nodes / {memory_gb:g} GB × "
            f"{duration:g}s never fits this profile"
        )

    def capacity_at(self, time: float) -> tuple[float, float]:
        """Free (nodes, memory) at *time* (clamped to the origin)."""
        i = int(np.searchsorted(self.times, time, side="right")) - 1
        i = max(i, 0)
        return float(self._fn[i]), float(self._fm[i])

    # -- mutation -----------------------------------------------------------
    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at *t* if absent; return its index."""
        k = self._size
        times = self._times
        if t > times[k - 1]:
            # Append fast path: reservations usually extend the tail.
            if k + 1 > times.size:
                self._grow(k + 1)
                times = self._times
            times[k] = t
            self._fn[k] = self._fn[k - 1]
            self._fm[k] = self._fm[k - 1]
            self._size = k + 1
            return k
        i = int(times[:k].searchsorted(t, side="left"))
        if times[i] == t:
            return i
        if k + 1 > times.size:
            self._grow(k + 1)
            times = self._times
        prev = max(i - 1, 0)
        fn_prev = self._fn[prev]
        fm_prev = self._fm[prev]
        # In-place shift (numpy buffers overlapping copies) instead of
        # allocating three fresh arrays per breakpoint.
        times[i + 1 : k + 1] = times[i:k]
        self._fn[i + 1 : k + 1] = self._fn[i:k]
        self._fm[i + 1 : k + 1] = self._fm[i:k]
        times[i] = t
        self._fn[i] = fn_prev
        self._fm[i] = fm_prev
        self._size = k + 1
        return i

    def reserve(
        self, start: float, duration: float, nodes: float, memory_gb: float
    ) -> None:
        """Subtract capacity over ``[start, start + duration)``.

        Raises :class:`PackingError` if the reservation oversubscribes
        any interval (callers should have used :meth:`earliest_start`).
        """
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        if np.any(self._fn[i:j] < nodes - 1e-9) or np.any(
            self._fm[i:j] < memory_gb - 1e-9
        ):
            raise PackingError(
                f"reservation [{start:g}, {end:g}) for {nodes} nodes / "
                f"{memory_gb:g} GB oversubscribes the profile"
            )
        self._fn[i:j] -= nodes
        self._fm[i:j] -= memory_gb

    def reserve_trusted(
        self, start: float, duration: float, nodes: float, memory_gb: float
    ) -> None:
        """:meth:`reserve` without the oversubscription re-check.

        For reservations whose feasibility is already established —
        a start just returned by :meth:`earliest_start` against this
        exact profile state, or the replay of a previously validated
        placement. The check in :meth:`reserve` can only fire on caller
        error, and it costs two full-array comparisons per placement on
        the replanning hot path.
        """
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        self._fn[i:j] -= nodes
        self._fm[i:j] -= memory_gb


@dataclass(frozen=True)
class PackedJob:
    """One job placement produced by the packer."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.duration


@dataclass
class PackStats:
    """Work counters one :class:`IncrementalPacker` accumulates.

    ``jobs_packed`` counts real placements (an ``earliest_start``
    search plus a reservation) — the unit the windowed-annealing and
    prefix-GA optimizations minimize; ``jobs_replayed`` counts
    known-reservation replays on the checkpoint-restore path, which
    cost one trusted reserve and no search. The bench's
    packed-jobs-per-accepted-move figure divides ``jobs_packed`` by
    the consumer's accepted-move count.
    """

    jobs_packed: int = 0
    jobs_replayed: int = 0
    full_packs: int = 0
    suffix_packs: int = 0
    commits: int = 0
    incumbents_saved: int = 0
    incumbents_loaded: int = 0
    incumbents_evicted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "jobs_packed": self.jobs_packed,
            "jobs_replayed": self.jobs_replayed,
            "full_packs": self.full_packs,
            "suffix_packs": self.suffix_packs,
            "commits": self.commits,
            "incumbents_saved": self.incumbents_saved,
            "incumbents_loaded": self.incumbents_loaded,
            "incumbents_evicted": self.incumbents_evicted,
        }


@dataclass
class _Incumbent:
    """One retained (order, placements, checkpoints) pack state.

    Snapshots are immutable and *shared*: an incumbent committed from a
    ``pack_from`` at pivot *c* keeps every checkpoint at or below *c*
    by reference, so a GA generation whose children share parents'
    prefixes holds one snapshot per distinct prefix state, not one per
    chromosome.
    """

    order: list[Job] = field(default_factory=list)
    placements: list[PackedJob] = field(default_factory=list)
    checkpoints: dict[int, ProfileSnapshot] = field(default_factory=dict)


class IncrementalPacker:
    """Prefix-cached serial schedule generation for one decision state.

    Built once per replanning event from the system snapshot (free
    capacity + expected releases), then used to evaluate many candidate
    permutations. The packer keeps the incumbent order's placements and
    O(k) profile snapshots at checkpoint positions; a candidate that
    shares the incumbent's prefix up to ``pivot`` (an annealing swap at
    positions ``i < j`` shares ``[0, i)``) restores the cached state at
    the pivot and packs only the suffix.

    Checkpoint density is adaptive: every position for small queues,
    every ``n // 96`` positions for large ones (restoring then replays
    at most one stride of already-known reservations — no
    ``earliest_start`` searches — to reach the pivot), bounding memory
    at ~96 snapshots while keeping restores cheap.

    All placements are produced by the identical operation sequence a
    from-scratch pack would perform, so results are bit-identical to
    :func:`pack_order` — the property the annealer's seeded trajectory
    depends on.
    """

    def __init__(
        self,
        *,
        now: float,
        free_nodes: float,
        free_memory_gb: float,
        releases: Iterable[tuple[float, float, float]] = (),
        checkpoint_stride: Optional[int] = None,
        retain_incumbents: int = 0,
    ) -> None:
        self._now = now
        self._profile = ResourceProfile(
            now, free_nodes, free_memory_gb, releases
        )
        self._base = self._profile.snapshot()
        self._stride_override = checkpoint_stride
        # Checkpoint 0 from the start so pack_from() before any pack()
        # degrades to a pivot-0 full pack instead of failing.
        self._inc = _Incumbent(checkpoints={0: self._base})
        #: Retention budget for :meth:`save_incumbent` (0 disables the
        #: cache entirely); oldest saved incumbents are evicted first.
        self._retain_incumbents = retain_incumbents
        self._saved: dict[object, _Incumbent] = {}
        self.stats = PackStats()

    @property
    def _placements(self) -> list[PackedJob]:
        # Back-compat alias used by tests/consumers predating the
        # multi-incumbent cache.
        return self._inc.placements

    def _stride_for(self, n: int) -> int:
        if self._stride_override is not None:
            return max(1, self._stride_override)
        return max(1, n // 96)

    def _place(self, job: Job) -> PackedJob:
        start = self._profile.earliest_start(
            job.nodes, job.memory_gb, job.duration,
            not_before=max(self._now, job.submit_time),
        )
        self._profile.reserve_trusted(
            start, job.duration, job.nodes, job.memory_gb
        )
        self.stats.jobs_packed += 1
        return PackedJob(job, start)

    # -- packing ------------------------------------------------------------
    def pack(self, order: Sequence[Job]) -> list[PackedJob]:
        """Pack *order* from scratch and adopt it as the incumbent."""
        self._profile.restore(self._base)
        stride = self._stride_for(len(order))
        checkpoints = {0: self._base}
        placements: list[PackedJob] = []
        for p, job in enumerate(order):
            if p and p % stride == 0:
                checkpoints[p] = self._profile.snapshot()
            placements.append(self._place(job))
        self._inc = _Incumbent(list(order), placements, checkpoints)
        self.stats.full_packs += 1
        return list(placements)

    def _restore_to(self, pivot: int) -> None:
        """Put the profile in the incumbent's state after ``[0, pivot)``."""
        inc = self._inc
        anchor = max(p for p in inc.checkpoints if p <= pivot)
        self._profile.restore(inc.checkpoints[anchor])
        stride = self._stride_for(len(inc.order))
        for p in range(anchor, pivot):
            pl = inc.placements[p]
            self._profile.reserve_trusted(
                pl.start, pl.job.duration, pl.job.nodes, pl.job.memory_gb
            )
            self.stats.jobs_replayed += 1
            # Densify checkpoints along the replay path so repeated
            # restores near this pivot skip the replay next time.
            nxt = p + 1
            if nxt % stride == 0 and nxt not in inc.checkpoints:
                inc.checkpoints[nxt] = self._profile.snapshot()

    def pack_from(
        self, order: Sequence[Job], pivot: int
    ) -> list[PackedJob]:
        """Speculatively pack *order*, whose first *pivot* entries match
        the incumbent order, re-packing only ``order[pivot:]``. (The
        windowed annealer passes head-only orders, so the frozen tail
        is never packed here at all.)

        Does not change the incumbent; call :meth:`commit` to adopt the
        candidate.
        """
        pivot = min(pivot, len(self._inc.placements))
        self._restore_to(pivot)
        suffix = [self._place(job) for job in order[pivot:]]
        self.stats.suffix_packs += 1
        return self._inc.placements[:pivot] + suffix

    def commit(
        self,
        order: Sequence[Job],
        pivot: int,
        placements: Sequence[PackedJob],
    ) -> None:
        """Adopt a candidate evaluated via :meth:`pack_from` as the new
        incumbent; cached state before *pivot* stays valid (snapshots
        at or below the pivot are carried over by reference)."""
        checkpoints = {
            p: snap for p, snap in self._inc.checkpoints.items() if p <= pivot
        }
        self._inc = _Incumbent(list(order), list(placements), checkpoints)
        self.stats.commits += 1

    # -- incumbent retention (one GA generation) ---------------------------
    def save_incumbent(self, key: object) -> None:
        """Retain the current incumbent under *key*.

        O(1): the incumbent's placements and snapshots are kept by
        reference (both are treated as immutable once saved — a later
        ``pack``/``commit`` replaces ``self._inc`` rather than mutating
        it). When the retention budget is exceeded, the oldest saved
        incumbent is evicted — FIFO, matching the GA's use (parents of
        one generation are saved together and all expire together).
        """
        if self._retain_incumbents <= 0:
            return
        self._saved.pop(key, None)
        self._saved[key] = self._inc
        self.stats.incumbents_saved += 1
        while len(self._saved) > self._retain_incumbents:
            oldest = next(iter(self._saved))
            del self._saved[oldest]
            self.stats.incumbents_evicted += 1

    def load_incumbent(self, key: object) -> bool:
        """Make the incumbent saved under *key* current; False if it
        was never saved or has been evicted."""
        inc = self._saved.get(key)
        if inc is None:
            return False
        self._inc = inc
        self.stats.incumbents_loaded += 1
        return True

    def clear_incumbents(self) -> None:
        """Drop every saved incumbent (GA: start of a new generation)."""
        self._saved.clear()


def pack_order(
    jobs: Sequence[Job],
    *,
    now: float,
    free_nodes: float,
    free_memory_gb: float,
    releases: Iterable[tuple[float, float, float]] = (),
) -> list[PackedJob]:
    """Serial schedule-generation scheme over a job permutation.

    Places each job of *jobs*, in the given order, at its earliest
    feasible start (never before its submit time or *now*) against a
    shared :class:`ResourceProfile`. Later jobs in the order may start
    earlier in time if they fit into gaps — permutations are priority
    lists, not start-time orders.
    """
    profile = ResourceProfile(now, free_nodes, free_memory_gb, releases)
    placements: list[PackedJob] = []
    for job in jobs:
        start = profile.earliest_start(
            job.nodes, job.memory_gb, job.duration,
            not_before=max(now, job.submit_time),
        )
        profile.reserve(start, job.duration, job.nodes, job.memory_gb)
        placements.append(PackedJob(job, start))
    return placements


def plan_makespan(placements: Sequence[PackedJob], now: float) -> float:
    """Makespan of a packed plan measured from *now*."""
    if not placements:
        return 0.0
    return max(p.end for p in placements) - now


def plan_total_completion(placements: Sequence[PackedJob]) -> float:
    """Sum of completion times (the flow-time tiebreak objective)."""
    return float(sum(p.end for p in placements))
