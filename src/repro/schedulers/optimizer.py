"""Optimization-based scheduler — the Google OR-Tools stand-in.

The paper uses OR-Tools as a strong optimization baseline that
"computes globally optimal or near-optimal schedules for
small-to-medium workloads" (§3.3), observing that it maximizes
utilization (up to 1.8× FCFS at 100 jobs) while degrading wait-time and
user-level fairness — it optimizes system efficiency with no fairness
term.

We reproduce that role without the closed dependency:
:class:`AnnealingOptimizer` searches job *priority permutations* with
simulated annealing; each permutation is evaluated by the serial
schedule-generation scheme of :mod:`repro.schedulers.packing`
(earliest-feasible-start packing under node+memory constraints), and
the objective is makespan with a small mean-flow-time tiebreak —
deliberately fairness-blind, like the paper's OR-Tools configuration.
For the workload sizes the paper studies (≤100 jobs) annealed list
scheduling sits within a few percent of optimal makespan, preserving
the baseline's qualitative position: top utilization, fairness
trade-off.

The optimizer is *online*: it plans over currently queued jobs and
replans whenever new jobs arrive, executing placements in planned
start-time order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.schedulers.packing import (
    IncrementalPacker,
    PackedJob,
    plan_makespan,
    plan_total_completion,
)
from repro.schedulers.recovery import (
    effective_jobs,
    split_unpackable,
    spread_requeue,
)
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.simulator import SystemView


@dataclass
class PlanStatistics:
    """Bookkeeping about one replanning event."""

    time: float
    queue_size: int
    iterations: int
    initial_objective: float
    final_objective: float

    @property
    def improvement(self) -> float:
        """Relative objective improvement found by annealing."""
        if self.initial_objective == 0:
            return 0.0
        return 1.0 - self.final_objective / self.initial_objective


@dataclass
class AnnealingConfig:
    """Annealer hyperparameters.

    ``iterations`` scales with queue size (``base + per_job * n``,
    capped) so small queues replan cheaply; ``t0_fraction`` sets the
    initial temperature as a fraction of the initial objective.
    """

    base_iterations: int = 60
    per_job_iterations: int = 4
    max_iterations: int = 600
    t0_fraction: float = 0.05
    cooling: float = 0.995
    flow_time_weight: float = 1e-3

    def iterations_for(self, n: int) -> int:
        return min(
            self.base_iterations + self.per_job_iterations * n,
            self.max_iterations,
        )


class AnnealingOptimizer(BaseScheduler):
    """Simulated-annealing list scheduler (OR-Tools substitute).

    Parameters
    ----------
    seed:
        RNG seed for the annealer (plan search is stochastic; execution
        of a fixed plan is deterministic).
    config:
        :class:`AnnealingConfig` hyperparameters.
    """

    name = "ortools_like"

    def __init__(
        self,
        seed: int | np.random.SeedSequence = 0,
        config: Optional[AnnealingConfig] = None,
        use_incremental: bool = True,
    ) -> None:
        super().__init__()
        self._seed = seed
        self.config = config or AnnealingConfig()
        #: When False, every candidate is packed from scratch with the
        #: retained naive reference packer — the pre-incremental code
        #: path, kept selectable for equivalence tests and the bench's
        #: before/after replanning measurement.
        self.use_incremental = use_incremental
        self._rng = np.random.default_rng(seed)
        self._planned_ids: set[int] = set()
        #: Jobs this plan already started; one of them reappearing in
        #: the queue means it was killed and requeued (disruptions) —
        #: the plan is stale and must be rebuilt.
        self._consumed: set[int] = set()
        self._plan: list[PackedJob] = []
        self._plan_pos = 0
        self._stats: list[PlanStatistics] = []

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)
        self._planned_ids = set()
        self._consumed = set()
        self._plan = []
        self._plan_pos = 0
        self._stats = []

    # -- planning ---------------------------------------------------------
    def _objective(self, placements: list[PackedJob], now: float) -> float:
        n = len(placements)
        if n == 0:
            return 0.0
        return plan_makespan(placements, now) + (
            self.config.flow_time_weight * plan_total_completion(placements) / n
        )

    def _replan(self, view: SystemView) -> None:
        jobs = list(view.queued)
        n = len(jobs)
        if n == 0:
            self._plan = []
            self._plan_pos = 0
            self._planned_ids = set()
            return

        # Checkpoint-restarted jobs plan with their remaining runtime
        # (no-op mapping on undisrupted runs — bit-identical planning).
        jobs = effective_jobs(view, jobs)

        releases = [
            (run.expected_end, run.job.nodes, run.job.memory_gb)
            for run in view.running
        ]
        # Recovery awareness: announced maintenance drains enter the
        # packing profile as capacity notches — a negative release at
        # the drain start and a restoring one at its end — so the
        # annealer's earliest-fit search steers long jobs around the
        # window instead of placing work it would lose. Windows already
        # in progress are missing from free capacity; only their
        # restoration is modeled.
        mem_share = view.node_memory_share
        for d in view.upcoming_drains:
            d_mem = d.nodes * mem_share
            if d.start > view.now:
                releases.append((d.start, -d.nodes, -d_mem))
            releases.append((d.end, d.nodes, d_mem))

        # Jobs exceeding the profile's eventual capacity (nodes failed
        # and not repaired within the plan) are parked at +inf — tried
        # last, held until repairs — instead of crashing the packer.
        jobs, unpackable = split_unpackable(view, jobs, releases)
        n = len(jobs)
        if n == 0 and unpackable:
            self._plan = [PackedJob(j, math.inf) for j in unpackable]
            self._plan_pos = 0
            self._planned_ids = {j.job_id for j in unpackable}
            return
        if self.use_incremental:
            packer = IncrementalPacker(
                now=view.now,
                free_nodes=view.free_nodes,
                free_memory_gb=view.free_memory_gb,
                releases=releases,
            )
            pack_full = packer.pack
            pack_candidate = packer.pack_from
            commit = packer.commit
        else:
            from repro.schedulers.packing_reference import (
                reference_pack_order,
            )

            def pack_full(order):
                return reference_pack_order(
                    order,
                    now=view.now,
                    free_nodes=view.free_nodes,
                    free_memory_gb=view.free_memory_gb,
                    releases=releases,
                )

            def pack_candidate(order, pivot):
                return pack_full(order)

            def commit(order, pivot, placements):
                pass

        # Initial order: largest node-seconds first (LPT flavour), a
        # strong makespan heuristic the annealer then polishes. On
        # clusters with real failure domains, requeued jobs that no
        # healthy domain can currently host are demoted behind the
        # rest (spread-across-domains: don't race a restart back into
        # the failing rack); identity on flat topologies.
        order = sorted(jobs, key=lambda j: (-j.node_seconds, j.job_id))
        order = spread_requeue(view, order)
        placements = pack_full(order)
        best_order = order
        best_obj = cur_obj = self._objective(placements, view.now)
        initial_obj = best_obj

        iterations = self.config.iterations_for(n)
        temp = max(best_obj * self.config.t0_fraction, 1e-9)
        cur_order = list(order)
        if n >= 2:
            for _ in range(iterations):
                i, j = self._rng.integers(0, n, size=2)
                if i == j:
                    continue
                cand = list(cur_order)
                cand[i], cand[j] = cand[j], cand[i]
                # The candidate shares the incumbent's prefix below the
                # lower swap position: only the suffix is re-packed.
                pivot = int(min(i, j))
                cand_placements = pack_candidate(cand, pivot)
                cand_obj = self._objective(cand_placements, view.now)
                delta = cand_obj - cur_obj
                if delta <= 0 or self._rng.random() < math.exp(
                    -delta / temp
                ):
                    commit(cand, pivot, cand_placements)
                    cur_order, cur_obj = cand, cand_obj
                    if cur_obj < best_obj:
                        best_order, best_obj = cand, cur_obj
                temp *= self.config.cooling

        final = pack_full(best_order)
        # Execute in planned start-time order; capacity-starved jobs
        # (failed nodes) trail the plan until repairs let them fit.
        self._plan = sorted(final, key=lambda p: (p.start, p.job.job_id))
        self._plan.extend(PackedJob(j, math.inf) for j in unpackable)
        self._plan_pos = 0
        self._planned_ids = {p.job.job_id for p in self._plan}
        self._stats.append(
            PlanStatistics(
                time=view.now,
                queue_size=n,
                iterations=iterations,
                initial_objective=initial_obj,
                final_objective=best_obj,
            )
        )

    # -- SchedulerProtocol -------------------------------------------------
    def decide(self, view: SystemView) -> Action:
        queued_ids = {j.job_id for j in view.queued}
        if queued_ids - self._planned_ids or not self._consumed.isdisjoint(
            queued_ids
        ):
            self._replan(view)
            self._consumed.clear()

        # Skip placements for jobs no longer queued (already started);
        # an index cursor replaces the old O(n) list.pop(0).
        plan, pos = self._plan, self._plan_pos
        while pos < len(plan) and plan[pos].job.job_id not in queued_ids:
            pos += 1
        self._plan_pos = pos

        if pos >= len(plan):
            return Delay
        head = plan[pos]
        job = view.queued_job(head.job.job_id)
        # drain_safe: even if the plan's head fits right now, don't
        # start it across an announced drain it might not survive —
        # the packed plan deliberately parked such jobs after the
        # window. Vacuously true on undisrupted runs.
        if job is not None and view.can_fit(job) and view.drain_safe(job):
            self._plan_pos = pos + 1
            self._consumed.add(job.job_id)
            self._set_meta(planned_start=head.start)
            return StartJob(job.job_id)
        return Delay

    def collect_extras(self) -> dict[str, Any]:
        return {
            "replans": len(self._stats),
            "plan_stats": list(self._stats),
        }
