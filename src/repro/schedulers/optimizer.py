"""Optimization-based scheduler — the Google OR-Tools stand-in.

The paper uses OR-Tools as a strong optimization baseline that
"computes globally optimal or near-optimal schedules for
small-to-medium workloads" (§3.3), observing that it maximizes
utilization (up to 1.8× FCFS at 100 jobs) while degrading wait-time and
user-level fairness — it optimizes system efficiency with no fairness
term.

We reproduce that role without the closed dependency:
:class:`AnnealingOptimizer` searches job *priority permutations* with
simulated annealing; each permutation is evaluated by the serial
schedule-generation scheme of :mod:`repro.schedulers.packing`
(earliest-feasible-start packing under node+memory constraints), and
the objective is makespan with a small mean-flow-time tiebreak —
deliberately fairness-blind, like the paper's OR-Tools configuration.
For the workload sizes the paper studies (≤100 jobs) annealed list
scheduling sits within a few percent of optimal makespan, preserving
the baseline's qualitative position: top utilization, fairness
trade-off.

The optimizer is *online*: it plans over currently queued jobs and
replans whenever new jobs arrive, executing placements in planned
start-time order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.schedulers.packing import (
    IncrementalPacker,
    PackedJob,
    plan_makespan,
    plan_total_completion,
)
from repro.schedulers.recovery import (
    effective_jobs,
    healthy_domain_mask,
    split_unpackable,
    spread_requeue,
)
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.columns import COLUMNAR_MIN_QUEUE
from repro.sim.job import Job
from repro.sim.simulator import SystemView


def _columnar_initial_order(
    view: SystemView, jobs: "list[Job]"
) -> "list[Job]":
    """LPT initial order + spread-across-domains demotion, columnar.

    Byte-identical twin of ``sorted(jobs, key=(-node_seconds, id))``
    followed by :func:`~repro.schedulers.recovery.spread_requeue`:
    lexsort on the negated node-seconds column (float64 negation is
    exact) with the id tie-break reproduces the key-tuple order, and
    the demotion is a stable boolean partition. Columns are built from
    the (possibly duration-remapped) planning jobs themselves, not the
    view's masters.
    """
    n = len(jobs)
    ns = np.fromiter((j.node_seconds for j in jobs), np.float64, count=n)
    ids = np.fromiter((j.job_id for j in jobs), np.int64, count=n)
    order_idx = np.lexsort((ids, -ns))
    rem = view.remaining_runtimes
    if rem and view.has_domains:
        nodes = np.fromiter((j.nodes for j in jobs), np.int64, count=n)
        requeued = np.fromiter(
            (j.job_id in rem for j in jobs), bool, count=n
        )
        parked = (requeued & ~healthy_domain_mask(view, nodes))[order_idx]
        if parked.any():
            order_idx = np.concatenate(
                (order_idx[~parked], order_idx[parked])
            )
    return [jobs[k] for k in order_idx.tolist()]


@dataclass
class PlanStatistics:
    """Bookkeeping about one replanning event.

    ``jobs_packed`` counts every placement the event's search paid for
    (an earliest-fit scan + reservation each); with ``accepted_moves``
    it yields the packed-jobs-per-accepted-move figure the bench
    tracks — the quantity windowed replanning bounds.
    """

    time: float
    queue_size: int
    iterations: int
    initial_objective: float
    final_objective: float
    window: Optional[int] = None
    accepted_moves: int = 0
    jobs_packed: int = 0

    @property
    def improvement(self) -> float:
        """Relative objective improvement found by annealing."""
        if self.initial_objective == 0:
            return 0.0
        return 1.0 - self.final_objective / self.initial_objective


@dataclass
class AnnealingConfig:
    """Annealer hyperparameters.

    ``iterations`` scales with queue size (``base + per_job * n``,
    capped) so small queues replan cheaply; ``t0_fraction`` sets the
    initial temperature as a fraction of the initial objective.

    ``window`` bounds the search to the first W positions of the
    priority order: the tail is frozen as a fixed suffix, packed once
    per replanning event, and every annealing move re-packs at most W
    placements instead of an O(queue) suffix. ``None`` (the default)
    keeps the full search — bit-identical to the pre-window engine.

    ``late_pivot_p`` biases the move set toward late pivots: the lower
    swap position sits a Geometric(p)-distributed distance from the end
    of the order, so re-packed suffixes average ~1/p jobs even without
    a window. ``None`` (the default) keeps uniform position pairs.
    """

    base_iterations: int = 60
    per_job_iterations: int = 4
    max_iterations: int = 600
    t0_fraction: float = 0.05
    cooling: float = 0.995
    flow_time_weight: float = 1e-3
    window: Optional[int] = None
    late_pivot_p: Optional[float] = None
    #: Windowed search only: the iteration budget is split into this
    #: many epochs, and at each epoch boundary the full order (current
    #: head + frozen tail) is re-packed once to ground the epoch's
    #: incumbent in the *true* objective — the returned plan is the
    #: true-best over epoch boundaries plus the surrogate-best head.
    window_epochs: int = 4

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 2:
            raise ValueError("window must be at least 2 (or None)")
        if self.late_pivot_p is not None and not (
            0.0 < self.late_pivot_p <= 1.0
        ):
            raise ValueError("late_pivot_p must be in (0, 1] (or None)")
        if self.window_epochs < 1:
            raise ValueError("window_epochs must be at least 1")

    def iterations_for(self, n: int) -> int:
        return min(
            self.base_iterations + self.per_job_iterations * n,
            self.max_iterations,
        )


class AnnealingOptimizer(BaseScheduler):
    """Simulated-annealing list scheduler (OR-Tools substitute).

    Parameters
    ----------
    seed:
        RNG seed for the annealer (plan search is stochastic; execution
        of a fixed plan is deterministic).
    config:
        :class:`AnnealingConfig` hyperparameters.
    """

    name = "ortools_like"
    supports_columns = True

    def __init__(
        self,
        seed: int | np.random.SeedSequence = 0,
        config: Optional[AnnealingConfig] = None,
        use_incremental: bool = True,
        use_columns: Optional[bool] = None,
    ) -> None:
        super().__init__(use_columns=use_columns)
        self._seed = seed
        self.config = config or AnnealingConfig()
        #: When False, every candidate is packed from scratch with the
        #: retained naive reference packer — the pre-incremental code
        #: path, kept selectable for equivalence tests and the bench's
        #: before/after replanning measurement.
        self.use_incremental = use_incremental
        if self.config.window is not None and not use_incremental:
            raise ValueError(
                "windowed replanning requires the incremental packer "
                "(window=None or use_incremental=True)"
            )
        self._rng = np.random.default_rng(seed)
        self._planned_ids: set[int] = set()
        #: Jobs this plan already started; one of them reappearing in
        #: the queue means it was killed and requeued (disruptions) —
        #: the plan is stale and must be rebuilt.
        self._consumed: set[int] = set()
        self._plan: list[PackedJob] = []
        self._plan_pos = 0
        self._stats: list[PlanStatistics] = []

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)
        self._planned_ids = set()
        self._consumed = set()
        self._plan = []
        self._plan_pos = 0
        self._stats = []

    # -- planning ---------------------------------------------------------
    def _objective(self, placements: list[PackedJob], now: float) -> float:
        n = len(placements)
        if n == 0:
            return 0.0
        return plan_makespan(placements, now) + (
            self.config.flow_time_weight * plan_total_completion(placements) / n
        )

    def _sample_move(self, m: int) -> Optional[tuple[int, int]]:
        """Draw one swap move over ``range(m)`` as ``(lo, hi)``.

        Uniform position pairs by default (``None`` on an i == j draw,
        matching the legacy skip); with ``late_pivot_p`` the lower
        position sits a Geometric(p) distance from the end of the
        order, so the re-packed suffix averages ~1/p jobs.
        """
        p = self.config.late_pivot_p
        if p is None:
            i, j = self._rng.integers(0, m, size=2)
            if i == j:
                return None
            return (int(i), int(j)) if i < j else (int(j), int(i))
        lo = m - 1 - int(self._rng.geometric(p))
        if lo < 0:
            lo = 0
        hi = lo + 1 + int(self._rng.integers(0, m - lo - 1))
        return lo, hi

    def _anneal_full(
        self,
        order: list,
        initial_obj: float,
        now: float,
        iterations: int,
        pack_candidate,
        commit,
    ) -> tuple[list, float, int]:
        """Legacy full-width annealing over the whole priority order.

        Byte-compatible with the pre-window engine: identical RNG call
        sequence, identical float comparisons, identical commits.
        """
        cur_order = list(order)
        best_order = order
        best_obj = cur_obj = initial_obj
        temp = max(best_obj * self.config.t0_fraction, 1e-9)
        accepted = 0
        for _ in range(iterations):
            move = self._sample_move(len(cur_order))
            if move is None:
                continue
            lo, hi = move
            cand = list(cur_order)
            cand[lo], cand[hi] = cand[hi], cand[lo]
            # The candidate shares the incumbent's prefix below the
            # lower swap position: only the suffix is re-packed.
            cand_placements = pack_candidate(cand, lo)
            cand_obj = self._objective(cand_placements, now)
            delta = cand_obj - cur_obj
            if delta <= 0 or self._rng.random() < math.exp(-delta / temp):
                commit(cand, lo, cand_placements)
                cur_order, cur_obj = cand, cand_obj
                accepted += 1
                if cur_obj < best_obj:
                    best_order, best_obj = cand, cur_obj
            temp *= self.config.cooling
        return best_order, best_obj, accepted

    def _anneal_windowed(
        self,
        packer: IncrementalPacker,
        order: list,
        placements: list[PackedJob],
        now: float,
        iterations: int,
    ) -> tuple[list, Optional[list[PackedJob]], int]:
        """Bounded-suffix annealing over the first ``window`` positions.

        The tail ``order[window:]`` is frozen as a fixed suffix, so an
        annealing move re-packs at most ``window`` placements —
        independent of queue length. Moves are scored by a head-only
        surrogate (makespan + flow over the head placements): the
        frozen tail contributes no gradient, and a compact head is what
        frees early gaps for the tail to fill. To keep the search
        honest against the *true* objective, the iteration budget is
        split into ``window_epochs`` epochs and the full order is
        re-packed once per epoch incumbent; the best full order seen at
        those groundings (or the final surrogate-best head) is
        returned, along with its already-computed full placements
        (``None`` when no grounding ran — the caller packs then).
        Total packing work per replanning event:
        O(iterations × window + epochs × queue).
        """
        cfg = self.config
        window = cfg.window
        fw = cfg.flow_time_weight
        tail_order = order[window:]

        def surrogate(head_placements: list[PackedJob]) -> float:
            head_max = max(p.end for p in head_placements)
            total = float(sum(p.end for p in head_placements))
            return (head_max - now) + fw * total / window

        cur_head = list(order[:window])
        best_head = cur_head
        best_obj = cur_obj = surrogate(placements[:window])
        temp = max(cur_obj * cfg.t0_fraction, 1e-9)
        accepted = 0
        # Groundings cost a full O(queue) pack each; cap them at one
        # per ~150 iterations so a small search budget is spent on
        # moves, not on re-realizing the tail.
        epochs = min(cfg.window_epochs, max(1, iterations // 150))
        true_best: Optional[tuple[list, list[PackedJob]]] = None
        true_best_obj = math.inf
        boundaries = {
            (e + 1) * iterations // epochs for e in range(epochs - 1)
        }
        for it in range(iterations):
            move = self._sample_move(window)
            if move is not None:
                lo, hi = move
                cand = list(cur_head)
                cand[lo], cand[hi] = cand[hi], cand[lo]
                # cand is head-only: pack_from re-packs cand[lo:] and
                # never touches the frozen tail.
                head_placements = packer.pack_from(cand, lo)
                cand_obj = surrogate(head_placements)
                delta = cand_obj - cur_obj
                if delta <= 0 or self._rng.random() < math.exp(
                    -delta / temp
                ):
                    packer.commit(cand, lo, head_placements)
                    cur_head, cur_obj = cand, cand_obj
                    accepted += 1
                    if cur_obj < best_obj:
                        best_head, best_obj = cand, cur_obj
                temp *= cfg.cooling
            if it + 1 in boundaries:
                # Epoch grounding: realize the tail under the current
                # head and score the true objective once.
                full = packer.pack(cur_head + tail_order)
                true_obj = self._objective(full, now)
                if true_obj < true_best_obj:
                    true_best = (list(cur_head), full)
                    true_best_obj = true_obj
        if true_best is not None:
            # Let the final surrogate-best head compete with the epoch
            # groundings on the true objective; either way the winning
            # placements are already computed — no caller re-pack.
            final_full = packer.pack(best_head + tail_order)
            if true_best_obj < self._objective(final_full, now):
                grounded_head, grounded_full = true_best
                return grounded_head + tail_order, grounded_full, accepted
            return best_head + tail_order, final_full, accepted
        return best_head + tail_order, None, accepted

    def _replan(self, view: SystemView) -> None:
        jobs = list(view.queued)
        n = len(jobs)
        if n == 0:
            self._plan = []
            self._plan_pos = 0
            self._planned_ids = set()
            return

        # Checkpoint-restarted jobs plan with their remaining runtime
        # (no-op mapping on undisrupted runs — bit-identical planning).
        jobs = effective_jobs(view, jobs)

        releases = [
            (run.expected_end, run.job.nodes, run.job.memory_gb)
            for run in view.running
        ]
        # Recovery awareness: announced maintenance drains enter the
        # packing profile as capacity notches — a negative release at
        # the drain start and a restoring one at its end — so the
        # annealer's earliest-fit search steers long jobs around the
        # window instead of placing work it would lose. Windows already
        # in progress are missing from free capacity; only their
        # restoration is modeled.
        mem_share = view.node_memory_share
        for d in view.upcoming_drains:
            d_mem = d.nodes * mem_share
            if d.start > view.now:
                releases.append((d.start, -d.nodes, -d_mem))
            releases.append((d.end, d.nodes, d_mem))

        # Jobs exceeding the profile's eventual capacity (nodes failed
        # and not repaired within the plan) are parked at +inf — tried
        # last, held until repairs — instead of crashing the packer.
        jobs, unpackable = split_unpackable(view, jobs, releases)
        n = len(jobs)
        if n == 0 and unpackable:
            self._plan = [PackedJob(j, math.inf) for j in unpackable]
            self._plan_pos = 0
            self._planned_ids = {j.job_id for j in unpackable}
            return
        packed_counter = [0]
        if self.use_incremental:
            packer = IncrementalPacker(
                now=view.now,
                free_nodes=view.free_nodes,
                free_memory_gb=view.free_memory_gb,
                releases=releases,
            )
            pack_full = packer.pack
            pack_candidate = packer.pack_from
            commit = packer.commit
        else:
            packer = None
            from repro.schedulers.packing_reference import (
                reference_pack_order,
            )

            def pack_full(order):
                packed_counter[0] += len(order)
                return reference_pack_order(
                    order,
                    now=view.now,
                    free_nodes=view.free_nodes,
                    free_memory_gb=view.free_memory_gb,
                    releases=releases,
                )

            def pack_candidate(order, pivot):
                return pack_full(order)

            def commit(order, pivot, placements):
                pass

        # Initial order: largest node-seconds first (LPT flavour), a
        # strong makespan heuristic the annealer then polishes. On
        # clusters with real failure domains, requeued jobs that no
        # healthy domain can currently host are demoted behind the
        # rest (spread-across-domains: don't race a restart back into
        # the failing rack); identity on flat topologies. The windowed
        # search freezes the tail, so those demotions stay put.
        if self.use_columns and len(jobs) >= COLUMNAR_MIN_QUEUE:
            # Columns must come from the *effective* jobs (restarted
            # jobs carry remapped durations), not the view's masters:
            # node_seconds here is nodes × remaining runtime. Small
            # replanning sets take the facade twin (same crossover
            # rationale as BaseScheduler.columnar).
            order = _columnar_initial_order(view, jobs)
        else:
            order = sorted(jobs, key=lambda j: (-j.node_seconds, j.job_id))
            order = spread_requeue(view, order)
        placements = pack_full(order)
        best_obj = initial_obj = self._objective(placements, view.now)
        iterations = self.config.iterations_for(n)

        window = self.config.window
        accepted = 0
        if window is not None and 2 <= window < n:
            best_order, final, accepted = self._anneal_windowed(
                packer, order, placements, view.now, iterations
            )
            if final is None:  # no epoch grounding packed the winner
                final = pack_full(best_order)
            final_obj = self._objective(final, view.now)
            # The windowed search optimizes a frozen-tail surrogate;
            # re-packing the tail under the winning head can land
            # (slightly) elsewhere. Never regress past the heuristic
            # initial order, whose placements are already in hand.
            if final_obj > initial_obj:
                final, best_obj = placements, initial_obj
            else:
                best_obj = final_obj
        elif n >= 2:
            best_order, best_obj, accepted = self._anneal_full(
                order, best_obj, view.now, iterations,
                pack_candidate, commit,
            )
            final = pack_full(best_order)
        else:
            final = placements
        # Execute in planned start-time order; capacity-starved jobs
        # (failed nodes) trail the plan until repairs let them fit.
        self._plan = sorted(final, key=lambda p: (p.start, p.job.job_id))
        self._plan.extend(PackedJob(j, math.inf) for j in unpackable)
        self._plan_pos = 0
        self._planned_ids = {p.job.job_id for p in self._plan}
        self._stats.append(
            PlanStatistics(
                time=view.now,
                queue_size=n,
                iterations=iterations,
                initial_objective=initial_obj,
                final_objective=best_obj,
                window=window,
                accepted_moves=accepted,
                jobs_packed=(
                    packer.stats.jobs_packed
                    if packer is not None
                    else packed_counter[0]
                ),
            )
        )

    # -- SchedulerProtocol -------------------------------------------------
    def decide(self, view: SystemView) -> Action:
        queued_ids = {j.job_id for j in view.queued}
        if queued_ids - self._planned_ids or not self._consumed.isdisjoint(
            queued_ids
        ):
            self._replan(view)
            self._consumed.clear()

        # Skip placements for jobs no longer queued (already started);
        # an index cursor replaces the old O(n) list.pop(0).
        plan, pos = self._plan, self._plan_pos
        while pos < len(plan) and plan[pos].job.job_id not in queued_ids:
            pos += 1
        self._plan_pos = pos

        if pos >= len(plan):
            return Delay
        head = plan[pos]
        job = view.queued_job(head.job.job_id)
        # drain_safe: even if the plan's head fits right now, don't
        # start it across an announced drain it might not survive —
        # the packed plan deliberately parked such jobs after the
        # window. Vacuously true on undisrupted runs.
        if job is not None and view.can_fit(job) and view.drain_safe(job):
            self._plan_pos = pos + 1
            self._consumed.add(job.job_id)
            self._set_meta(planned_start=head.start)
            return StartJob(job.job_id)
        return Delay

    def collect_extras(self) -> dict[str, Any]:
        packed = sum(s.jobs_packed for s in self._stats)
        accepted = sum(s.accepted_moves for s in self._stats)
        return {
            "replans": len(self._stats),
            "plan_stats": list(self._stats),
            "anneal_window": self.config.window,
            "packed_jobs": packed,
            "accepted_moves": accepted,
            "packed_jobs_per_accepted_move": (
                packed / accepted if accepted else float(packed)
            ),
        }
