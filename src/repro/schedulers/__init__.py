"""Scheduling policies.

Baselines from the paper's §3.3 comparison — FCFS, SJF and an
optimization-based scheduler standing in for Google OR-Tools — plus an
EASY-backfilling FCFS variant and simple heuristics used in ablations.
The LLM ReAct agent (the paper's contribution) lives in
:mod:`repro.core` and adapts to the same
:class:`~repro.sim.simulator.SchedulerProtocol`.
"""

from repro.schedulers.base import BaseScheduler
from repro.schedulers.fcfs import EasyBackfillScheduler, FCFSScheduler
from repro.schedulers.heuristics import (
    FirstFitScheduler,
    LargestFirstScheduler,
    RandomScheduler,
)
from repro.schedulers.optimizer import AnnealingOptimizer, PlanStatistics
from repro.schedulers.packing import PackedJob, ResourceProfile, pack_order
from repro.schedulers.registry import (
    SCHEDULER_FACTORIES,
    available_schedulers,
    create_scheduler,
)
from repro.schedulers.sjf import SJFScheduler

__all__ = [
    "AnnealingOptimizer",
    "BaseScheduler",
    "EasyBackfillScheduler",
    "FCFSScheduler",
    "FirstFitScheduler",
    "LargestFirstScheduler",
    "PackedJob",
    "PlanStatistics",
    "RandomScheduler",
    "ResourceProfile",
    "SCHEDULER_FACTORIES",
    "SJFScheduler",
    "available_schedulers",
    "create_scheduler",
    "pack_order",
]
