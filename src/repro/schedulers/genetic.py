"""Genetic-algorithm list scheduler.

The paper's related work (§1.1) cites Genetic Algorithms, Simulated
Annealing and PSO as the classical metaheuristics applied to HPC
scheduling, "primarily to optimize a single objective through iterative
search over job permutations". :mod:`repro.schedulers.optimizer`
implements the SA member of that family (doubling as the OR-Tools
stand-in); this module implements the GA member over the *identical*
packing model, so the two metaheuristics are directly comparable in
ablations (same objective, same schedule decoder, different search).

Representation: a chromosome is a job-priority permutation, decoded by
the serial schedule-generation scheme of
:mod:`repro.schedulers.packing`. Selection is k-tournament; crossover
is order crossover (OX1, the standard permutation operator); mutation
swaps two positions. Elitism preserves the best chromosome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.schedulers.packing import (
    IncrementalPacker,
    PackedJob,
    plan_makespan,
    plan_total_completion,
)
from repro.schedulers.recovery import effective_jobs, split_unpackable
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.job import Job
from repro.sim.simulator import SystemView


@dataclass
class GeneticConfig:
    """GA hyperparameters. Defaults are sized for ≤100-job queues."""

    population: int = 20
    generations: int = 15
    tournament_k: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    elite: int = 2
    flow_time_weight: float = 1e-3

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.elite >= self.population:
            raise ValueError("elite must be smaller than the population")
        for name in ("crossover_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


def order_crossover(
    parent_a: list[int], parent_b: list[int], rng: np.random.Generator
) -> list[int]:
    """OX1: copy a random slice from parent A, fill the rest in parent
    B's relative order."""
    n = len(parent_a)
    if n < 2:
        return list(parent_a)
    i, j = sorted(rng.choice(n, size=2, replace=False))
    child: list[Optional[int]] = [None] * n
    child[i : j + 1] = parent_a[i : j + 1]
    taken = set(parent_a[i : j + 1])
    fill = [gene for gene in parent_b if gene not in taken]
    it = iter(fill)
    for idx in range(n):
        if child[idx] is None:
            child[idx] = next(it)
    return child  # type: ignore[return-value]


class GeneticOptimizer(BaseScheduler):
    """GA-driven list scheduler over the shared packing model.

    Online like :class:`~repro.schedulers.optimizer.AnnealingOptimizer`:
    plans over currently queued jobs, replans on arrivals, and executes
    placements in planned start-time order.
    """

    name = "genetic"

    def __init__(
        self,
        seed: int | np.random.SeedSequence = 0,
        config: Optional[GeneticConfig] = None,
    ) -> None:
        super().__init__()
        self._seed = seed
        self.config = config or GeneticConfig()
        self.reset()

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)
        self._planned_ids: set[int] = set()
        #: Jobs this plan already started; one reappearing in the queue
        #: was killed and requeued (disruptions) — replan.
        self._consumed: set[int] = set()
        self._plan: list[PackedJob] = []
        self._plan_pos = 0
        self.generations_run = 0

    # -- GA machinery --------------------------------------------------------
    def _fitness(self, placements: list[PackedJob], now: float) -> float:
        n = len(placements)
        if n == 0:
            return 0.0
        return plan_makespan(placements, now) + (
            self.config.flow_time_weight
            * plan_total_completion(placements)
            / n
        )

    def _packer(self, view: SystemView) -> IncrementalPacker:
        """One reusable packer per planning event: the release profile
        is built once and restored in O(k) per evaluation instead of
        being reconstructed for every chromosome.

        GA chromosomes are unordered relative to each other, so the
        prefix cache cannot help; ``checkpoint_stride`` is set huge to
        skip checkpointing entirely (full packs only).
        """
        releases = [
            (run.expected_end, run.job.nodes, run.job.memory_gb)
            for run in view.running
        ]
        return IncrementalPacker(
            now=view.now,
            free_nodes=view.free_nodes,
            free_memory_gb=view.free_memory_gb,
            releases=releases,
            checkpoint_stride=1 << 30,
        )

    def _pack(self, order: list[Job], view: SystemView) -> list[PackedJob]:
        return self._packer(view).pack(order)

    def _evolve_subset(
        self, jobs: list[Job], view: SystemView
    ) -> list[Job]:
        # Checkpoint-restarted jobs plan with their remaining runtime
        # (no-op mapping on undisrupted runs).
        jobs = effective_jobs(view, jobs)
        by_id = {j.job_id: j for j in jobs}
        ids = [j.job_id for j in jobs]
        cfg = self.config
        rng = self._rng
        packer = self._packer(view)

        def evaluate(chromosome: list[int]) -> float:
            order = [by_id[jid] for jid in chromosome]
            return self._fitness(packer.pack(order), view.now)

        # Seed the population with strong heuristic orders + shuffles.
        lpt = sorted(ids, key=lambda jid: -by_id[jid].node_seconds)
        spt = sorted(ids, key=lambda jid: by_id[jid].walltime)
        population = [lpt, spt]
        while len(population) < cfg.population:
            perm = list(ids)
            rng.shuffle(perm)
            population.append(perm)
        scores = [evaluate(c) for c in population]

        for _ in range(cfg.generations):
            self.generations_run += 1
            ranked = sorted(range(len(population)), key=lambda i: scores[i])
            next_pop = [list(population[i]) for i in ranked[: cfg.elite]]
            while len(next_pop) < cfg.population:

                def tournament() -> list[int]:
                    contenders = rng.choice(
                        len(population),
                        size=min(cfg.tournament_k, len(population)),
                        replace=False,
                    )
                    best = min(contenders, key=lambda i: scores[i])
                    return population[best]

                if rng.random() < cfg.crossover_rate and len(ids) >= 2:
                    child = order_crossover(tournament(), tournament(), rng)
                else:
                    child = list(tournament())
                if rng.random() < cfg.mutation_rate and len(ids) >= 2:
                    i, j = rng.choice(len(ids), size=2, replace=False)
                    child[i], child[j] = child[j], child[i]
                next_pop.append(child)
            population = next_pop
            scores = [evaluate(c) for c in population]

        best = population[int(np.argmin(scores))]
        return [by_id[jid] for jid in best]

    # -- SchedulerProtocol -------------------------------------------------
    def decide(self, view: SystemView) -> Action:
        queued_ids = {j.job_id for j in view.queued}
        if queued_ids - self._planned_ids or not self._consumed.isdisjoint(
            queued_ids
        ):
            self._consumed.clear()
            # Jobs exceeding the eventually-available capacity (nodes
            # failed and not yet repaired) cannot pack; plan them at
            # +inf so they wait for repairs instead of crashing the GA.
            plannable, unpackable = split_unpackable(
                view,
                list(view.queued),
                [
                    (run.expected_end, run.job.nodes, run.job.memory_gb)
                    for run in view.running
                ],
            )
            if plannable:
                order = self._evolve_subset(plannable, view)
                final = self._pack(order, view)
                self._plan = sorted(
                    final, key=lambda p: (p.start, p.job.job_id)
                )
            else:
                self._plan = []
            self._plan.extend(
                PackedJob(j, math.inf) for j in unpackable
            )
            self._plan_pos = 0
            self._planned_ids = set(queued_ids)

        # Index cursor instead of O(n) list.pop(0) per consumed entry.
        plan, pos = self._plan, self._plan_pos
        while pos < len(plan) and plan[pos].job.job_id not in queued_ids:
            pos += 1
        self._plan_pos = pos
        if pos >= len(plan):
            return Delay
        head = plan[pos]
        job = view.queued_job(head.job.job_id)
        if job is not None and view.can_fit(job):
            self._plan_pos = pos + 1
            self._consumed.add(job.job_id)
            return StartJob(job.job_id)
        return Delay

    def collect_extras(self) -> dict[str, Any]:
        return {"generations": self.generations_run}
