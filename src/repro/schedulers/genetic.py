"""Genetic-algorithm list scheduler.

The paper's related work (§1.1) cites Genetic Algorithms, Simulated
Annealing and PSO as the classical metaheuristics applied to HPC
scheduling, "primarily to optimize a single objective through iterative
search over job permutations". :mod:`repro.schedulers.optimizer`
implements the SA member of that family (doubling as the OR-Tools
stand-in); this module implements the GA member over the *identical*
packing model, so the two metaheuristics are directly comparable in
ablations (same objective, same schedule decoder, different search).

Representation: a chromosome is a job-priority permutation, decoded by
the serial schedule-generation scheme of
:mod:`repro.schedulers.packing`. Selection is k-tournament; crossover
is order crossover; mutation swaps two positions. Elitism preserves
the best chromosome.

Two crossover modes share that skeleton:

* **prefix-sharing** (default): the copied parent-A slice is anchored
  at position 0, so every child shares parent A's *prefix* up to the
  cut. Children are then decoded through
  :meth:`~repro.schedulers.packing.IncrementalPacker.pack_from`
  against the parent's retained pack state — the same suffix-only
  re-pack the annealer exploits per move, applied generation-wide:
  each evaluation packs only the genes after the cut (or after the
  first mutated position) instead of the whole permutation.
* **legacy OX1** (``prefix_crossover=False``): the classic
  middle-slice operator with cold full packs per chromosome —
  byte-identical to the pre-prefix engine, retained for ablations and
  the regression pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.schedulers.packing import (
    IncrementalPacker,
    PackedJob,
    plan_makespan,
    plan_total_completion,
)
from repro.schedulers.recovery import effective_jobs, split_unpackable
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.columns import COLUMNAR_MIN_QUEUE
from repro.sim.job import Job
from repro.sim.simulator import SystemView


@dataclass
class GeneticConfig:
    """GA hyperparameters. Defaults are sized for ≤100-job queues.

    ``prefix_crossover`` selects the prefix-sharing operator (children
    share a parent's prefix up to the cut and are evaluated through
    the packer's prefix cache); ``False`` restores the legacy OX1
    middle-slice operator with cold full packs — the pre-prefix
    engine, bit for bit.
    """

    population: int = 20
    generations: int = 15
    tournament_k: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    elite: int = 2
    flow_time_weight: float = 1e-3
    prefix_crossover: bool = True

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.elite >= self.population:
            raise ValueError("elite must be smaller than the population")
        for name in ("crossover_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


def order_crossover(
    parent_a: list[int], parent_b: list[int], rng: np.random.Generator
) -> list[int]:
    """OX1: copy a random slice from parent A, fill the rest in parent
    B's relative order."""
    n = len(parent_a)
    if n < 2:
        return list(parent_a)
    i, j = sorted(rng.choice(n, size=2, replace=False))
    child: list[Optional[int]] = [None] * n
    child[i : j + 1] = parent_a[i : j + 1]
    taken = set(parent_a[i : j + 1])
    fill = [gene for gene in parent_b if gene not in taken]
    it = iter(fill)
    for idx in range(n):
        if child[idx] is None:
            child[idx] = next(it)
    return child  # type: ignore[return-value]


def prefix_crossover(
    parent_a: list[int], parent_b: list[int], rng: np.random.Generator
) -> tuple[list[int], int]:
    """Prefix-anchored order crossover: copy parent A's prefix up to a
    random cut, fill the suffix with the remaining genes in parent B's
    relative order. Returns ``(child, cut)`` — the child is guaranteed
    to share A's first ``cut`` genes, which is what lets the decoder
    re-pack only the suffix against A's cached pack state."""
    n = len(parent_a)
    if n < 2:
        return list(parent_a), n
    cut = int(rng.integers(1, n))
    taken = set(parent_a[:cut])
    child = parent_a[:cut] + [g for g in parent_b if g not in taken]
    return child, cut


class GeneticOptimizer(BaseScheduler):
    """GA-driven list scheduler over the shared packing model.

    Online like :class:`~repro.schedulers.optimizer.AnnealingOptimizer`:
    plans over currently queued jobs, replans on arrivals, and executes
    placements in planned start-time order.
    """

    name = "genetic"
    supports_columns = True

    def __init__(
        self,
        seed: int | np.random.SeedSequence = 0,
        config: Optional[GeneticConfig] = None,
        use_columns: Optional[bool] = None,
    ) -> None:
        super().__init__(use_columns=use_columns)
        self._seed = seed
        self.config = config or GeneticConfig()
        self.reset()

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)
        self._planned_ids: set[int] = set()
        #: Jobs this plan already started; one reappearing in the queue
        #: was killed and requeued (disruptions) — replan.
        self._consumed: set[int] = set()
        self._plan: list[PackedJob] = []
        self._plan_pos = 0
        self.generations_run = 0
        #: Aggregated packer work counters across planning events
        #: (prefix mode only — the legacy path predates the counters).
        self._pack_stats: dict[str, int] = {}

    # -- GA machinery --------------------------------------------------------
    def _fitness(self, placements: list[PackedJob], now: float) -> float:
        n = len(placements)
        if n == 0:
            return 0.0
        return plan_makespan(placements, now) + (
            self.config.flow_time_weight
            * plan_total_completion(placements)
            / n
        )

    def _packer(
        self, view: SystemView, *, prefix_n: int = 0
    ) -> IncrementalPacker:
        """One reusable packer per planning event: the release profile
        is built once and restored in O(k) per evaluation instead of
        being reconstructed for every chromosome.

        In legacy OX1 mode chromosomes are unordered relative to each
        other, so the prefix cache cannot help; ``checkpoint_stride``
        is set huge to skip checkpointing entirely (full packs only).
        In prefix mode (``prefix_n`` = queue size) the packer keeps
        sparse checkpoints per incumbent and retains two generations'
        worth of incumbents, so each child restores its parent's state
        at the cut in O(k) and packs only the suffix.
        """
        releases = [
            (run.expected_end, run.job.nodes, run.job.memory_gb)
            for run in view.running
        ]
        if prefix_n:
            stride = max(1, prefix_n // 16)
            retain = 2 * self.config.population
        else:
            stride, retain = 1 << 30, 0
        return IncrementalPacker(
            now=view.now,
            free_nodes=view.free_nodes,
            free_memory_gb=view.free_memory_gb,
            releases=releases,
            checkpoint_stride=stride,
            retain_incumbents=retain,
        )

    def _pack(self, order: list[Job], view: SystemView) -> list[PackedJob]:
        return self._packer(view).pack(order)

    def _seed_population(
        self, ids: list[int], by_id: dict[int, Job]
    ) -> list[list[int]]:
        """Strong heuristic orders (LPT, SPT) plus seeded shuffles."""
        if self.use_columns and len(ids) >= COLUMNAR_MIN_QUEUE:
            # Stable argsorts over attribute columns: ties keep the ids
            # list order, exactly like Python's stable sort with a
            # scalar key. Columns come from the (possibly
            # duration-remapped) planning jobs, not the view's masters.
            # Small populations take the facade twin (same crossover
            # rationale as BaseScheduler.columnar).
            n = len(ids)
            ns = np.fromiter(
                (by_id[jid].node_seconds for jid in ids),
                np.float64,
                count=n,
            )
            wt = np.fromiter(
                (by_id[jid].walltime for jid in ids), np.float64, count=n
            )
            lpt = [ids[k] for k in np.argsort(-ns, kind="stable").tolist()]
            spt = [ids[k] for k in np.argsort(wt, kind="stable").tolist()]
        else:
            lpt = sorted(ids, key=lambda jid: -by_id[jid].node_seconds)
            spt = sorted(ids, key=lambda jid: by_id[jid].walltime)
        population = [lpt, spt]
        while len(population) < self.config.population:
            perm = list(ids)
            self._rng.shuffle(perm)
            population.append(perm)
        return population

    def _evolve_subset(
        self, jobs: list[Job], view: SystemView
    ) -> list[Job]:
        # Checkpoint-restarted jobs plan with their remaining runtime
        # (no-op mapping on undisrupted runs).
        jobs = effective_jobs(view, jobs)
        by_id = {j.job_id: j for j in jobs}
        ids = [j.job_id for j in jobs]
        if self.config.prefix_crossover:
            best = self._evolve_prefix(ids, by_id, view)
        else:
            best = self._evolve_legacy(ids, by_id, view)
        return [by_id[jid] for jid in best]

    def _evolve_legacy(
        self, ids: list[int], by_id: dict[int, Job], view: SystemView
    ) -> list[int]:
        """The pre-prefix engine: OX1 crossover, cold full pack per
        chromosome. Byte-identical to the PR-4 GA (pinned by digest)."""
        cfg = self.config
        rng = self._rng
        packer = self._packer(view)

        def evaluate(chromosome: list[int]) -> float:
            order = [by_id[jid] for jid in chromosome]
            return self._fitness(packer.pack(order), view.now)

        population = self._seed_population(ids, by_id)
        scores = [evaluate(c) for c in population]

        for _ in range(cfg.generations):
            self.generations_run += 1
            ranked = sorted(range(len(population)), key=lambda i: scores[i])
            next_pop = [list(population[i]) for i in ranked[: cfg.elite]]
            while len(next_pop) < cfg.population:

                def tournament() -> list[int]:
                    contenders = rng.choice(
                        len(population),
                        size=min(cfg.tournament_k, len(population)),
                        replace=False,
                    )
                    best = min(contenders, key=lambda i: scores[i])
                    return population[best]

                if rng.random() < cfg.crossover_rate and len(ids) >= 2:
                    child = order_crossover(tournament(), tournament(), rng)
                else:
                    child = list(tournament())
                if rng.random() < cfg.mutation_rate and len(ids) >= 2:
                    i, j = rng.choice(len(ids), size=2, replace=False)
                    child[i], child[j] = child[j], child[i]
                next_pop.append(child)
            population = next_pop
            scores = [evaluate(c) for c in population]

        return population[int(np.argmin(scores))]

    def _evolve_prefix(
        self, ids: list[int], by_id: dict[int, Job], view: SystemView
    ) -> list[int]:
        """Prefix-sharing GA: children share a parent's prefix up to
        the crossover cut (or the first mutated position) and are
        decoded via ``pack_from`` against the parent's retained pack
        state — every evaluation packs only the changed suffix.

        Population members are ``(chromosome, score, pack_key)``
        triples; ``pack_key`` addresses the member's retained incumbent
        inside the packer (two generations retained, FIFO-evicted, so
        memory stays bounded while parents of the *current* breeding
        step are always resident; an evicted parent just costs one cold
        full pack)."""
        cfg = self.config
        rng = self._rng
        n = len(ids)
        packer = self._packer(view, prefix_n=n)
        next_key = iter(range(1 << 62))

        def order_of(chromosome: list[int]) -> list[Job]:
            return [by_id[jid] for jid in chromosome]

        def pack_member(
            chromosome: list[int],
            parent_key: Optional[int],
            shared_prefix: int,
        ) -> tuple[float, int]:
            order = order_of(chromosome)
            if parent_key is not None and packer.load_incumbent(parent_key):
                placements = packer.pack_from(order, shared_prefix)
                packer.commit(order, shared_prefix, placements)
            else:
                placements = packer.pack(order)
            key = next(next_key)
            packer.save_incumbent(key)
            return self._fitness(placements, view.now), key

        members = []
        for chromosome in self._seed_population(ids, by_id):
            score, key = pack_member(chromosome, None, 0)
            members.append((chromosome, score, key))

        def tournament_index() -> int:
            contenders = rng.choice(
                len(members),
                size=min(cfg.tournament_k, len(members)),
                replace=False,
            )
            return min(contenders, key=lambda i: members[i][1])

        for _ in range(cfg.generations):
            self.generations_run += 1
            ranked = sorted(
                range(len(members)), key=lambda i: members[i][1]
            )
            # Elites carry their chromosome, score, and incumbent over
            # unchanged; re-saving the pack state under a fresh key
            # refreshes its retention recency (O(1), shared snapshots).
            next_members = []
            for i in ranked[: cfg.elite]:
                chromosome, score, key = members[i]
                if packer.load_incumbent(key):
                    key = next(next_key)
                    packer.save_incumbent(key)
                next_members.append((list(chromosome), score, key))
            while len(next_members) < cfg.population:
                if rng.random() < cfg.crossover_rate and n >= 2:
                    parent = tournament_index()
                    child, shared = prefix_crossover(
                        members[parent][0],
                        members[tournament_index()][0],
                        rng,
                    )
                else:
                    parent = tournament_index()
                    child, shared = list(members[parent][0]), n
                if rng.random() < cfg.mutation_rate and n >= 2:
                    i, j = rng.choice(n, size=2, replace=False)
                    child[i], child[j] = child[j], child[i]
                    shared = min(shared, int(min(i, j)))
                parent_key = members[parent][2]
                if shared >= n:
                    # Unchanged clone: the parent's score and pack
                    # state stand in verbatim — no packing at all.
                    next_members.append(
                        (child, members[parent][1], parent_key)
                    )
                    continue
                score, key = pack_member(child, parent_key, shared)
                next_members.append((child, score, key))
            members = next_members

        for stat, value in packer.stats.as_dict().items():
            self._pack_stats[stat] = self._pack_stats.get(stat, 0) + value
        best = min(range(len(members)), key=lambda i: members[i][1])
        return members[best][0]

    # -- SchedulerProtocol -------------------------------------------------
    def decide(self, view: SystemView) -> Action:
        queued_ids = {j.job_id for j in view.queued}
        if queued_ids - self._planned_ids or not self._consumed.isdisjoint(
            queued_ids
        ):
            self._consumed.clear()
            # Jobs exceeding the eventually-available capacity (nodes
            # failed and not yet repaired) cannot pack; plan them at
            # +inf so they wait for repairs instead of crashing the GA.
            plannable, unpackable = split_unpackable(
                view,
                list(view.queued),
                [
                    (run.expected_end, run.job.nodes, run.job.memory_gb)
                    for run in view.running
                ],
            )
            if plannable:
                order = self._evolve_subset(plannable, view)
                final = self._pack(order, view)
                self._plan = sorted(
                    final, key=lambda p: (p.start, p.job.job_id)
                )
            else:
                self._plan = []
            self._plan.extend(
                PackedJob(j, math.inf) for j in unpackable
            )
            self._plan_pos = 0
            self._planned_ids = set(queued_ids)

        # Index cursor instead of O(n) list.pop(0) per consumed entry.
        plan, pos = self._plan, self._plan_pos
        while pos < len(plan) and plan[pos].job.job_id not in queued_ids:
            pos += 1
        self._plan_pos = pos
        if pos >= len(plan):
            return Delay
        head = plan[pos]
        job = view.queued_job(head.job.job_id)
        if job is not None and view.can_fit(job):
            self._plan_pos = pos + 1
            self._consumed.add(job.job_id)
            return StartJob(job.job_id)
        return Delay

    def collect_extras(self) -> dict[str, Any]:
        extras: dict[str, Any] = {
            "generations": self.generations_run,
            "prefix_crossover": self.config.prefix_crossover,
        }
        if self._pack_stats:
            extras["pack_stats"] = dict(self._pack_stats)
        return extras
