"""Shortest Job First scheduling.

The paper's second heuristic baseline (§3.3): prioritize jobs with the
shortest estimated runtime, which typically reduces average turnaround
time but can starve long jobs and compromise fairness.

``strict=True`` (default, matching the paper's simple SJF) waits when
the shortest job does not fit; ``strict=False`` starts the shortest
*feasible* job (SJF with first-fit skipping), which is occasionally
useful as an ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.simulator import SystemView


class SJFScheduler(BaseScheduler):
    """Shortest (estimated-runtime) job first."""

    supports_columns = True

    def __init__(
        self,
        *,
        strict: bool = True,
        use_walltime: bool = True,
        use_columns: Optional[bool] = None,
    ):
        super().__init__(use_columns=use_columns)
        self.strict = strict
        self.use_walltime = use_walltime
        self.name = "sjf" if strict else "sjf_firstfit"

    def _key(self, job) -> tuple[float, int]:
        runtime = job.walltime if self.use_walltime else job.duration
        return (runtime, job.job_id)

    def _decide_columns(self, view: SystemView) -> Action:
        cols = view.columns()
        if not cols.n:
            return Delay
        runtime = cols.walltime if self.use_walltime else cols.duration
        # lexsort's *last* key is primary: runtime ascending, job-id
        # tie-break — the same total order as sorting (runtime, id)
        # key tuples, with no per-job lambda call.
        order = np.lexsort((cols.ids, runtime))
        if self.strict:
            pos = int(order[0])
            if cols.fits_at(pos):
                return StartJob(cols.id_at(pos))
            return Delay
        feasible = cols.fits_mask()[order]
        hits = np.flatnonzero(feasible)
        if hits.size:
            return StartJob(cols.id_at(int(order[int(hits[0])])))
        return Delay

    def decide(self, view: SystemView) -> Action:
        if self.columnar(view):
            return self._decide_columns(view)
        if not view.queued:
            return Delay
        ordered = sorted(view.queued, key=self._key)
        if self.strict:
            head = ordered[0]
            if view.can_fit(head):
                return StartJob(head.job_id)
            return Delay
        for job in ordered:
            if view.can_fit(job):
                return StartJob(job.job_id)
        return Delay
