"""Shortest Job First scheduling.

The paper's second heuristic baseline (§3.3): prioritize jobs with the
shortest estimated runtime, which typically reduces average turnaround
time but can starve long jobs and compromise fairness.

``strict=True`` (default, matching the paper's simple SJF) waits when
the shortest job does not fit; ``strict=False`` starts the shortest
*feasible* job (SJF with first-fit skipping), which is occasionally
useful as an ablation.
"""

from __future__ import annotations

from repro.schedulers.base import BaseScheduler
from repro.sim.actions import Action, Delay, StartJob
from repro.sim.simulator import SystemView


class SJFScheduler(BaseScheduler):
    """Shortest (estimated-runtime) job first."""

    def __init__(self, *, strict: bool = True, use_walltime: bool = True):
        super().__init__()
        self.strict = strict
        self.use_walltime = use_walltime
        self.name = "sjf" if strict else "sjf_firstfit"

    def _key(self, job) -> tuple[float, int]:
        runtime = job.walltime if self.use_walltime else job.duration
        return (runtime, job.job_id)

    def decide(self, view: SystemView) -> Action:
        if not view.queued:
            return Delay
        ordered = sorted(view.queued, key=self._key)
        if self.strict:
            head = ordered[0]
            if view.can_fit(head):
                return StartJob(head.job_id)
            return Delay
        for job in ordered:
            if view.can_fit(job):
                return StartJob(job.job_id)
        return Delay
