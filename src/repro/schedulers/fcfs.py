"""First-Come-First-Served scheduling.

:class:`FCFSScheduler` is the paper's baseline (§3.3): execute jobs
strictly in arrival order, starting the head job whenever resources
permit and otherwise waiting — which is exactly what makes it
vulnerable to convoy effects (§3.1's Long-Job-Dominant and Adversarial
scenarios exist to expose that).

:class:`EasyBackfillScheduler` adds EASY backfilling (Srinivasan et
al., cited by the paper as the classic FCFS+backfilling approach): when
the head job cannot start, a *reservation* is computed for it — the
earliest time enough resources will be free, assuming running jobs end
at their walltime — and smaller jobs may jump the queue only if they
cannot push that reservation back.
"""

from __future__ import annotations

from itertools import islice
from typing import Sequence

import numpy as np

from repro.schedulers.base import BaseScheduler
from repro.schedulers.recovery import (
    domain_pressures,
    fits_healthy_domain,
    healthy_domain_mask,
)
from repro.sim.actions import Action, BackfillJob, Delay, StartJob
from repro.sim.job import Job
from repro.sim.simulator import RunningJob, SystemView


class FCFSScheduler(BaseScheduler):
    """Strict arrival-order scheduling without backfilling."""

    name = "fcfs"
    supports_columns = True

    def decide(self, view: SystemView) -> Action:
        if self.columnar(view):
            # Head-only policy: two O(1) scalar probes against the
            # columnar surface — no per-decision gather even on a deep
            # queue (the probes read the already-materialized queue
            # snapshot, so cost is flat either way).
            cols = view.columns()
            if cols.fits_at(0):
                return StartJob(cols.id_at(0))
            return Delay
        if not view.queued:
            return Delay
        head = view.queued[0]
        if view.can_fit(head):
            return StartJob(head.job_id)
        return Delay


def head_reservation(
    head: Job, running: tuple[RunningJob, ...], view: SystemView
) -> tuple[float, int, float]:
    """Compute the EASY reservation for the blocked head job.

    Walks running jobs in walltime-completion order, accumulating
    released resources until *head* fits. Returns ``(shadow_time,
    extra_nodes, extra_memory)`` where the extras are the resources
    that remain free at the shadow time beyond what *head* needs —
    backfilled work small enough to fit in the extras can run past the
    shadow time without delaying the head job.

    When *running* is the view's own running set, the traversal uses
    the simulator-maintained completion-ordered index
    (:meth:`SystemView.running_by_walltime_end`) instead of re-sorting
    on every blocked decision.
    """
    free_nodes = view.free_nodes
    free_mem = view.free_memory_gb
    shadow = view.now
    if running is view.running:
        releases: Sequence[RunningJob] = view.running_by_walltime_end()
    else:
        releases = sorted(
            running, key=lambda r: r.start_time + r.job.walltime
        )
    for run in releases:
        if free_nodes >= head.nodes and free_mem >= head.memory_gb - 1e-9:
            break
        shadow = run.start_time + run.job.walltime
        free_nodes += run.job.nodes
        free_mem += run.job.memory_gb
    # All releases may be needed; shadow is then the last release time.
    extra_nodes = free_nodes - head.nodes
    extra_mem = free_mem - head.memory_gb
    return shadow, extra_nodes, extra_mem


class EasyBackfillScheduler(BaseScheduler):
    """FCFS with EASY (aggressive) backfilling, drain-aware.

    A queued job *j* may backfill iff it fits right now and either

    * it finishes (by walltime) before the head job's reservation, or
    * it only consumes resources the head job will not need at its
      reservation time.

    Recovery awareness: no job (head or backfill) is started across an
    announced maintenance drain it might not survive
    (:meth:`SystemView.drain_safe` — vacuously true on undisrupted
    runs, so the policy is byte-identical to plain EASY there). A
    drain-blocked head is treated like a capacity-blocked one:
    shorter/safer jobs may still backfill around it.

    Topology awareness: on clusters with real failure domains, a
    *requeued* job (one a failure or drain already evicted) is not
    backfilled unless some healthy domain — enough free nodes after
    announced domain-scoped drains are charged as single capacity
    notches — can host its restart
    (:func:`~repro.schedulers.recovery.fits_healthy_domain`). Flat
    topologies and undisrupted runs skip the check entirely.
    """

    name = "fcfs_backfill"
    supports_columns = True

    def decide(self, view: SystemView) -> Action:
        if not view.queued:
            return Delay
        head = view.queued[0]
        head_fits = view.can_fit(head)
        if head_fits and view.drain_safe(head):
            return StartJob(head.job_id)
        if head_fits:
            # Drain-parked head: it could start right now, so its
            # reservation is the earliest drain-safe time (typically
            # the blocking window's end), and the resources it will
            # take then are exactly its own request. Short jobs ending
            # before that shadow may borrow the head's share — without
            # this, head_reservation would return shadow == now
            # (the head "fits immediately") and the backfill window
            # would collapse for the whole announce lead + window.
            shadow = view.earliest_drain_safe_start(head)
            extra_nodes = view.free_nodes - head.nodes
            extra_mem = view.free_memory_gb - head.memory_gb
        else:
            shadow, extra_nodes, extra_mem = head_reservation(
                head, view.running, view
            )
        spread_check = bool(view.remaining_runtimes) and view.has_domains
        pressures = domain_pressures(view) if spread_check else ()
        if self.columnar(view):
            # Vectorized candidate scan: one boolean mask per facade
            # predicate, elementwise-identical arithmetic (same 1e-9
            # slacks, same float64 adds), so the first set bit is the
            # exact job the scalar scan would have returned.
            cols = view.columns()
            ok = cols.fits_mask() & cols.drain_safe_mask()
            if spread_check:
                unhealthy = cols.requeued_mask() & ~healthy_domain_mask(
                    view, cols.nodes, pressures
                )
                ok &= ~unhealthy
            ok &= (view.now + cols.walltime <= shadow + 1e-9) | (
                (cols.nodes <= extra_nodes)
                & (cols.memory_gb <= extra_mem + 1e-9)
            )
            ok[0] = False  # the head is the reservation, not a candidate
            hits = np.flatnonzero(ok)
            if hits.size:
                self._set_meta(
                    shadow_time=shadow,
                    reserved_job=head.job_id,
                )
                return BackfillJob(cols.id_at(int(hits[0])))
            return Delay
        # islice avoids copying the (possibly long) queue tuple per
        # decision just to skip the head.
        for job in islice(view.queued, 1, None):
            if not view.can_fit(job) or not view.drain_safe(job):
                continue
            if (
                spread_check
                and job.job_id in view.remaining_runtimes
                and not fits_healthy_domain(view, job, pressures)
            ):
                continue
            ends_before_shadow = view.now + job.walltime <= shadow + 1e-9
            fits_in_extras = (
                job.nodes <= extra_nodes
                and job.memory_gb <= extra_mem + 1e-9
            )
            if ends_before_shadow or fits_in_extras:
                self._set_meta(
                    shadow_time=shadow,
                    reserved_job=head.job_id,
                )
                return BackfillJob(job.job_id)
        return Delay
