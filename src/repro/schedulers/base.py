"""Base class for scheduling policies.

Concrete schedulers implement :meth:`decide`; the default hook
implementations (rejection handling, per-decision metadata) satisfy
:class:`~repro.sim.simulator.SchedulerProtocol` so subclasses only
override what they need.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.actions import Action
from repro.sim.columns import COLUMNAR_MIN_QUEUE
from repro.sim.constraints import Violation
from repro.sim.simulator import SystemView


class BaseScheduler:
    """Shared plumbing for all scheduling policies.

    Attributes
    ----------
    name:
        Policy identifier used in results and figures.
    emits_stop:
        When True, the simulator grants one final decision query after
        every job has been scheduled so the policy can narrate a
        closing ``Stop`` (the LLM agent does; heuristics don't).
    supports_columns:
        Capability flag: the policy has a columnar decision kernel that
        consumes :meth:`SystemView.columns` instead of iterating ``Job``
        facades. Columnar kernels are byte-identical twins of the facade
        path (digest-pinned), so opting in is purely a performance
        choice; ``use_columns=False`` at construction forces the facade
        path (the twin the parity tests diff against).
    """

    name: str = "base"
    emits_stop: bool = False
    supports_columns: bool = False

    def __init__(self, *, use_columns: Optional[bool] = None) -> None:
        self._last_meta: dict[str, Any] = {}
        #: Which kernel :meth:`decide` runs. Defaults to the columnar
        #: one whenever the policy has it; never True without one.
        self.use_columns: bool = (
            self.supports_columns
            if use_columns is None
            else bool(use_columns) and self.supports_columns
        )

    def columnar(self, view: SystemView) -> bool:
        """Should this decision run the columnar kernel?

        True only when the policy opted in, the queue is deep enough
        to amortize numpy dispatch
        (:data:`~repro.sim.columns.COLUMNAR_MIN_QUEUE`), *and* a
        columnar projection is already attached to the view (the SoA
        engine attaches one per decision point; bench harnesses attach
        prebuilt masters). Short queues take the byte-identical facade
        path, which beats vectorization on a handful of jobs, and
        hand-built views — the object-graph reference engine's, and
        test fixtures' — never pay the O(queue) fallback master build
        per decision just to dispatch. A pure constant-factor switch —
        the twin kernels are digest-pinned identical.
        """
        return (
            self.use_columns
            and len(view.queued) >= COLUMNAR_MIN_QUEUE
            and view._columns is not None
        )

    # -- SchedulerProtocol -------------------------------------------------
    def reset(self) -> None:
        """Clear per-run state. Subclasses with state must extend."""
        self._last_meta = {}

    def decide(self, view: SystemView) -> Action:
        raise NotImplementedError

    def on_rejection(
        self,
        action: Action,
        violations: tuple[Violation, ...],
        view: SystemView,
    ) -> None:
        """Default: ignore (well-behaved heuristics never get here)."""

    def decision_meta(self) -> dict[str, Any]:
        """Metadata attached to the most recent decision record."""
        return self._last_meta

    def collect_extras(self) -> dict[str, Any]:
        """Artifacts to attach to the final ScheduleResult."""
        return {}

    def _set_meta(self, **kwargs: Any) -> None:
        self._last_meta = kwargs

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"<{type(self).__name__} name={self.name!r}>"
