"""Base class for scheduling policies.

Concrete schedulers implement :meth:`decide`; the default hook
implementations (rejection handling, per-decision metadata) satisfy
:class:`~repro.sim.simulator.SchedulerProtocol` so subclasses only
override what they need.
"""

from __future__ import annotations

from typing import Any

from repro.sim.actions import Action
from repro.sim.constraints import Violation
from repro.sim.simulator import SystemView


class BaseScheduler:
    """Shared plumbing for all scheduling policies.

    Attributes
    ----------
    name:
        Policy identifier used in results and figures.
    emits_stop:
        When True, the simulator grants one final decision query after
        every job has been scheduled so the policy can narrate a
        closing ``Stop`` (the LLM agent does; heuristics don't).
    """

    name: str = "base"
    emits_stop: bool = False

    def __init__(self) -> None:
        self._last_meta: dict[str, Any] = {}

    # -- SchedulerProtocol -------------------------------------------------
    def reset(self) -> None:
        """Clear per-run state. Subclasses with state must extend."""
        self._last_meta = {}

    def decide(self, view: SystemView) -> Action:
        raise NotImplementedError

    def on_rejection(
        self,
        action: Action,
        violations: tuple[Violation, ...],
        view: SystemView,
    ) -> None:
        """Default: ignore (well-behaved heuristics never get here)."""

    def decision_meta(self) -> dict[str, Any]:
        """Metadata attached to the most recent decision record."""
        return self._last_meta

    def collect_extras(self) -> dict[str, Any]:
        """Artifacts to attach to the final ScheduleResult."""
        return {}

    def _set_meta(self, **kwargs: Any) -> None:
        self._last_meta = kwargs

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"<{type(self).__name__} name={self.name!r}>"
