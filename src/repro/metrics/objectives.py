"""The seven objectives of paper §3.2, plus a combined report.

Formulas (J = set of jobs, x_j = start, d_j = duration, s_j = submit,
n_j / m_j = node / memory demand, C / M = cluster capacities):

* makespan          = max_j (x_j + d_j) − min_j s_j
* average wait      = mean_j (x_j − s_j)
* average turnaround= mean_j (x_j + d_j − s_j)
* throughput        = n / (max_j (x_j + d_j) − min_j x_j)
* node utilization  = Σ_j n_j d_j / (C · makespan)
* memory utilization= Σ_j m_j d_j / (M · makespan)
* fairness (job)    = Jain index of per-job waits
* fairness (user)   = Jain index of per-user mean waits
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.metrics.fairness import jain_index, per_group_means
from repro.sim.schedule import ScheduleResult

#: Canonical metric names, in the order the paper's figures list them.
METRIC_NAMES: tuple[str, ...] = (
    "makespan",
    "avg_wait_time",
    "avg_turnaround_time",
    "throughput",
    "node_utilization",
    "memory_utilization",
    "wait_fairness",
    "user_fairness",
)


def makespan(arrays: Mapping[str, np.ndarray]) -> float:
    """Total elapsed time from earliest submission to last completion."""
    if arrays["end"].size == 0:
        return 0.0
    return float(arrays["end"].max() - arrays["submit"].min())


def average_wait_time(arrays: Mapping[str, np.ndarray]) -> float:
    """Mean queued time before execution (user-perceived latency)."""
    if arrays["wait"].size == 0:
        return 0.0
    return float(arrays["wait"].mean())


def average_turnaround_time(arrays: Mapping[str, np.ndarray]) -> float:
    """Mean submission-to-completion latency."""
    if arrays["turnaround"].size == 0:
        return 0.0
    return float(arrays["turnaround"].mean())


def throughput(arrays: Mapping[str, np.ndarray]) -> float:
    """Jobs completed per unit time over the execution window.

    The paper's definition divides n by (makespan − min_j x_j), i.e.
    the span from the first *start* to the last completion. For a
    degenerate zero-length window (single instantaneous job) this
    returns ``inf``-guarded 0.0.
    """
    n = arrays["end"].size
    if n == 0:
        return 0.0
    window = float(arrays["end"].max() - arrays["start"].min())
    if window <= 0.0:
        return 0.0
    return n / window


def node_utilization(
    arrays: Mapping[str, np.ndarray], total_nodes: int
) -> float:
    """Node-seconds of work over cluster node-seconds available."""
    span = makespan(arrays)
    if span <= 0.0:
        return 0.0
    used = float((arrays["nodes"] * arrays["duration"]).sum())
    return used / (total_nodes * span)


def memory_utilization(
    arrays: Mapping[str, np.ndarray], total_memory_gb: float
) -> float:
    """GB-seconds of memory occupancy over capacity GB-seconds."""
    span = makespan(arrays)
    if span <= 0.0:
        return 0.0
    used = float((arrays["memory_gb"] * arrays["duration"]).sum())
    return used / (total_memory_gb * span)


def per_job_fairness(arrays: Mapping[str, np.ndarray]) -> float:
    """Jain index over per-job wait times."""
    return jain_index(arrays["wait"])


def per_user_fairness(arrays: Mapping[str, np.ndarray]) -> float:
    """Jain index over per-user average wait times."""
    if arrays["wait"].size == 0:
        return 1.0
    _, means = per_group_means(arrays["wait"], arrays["user"])
    return jain_index(means)


@dataclass(frozen=True)
class MetricReport:
    """All objectives for one schedule, as an immutable record."""

    scheduler_name: str
    n_jobs: int
    values: Mapping[str, float]

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def as_dict(self) -> dict[str, float]:
        return dict(self.values)

    def __str__(self) -> str:  # pragma: no cover - convenience
        body = ", ".join(f"{k}={v:.4g}" for k, v in self.values.items())
        return f"MetricReport({self.scheduler_name}, n={self.n_jobs}: {body})"


def compute_metrics(result: ScheduleResult) -> MetricReport:
    """Compute every §3.2 objective for a finished schedule.

    Runs executed under a disruption trace additionally report the
    reliability objectives of :mod:`repro.metrics.disruption`
    (goodput/wasted node-hours, work lost per kill, requeue latency);
    undisrupted runs keep the exact legacy metric set so existing
    reports and stored artifacts stay byte-identical.
    """
    arrays = result.to_arrays()
    values = {
        "makespan": makespan(arrays),
        "avg_wait_time": average_wait_time(arrays),
        "avg_turnaround_time": average_turnaround_time(arrays),
        "throughput": throughput(arrays),
        "node_utilization": node_utilization(arrays, result.total_nodes),
        "memory_utilization": memory_utilization(
            arrays, result.total_memory_gb
        ),
        "wait_fairness": per_job_fairness(arrays),
        "user_fairness": per_user_fairness(arrays),
    }
    # Gate on ``disrupted`` alone (not on preemptions): a voluntary
    # PreemptJob during an undisrupted run must not grow this run's
    # metric keys past its sig="none" baselines, or normalization
    # against them would KeyError. The preemption log itself stays
    # available on the result for direct consumers.
    if result.disrupted:
        from repro.metrics.disruption import disruption_metrics

        values.update(disruption_metrics(result))
    return MetricReport(
        scheduler_name=result.scheduler_name,
        n_jobs=result.n_jobs,
        values=values,
    )
