"""Scheduling performance objectives (paper §3.2).

Seven standard objectives capturing system-level efficiency and
user-perceived responsiveness: makespan, average wait time, average
turnaround time, throughput, node utilization, memory utilization, and
Jain fairness from both per-job and per-user perspectives.

All computations are numpy-vectorized over the
:meth:`~repro.sim.schedule.ScheduleResult.to_arrays` view.
"""

from repro.metrics.disruption import (
    DISRUPTION_METRIC_NAMES,
    disruption_metrics,
    goodput_fraction,
    goodput_node_hours,
    mean_requeue_latency,
    wasted_node_hours,
    work_lost_per_kill,
)
from repro.metrics.energy import (
    EnergyReport,
    PowerModel,
    compare_energy,
    energy_report,
)
from repro.metrics.fairness import jain_index
from repro.metrics.normalize import (
    LOWER_BETTER,
    HIGHER_BETTER,
    normalize_to_baseline,
)
from repro.metrics.objectives import (
    METRIC_NAMES,
    MetricReport,
    average_turnaround_time,
    average_wait_time,
    compute_metrics,
    makespan,
    memory_utilization,
    node_utilization,
    per_job_fairness,
    per_user_fairness,
    throughput,
)

__all__ = [
    "DISRUPTION_METRIC_NAMES",
    "EnergyReport",
    "HIGHER_BETTER",
    "LOWER_BETTER",
    "METRIC_NAMES",
    "MetricReport",
    "PowerModel",
    "compare_energy",
    "disruption_metrics",
    "energy_report",
    "average_turnaround_time",
    "average_wait_time",
    "compute_metrics",
    "goodput_fraction",
    "goodput_node_hours",
    "jain_index",
    "makespan",
    "mean_requeue_latency",
    "memory_utilization",
    "node_utilization",
    "normalize_to_baseline",
    "per_job_fairness",
    "per_user_fairness",
    "throughput",
    "wasted_node_hours",
    "work_lost_per_kill",
]
