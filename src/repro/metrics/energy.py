"""Energy accounting — the paper's §6 "energy-aware scheduling" future
work.

A simple but standard node-power model: every node draws
``idle_watts`` whenever the partition is up, plus an additional
``active_watts − idle_watts`` while it executes a job. Under that
model, for a fixed workload the *active* energy is schedule-invariant
(node-seconds of work are fixed), so the scheduler's entire energy
lever is the idle term — which is proportional to makespan. This is
why makespan/utilization-focused policies are also the energy-efficient
ones, and the :func:`energy_report` helper quantifies exactly how much
idle energy a schedule burns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.sim.schedule import ScheduleResult

#: Joules per kilowatt-hour.
_J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class PowerModel:
    """Per-node power draw in watts.

    Defaults approximate a dual-socket CPU node: ~120 W idle,
    ~450 W under full load.
    """

    idle_watts: float = 120.0
    active_watts: float = 450.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError("idle_watts must be non-negative")
        if self.active_watts < self.idle_watts:
            raise ValueError("active_watts must be >= idle_watts")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one schedule."""

    #: Energy consumed doing useful work (schedule-invariant).
    active_kwh: float
    #: Idle-draw energy over the schedule's span (the scheduler's lever).
    idle_kwh: float
    #: Span the partition was accounted for (= makespan).
    span_s: float
    #: Average power draw over the span, in kW.
    average_kw: float
    #: Energy-delay product in kWh·s (joint energy/latency figure).
    energy_delay_product: float

    @property
    def total_kwh(self) -> float:
        return self.active_kwh + self.idle_kwh

    @property
    def idle_fraction(self) -> float:
        """Share of total energy burned idle — lower is better."""
        total = self.total_kwh
        return self.idle_kwh / total if total > 0 else 0.0


def energy_report(
    result: ScheduleResult, model: PowerModel | None = None
) -> EnergyReport:
    """Compute the energy breakdown of a finished schedule.

    Active energy integrates ``(active − idle) × node-seconds`` over
    every job; idle energy charges ``idle_watts`` for every node of the
    partition across the whole makespan (HPC partitions do not power
    down between jobs).
    """
    model = model or PowerModel()
    arrays = result.to_arrays()
    if arrays["end"].size == 0:
        return EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0)
    span = float(arrays["end"].max() - arrays["submit"].min())
    node_seconds = float((arrays["nodes"] * arrays["duration"]).sum())
    active_j = node_seconds * (model.active_watts - model.idle_watts)
    idle_j = result.total_nodes * span * model.idle_watts
    total_j = active_j + idle_j
    avg_kw = (total_j / span) / 1000.0 if span > 0 else 0.0
    return EnergyReport(
        active_kwh=active_j / _J_PER_KWH,
        idle_kwh=idle_j / _J_PER_KWH,
        span_s=span,
        average_kw=avg_kw,
        energy_delay_product=(total_j / _J_PER_KWH) * span,
    )


def compare_energy(
    results: Mapping[str, ScheduleResult],
    model: PowerModel | None = None,
) -> dict[str, EnergyReport]:
    """Energy reports for a set of schedules of the *same* workload.

    Sanity-checks that active energy is identical across schedulers
    (it must be — the work is fixed) so any total-energy difference is
    attributable to idle time.
    """
    model = model or PowerModel()
    reports = {
        name: energy_report(result, model)
        for name, result in results.items()
    }
    actives = [r.active_kwh for r in reports.values()]
    if actives and not np.allclose(actives, actives[0], rtol=1e-9):
        raise ValueError(
            "schedules disagree on active energy — these results are "
            "not from the same workload"
        )
    return reports
