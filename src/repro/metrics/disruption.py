"""Reliability objectives for disrupted runs.

Complements the paper's §3.2 objectives (which measure a perfectly
reliable cluster) with the quantities that matter once failures and
drains exist — steady state is where schedulers look similar, recovery
is where they differentiate:

* **goodput / wasted node-hours** — node-time that ended up in
  completed work vs. node-time executed and then thrown away by kills
  (work past the last checkpoint is re-done on restart);
* **goodput fraction** — goodput / (goodput + wasted), the
  dimensionless efficiency of the recovery path;
* **work lost per kill** — mean node-seconds discarded per involuntary
  kill (failure or drain eviction; voluntary ``PreemptJob`` suspends
  are clean and excluded);
* **requeue latency** — mean seconds a killed job waited between its
  eviction and its restart.

These are computed from the :class:`~repro.sim.schedule.ScheduleResult`
preemption log and appear in :func:`~repro.metrics.objectives.compute_metrics`
output only for disrupted runs, so undisrupted reports/stores remain
byte-identical to the pre-disruption code.
"""

from __future__ import annotations

from repro.sim.schedule import ScheduleResult

#: Extra metric columns disrupted runs report, in display order.
DISRUPTION_METRIC_NAMES: tuple[str, ...] = (
    "goodput_node_hours",
    "wasted_node_hours",
    "goodput_fraction",
    "n_kills",
    "work_lost_per_kill",
    "mean_requeue_latency",
)

#: Preemption reasons that count as involuntary kills.
INVOLUNTARY_REASONS: tuple[str, ...] = ("failure", "drain")


def goodput_node_hours(result: ScheduleResult) -> float:
    """Node-hours of *useful* (committed) work.

    Each record's final attempt span is work kept, and every
    checkpointed chunk a preemption preserved was kept too — together
    they sum to each job's true duration, so goodput is independent of
    how often a job was bounced around.
    """
    useful = sum(
        rec.job.nodes * (rec.end_time - rec.start_time)
        for rec in result.records
    )
    useful += sum(p.nodes * p.work_saved for p in result.preemptions)
    return useful / 3600.0


def wasted_node_hours(result: ScheduleResult) -> float:
    """Node-hours executed and then discarded by kills (work done
    since the last checkpoint when the node died / the drain hit)."""
    return sum(p.lost_node_seconds for p in result.preemptions) / 3600.0


def goodput_fraction(result: ScheduleResult) -> float:
    """Useful work over total work executed, in (0, 1]."""
    good = goodput_node_hours(result)
    waste = wasted_node_hours(result)
    total = good + waste
    if total <= 0.0:
        return 1.0
    return good / total


def work_lost_per_kill(result: ScheduleResult) -> float:
    """Mean node-seconds discarded per involuntary kill."""
    involuntary = [
        p for p in result.preemptions if p.reason in INVOLUNTARY_REASONS
    ]
    if not involuntary:
        return 0.0
    return sum(p.lost_node_seconds for p in involuntary) / len(involuntary)


def mean_requeue_latency(result: ScheduleResult) -> float:
    """Mean seconds between an involuntary kill and the victim's
    restart.

    Voluntary ``PreemptJob`` suspensions are excluded (matching
    ``n_kills``/``work_lost_per_kill``): they restart on the policy's
    own schedule and would dilute the involuntary-recovery latency
    this metric exists to compare across restart policies.
    """
    latencies = [
        p.requeue_latency
        for p in result.preemptions
        if p.requeue_latency is not None
        and p.reason in INVOLUNTARY_REASONS
    ]
    if not latencies:
        return 0.0
    return float(sum(latencies) / len(latencies))


def disruption_metrics(result: ScheduleResult) -> dict[str, float]:
    """All reliability objectives for one (disrupted) schedule."""
    return {
        "goodput_node_hours": goodput_node_hours(result),
        "wasted_node_hours": wasted_node_hours(result),
        "goodput_fraction": goodput_fraction(result),
        "n_kills": float(
            sum(
                1
                for p in result.preemptions
                if p.reason in INVOLUNTARY_REASONS
            )
        ),
        "work_lost_per_kill": work_lost_per_kill(result),
        "mean_requeue_latency": mean_requeue_latency(result),
    }
