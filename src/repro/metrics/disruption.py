"""Reliability objectives for disrupted runs.

Complements the paper's §3.2 objectives (which measure a perfectly
reliable cluster) with the quantities that matter once failures and
drains exist — steady state is where schedulers look similar, recovery
is where they differentiate:

* **goodput / wasted node-hours** — node-time that ended up in
  completed work vs. node-time executed and then thrown away by kills
  (work past the last checkpoint is re-done on restart);
* **goodput fraction** — goodput / (goodput + wasted), the
  dimensionless efficiency of the recovery path;
* **work lost per kill** — mean node-seconds discarded per involuntary
  kill (failure or drain eviction; voluntary ``PreemptJob`` suspends
  are clean and excluded);
* **requeue latency** — mean seconds a killed job waited between its
  eviction and its restart.

Runs whose trace carries *domain-level* events (correlated rack/switch
shocks, domain-scoped drains) additionally report the **blast-radius**
objectives:

* **largest event loss** — the worst single event's total discarded
  node-hours, grouping every involuntary kill at one (time, reason,
  domain) into one event: the quantity a whole-rack shock maximizes
  and independent node churn cannot;
* **domain kills / domains hit** — involuntary kills attributed to a
  named failure domain, and how many distinct domains were struck.

These are computed from the :class:`~repro.sim.schedule.ScheduleResult`
preemption log and appear in :func:`~repro.metrics.objectives.compute_metrics`
output only for disrupted runs, so undisrupted reports/stores remain
byte-identical to the pre-disruption code — and the blast-radius
columns appear only for domain-event traces, so zero-correlation
disrupted runs keep the exact PR-3 metric set.
"""

from __future__ import annotations

from repro.sim.schedule import ScheduleResult

#: Metric columns every disrupted run reports, in display order.
CORE_DISRUPTION_METRIC_NAMES: tuple[str, ...] = (
    "goodput_node_hours",
    "wasted_node_hours",
    "goodput_fraction",
    "n_kills",
    "work_lost_per_kill",
    "mean_requeue_latency",
)

#: Blast-radius columns, reported only by runs whose trace carried
#: domain-level events (correlated shocks, domain-scoped drains).
BLAST_METRIC_NAMES: tuple[str, ...] = (
    "largest_event_loss_node_hours",
    "n_domain_kills",
    "domains_hit",
)

#: Every reliability column a report may render, in display order.
DISRUPTION_METRIC_NAMES: tuple[str, ...] = (
    CORE_DISRUPTION_METRIC_NAMES + BLAST_METRIC_NAMES
)

#: Preemption reasons that count as involuntary kills.
INVOLUNTARY_REASONS: tuple[str, ...] = ("failure", "drain")


def goodput_node_hours(result: ScheduleResult) -> float:
    """Node-hours of *useful* (committed) work.

    Each record's final attempt span is work kept, and every
    checkpointed chunk a preemption preserved was kept too — together
    they sum to each job's true duration, so goodput is independent of
    how often a job was bounced around.
    """
    useful = sum(
        rec.job.nodes * (rec.end_time - rec.start_time)
        for rec in result.records
    )
    useful += sum(p.nodes * p.work_saved for p in result.preemptions)
    return useful / 3600.0


def wasted_node_hours(result: ScheduleResult) -> float:
    """Node-hours executed and then discarded by kills (work done
    since the last checkpoint when the node died / the drain hit)."""
    return sum(p.lost_node_seconds for p in result.preemptions) / 3600.0


def goodput_fraction(result: ScheduleResult) -> float:
    """Useful work over total work executed, in (0, 1]."""
    good = goodput_node_hours(result)
    waste = wasted_node_hours(result)
    total = good + waste
    if total <= 0.0:
        return 1.0
    return good / total


def work_lost_per_kill(result: ScheduleResult) -> float:
    """Mean node-seconds discarded per involuntary kill."""
    involuntary = [
        p for p in result.preemptions if p.reason in INVOLUNTARY_REASONS
    ]
    if not involuntary:
        return 0.0
    return sum(p.lost_node_seconds for p in involuntary) / len(involuntary)


def mean_requeue_latency(result: ScheduleResult) -> float:
    """Mean seconds between an involuntary kill and the victim's
    restart.

    Voluntary ``PreemptJob`` suspensions are excluded (matching
    ``n_kills``/``work_lost_per_kill``): they restart on the policy's
    own schedule and would dilute the involuntary-recovery latency
    this metric exists to compare across restart policies.
    """
    latencies = [
        p.requeue_latency
        for p in result.preemptions
        if p.requeue_latency is not None
        and p.reason in INVOLUNTARY_REASONS
    ]
    if not latencies:
        return 0.0
    return float(sum(latencies) / len(latencies))


def largest_event_loss_node_hours(result: ScheduleResult) -> float:
    """Worst single disruption event's discarded node-hours.

    Kills sharing (time, reason, domain) belong to one physical event:
    a rack shock evicting five jobs at t is one event of five kills,
    as is a drain preempting several victims at its start. The metric
    is the blast radius a correlated regime maximizes — under
    independent node churn every event holds one kill and this tends
    toward ``work_lost_per_kill``'s largest sample.
    """
    events: dict[tuple[float, str, "str | None"], float] = {}
    for p in result.preemptions:
        if p.reason not in INVOLUNTARY_REASONS:
            continue
        key = (p.time, p.reason, p.domain)
        events[key] = events.get(key, 0.0) + p.lost_node_seconds
    if not events:
        return 0.0
    return max(events.values()) / 3600.0


def domain_kill_counts(result: ScheduleResult) -> dict[str, int]:
    """Involuntary kills per named failure domain (``rack3`` → 5)."""
    counts: dict[str, int] = {}
    for p in result.preemptions:
        if p.reason in INVOLUNTARY_REASONS and p.domain is not None:
            counts[p.domain] = counts.get(p.domain, 0) + 1
    return dict(sorted(counts.items()))


def blast_radius_metrics(result: ScheduleResult) -> dict[str, float]:
    """Blast-radius objectives for a domain-event (correlated) run."""
    per_domain = domain_kill_counts(result)
    return {
        "largest_event_loss_node_hours": largest_event_loss_node_hours(
            result
        ),
        "n_domain_kills": float(sum(per_domain.values())),
        "domains_hit": float(len(per_domain)),
    }


def disruption_metrics(result: ScheduleResult) -> dict[str, float]:
    """All reliability objectives for one (disrupted) schedule.

    Blast-radius columns are included only when the run's trace carried
    domain-level events (the simulator marks those via
    ``result.extras["domain_events"]``), keeping zero-correlation runs'
    metric dicts exactly as the pre-topology engine produced them.
    """
    values = {
        "goodput_node_hours": goodput_node_hours(result),
        "wasted_node_hours": wasted_node_hours(result),
        "goodput_fraction": goodput_fraction(result),
        "n_kills": float(
            sum(
                1
                for p in result.preemptions
                if p.reason in INVOLUNTARY_REASONS
            )
        ),
        "work_lost_per_kill": work_lost_per_kill(result),
        "mean_requeue_latency": mean_requeue_latency(result),
    }
    if result.extras.get("domain_events"):
        values.update(blast_radius_metrics(result))
    return values
