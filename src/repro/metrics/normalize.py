"""Normalization of metrics against the FCFS baseline.

Every figure in the paper reports metrics normalized so FCFS = 1.0
(§3.5): for *negative* metrics (makespan, wait, turnaround) lower
normalized values are better; for *positive* metrics (throughput,
utilizations, fairness) higher is better.

When FCFS achieves exactly 0 on a metric that the candidate also
achieves 0 on, the ratio is 0/0; the paper omits the metric from the
comparison (§3.5's note about wait time). We encode that as ``nan``.
A nonzero value over a zero baseline is reported as ``inf``.
"""

from __future__ import annotations

import math
from typing import Mapping

#: Metrics where lower values are better.
LOWER_BETTER: frozenset[str] = frozenset(
    {
        "makespan",
        "avg_wait_time",
        "avg_turnaround_time",
        # Reliability objectives (disrupted runs only).
        "wasted_node_hours",
        "n_kills",
        "work_lost_per_kill",
        "mean_requeue_latency",
        # Blast-radius objectives (correlated/domain-event runs only).
        "largest_event_loss_node_hours",
        "n_domain_kills",
        "domains_hit",
    }
)

#: Metrics where higher values are better.
HIGHER_BETTER: frozenset[str] = frozenset(
    {
        "throughput",
        "node_utilization",
        "memory_utilization",
        "wait_fairness",
        "user_fairness",
        # Reliability objectives (disrupted runs only).
        "goodput_node_hours",
        "goodput_fraction",
    }
)


def normalize_to_baseline(
    values: Mapping[str, float], baseline: Mapping[str, float]
) -> dict[str, float]:
    """Element-wise ``values / baseline`` with the paper's 0/0 handling.

    Returns a dict over the keys of *values*; keys missing from
    *baseline* raise ``KeyError`` (a normalization against a baseline
    that never measured the metric is a bug, not a 0/0).
    """
    out: dict[str, float] = {}
    for name, value in values.items():
        base = baseline[name]
        if base == 0.0:
            out[name] = math.nan if value == 0.0 else math.inf
        else:
            out[name] = value / base
    return out


def is_improvement(metric: str, normalized: float) -> bool:
    """True if a normalized value beats the FCFS baseline for *metric*."""
    if math.isnan(normalized):
        return False
    if metric in LOWER_BETTER:
        return normalized < 1.0
    if metric in HIGHER_BETTER:
        return normalized > 1.0
    raise KeyError(f"unknown metric {metric!r}")
