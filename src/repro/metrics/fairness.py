"""Jain's fairness index.

The paper evaluates fairness with Jain's index (§3.2, citing Sediq et
al.): for a vector of "allocations" ``x`` (here: wait times),

    J(x) = (Σ x_i)² / (n · Σ x_i²)

ranging from 1/n (one job bears all the waiting) to 1 (perfectly even).
"""

from __future__ import annotations

import numpy as np


def jain_index(values: np.ndarray | list[float]) -> float:
    """Jain's fairness index of a non-negative vector.

    Edge cases
    ----------
    * Empty input → 1.0 (nothing to be unfair about).
    * All-zero input → 1.0: every job waited equally (zero), which is
      perfect fairness; the 0/0 in the formula is resolved to its limit
      for uniform vectors. This matches the paper's treatment of
      scenarios where every method achieves zero wait (§3.5 notes the
      resulting 0/0 normalization is simply omitted).

    Raises
    ------
    ValueError
        If any value is negative (wait times cannot be).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 1.0
    if np.any(arr < 0):
        raise ValueError("Jain's index requires non-negative values")
    peak = arr.max()
    if peak == 0.0:
        return 1.0
    # Normalize by the peak before squaring: the index is scale
    # invariant, and this prevents under/overflow for extreme values
    # (e.g. denormal waits would otherwise square to zero → NaN).
    scaled = arr / peak
    total = scaled.sum()
    return float(total * total / (arr.size * np.square(scaled).sum()))


def per_group_means(
    values: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Mean of *values* per distinct label.

    Returns ``(unique_labels, means)`` with labels in first-seen order.
    Used for the per-user fairness perspective, where ``u_i`` is the
    average wait time of user *i* (§3.2).
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    if values.shape != labels.shape:
        raise ValueError("values and labels must have equal shape")
    seen: dict[object, int] = {}
    order: list[object] = []
    for lab in labels:
        if lab not in seen:
            seen[lab] = len(order)
            order.append(lab)
    sums = np.zeros(len(order))
    counts = np.zeros(len(order))
    for val, lab in zip(values, labels):
        idx = seen[lab]
        sums[idx] += val
        counts[idx] += 1
    return np.array(order, dtype=object), sums / counts
