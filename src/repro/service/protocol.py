"""Wire format for the scheduling service (JSON lines).

One UTF-8 JSON object per ``\\n``-terminated line, both directions.
Requests carry ``{"id", "op", "params"}``; responses echo the id with
``{"ok": true, "result"}`` or ``{"ok": false, "error"}``; server-push
events (the ``subscribe_events`` stream) carry ``{"event", "data"}``
and no id.

Exactness is a design requirement, not a nicety: every float crosses
the wire as a plain JSON number, and ``json`` serializes floats via
``repr`` — the shortest string that round-trips to the identical
double. A digest computed over served payloads
(:func:`wire_digest`) therefore equals the digest computed in the
server process (:func:`schedule_digest`), which is how the tests and
the CI smoke pin "byte-identical to batch ``simulate()``" across the
socket boundary.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Mapping, Optional

from repro.sim.job import Job

#: Bump on incompatible wire changes; the server advertises it in
#: every ``hello``/``stats`` result and the client refuses a mismatch.
PROTOCOL_VERSION = 1

#: Largest accepted request line, in bytes. Bounds per-connection
#: memory against a misbehaving client; generous enough for a
#: 100k-job ``submit_jobs`` batch.
MAX_LINE_BYTES = 64 * 1024 * 1024


# -- framing -----------------------------------------------------------
def encode(message: Mapping[str, Any]) -> bytes:
    """One compact JSON line, newline-terminated, ready to write."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises ``ValueError`` on junk."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ValueError("protocol line is not a JSON object")
    return message


# -- envelopes ---------------------------------------------------------
def request(
    request_id: int, op: str, params: Optional[Mapping[str, Any]] = None
) -> dict[str, Any]:
    return {"id": request_id, "op": op, "params": dict(params or {})}


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(
    request_id: Any, error_type: str, message: str
) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


def event_message(event: str, data: Mapping[str, Any]) -> dict[str, Any]:
    return {"event": event, "data": dict(data)}


# -- payload serializers -----------------------------------------------
def job_to_wire(job: Job) -> dict[str, Any]:
    """Every :class:`Job` field, losslessly."""
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "duration": job.duration,
        "nodes": job.nodes,
        "memory_gb": job.memory_gb,
        "walltime": job.walltime,
        "user": job.user,
        "group": job.group,
        "name": job.name,
        "depends_on": list(job.depends_on),
    }


def job_from_wire(payload: Mapping[str, Any]) -> Job:
    """Inverse of :func:`job_to_wire`; raises ``ValueError`` on a
    malformed payload (missing fields, wrong types)."""
    try:
        return Job(
            job_id=int(payload["job_id"]),
            submit_time=float(payload["submit_time"]),
            duration=float(payload["duration"]),
            nodes=int(payload["nodes"]),
            memory_gb=float(payload["memory_gb"]),
            walltime=float(payload.get("walltime", -1.0)),
            user=str(payload.get("user", "user_0")),
            group=str(payload.get("group", "group_0")),
            name=str(payload.get("name", "")),
            depends_on=tuple(
                int(d) for d in payload.get("depends_on", ())
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed job payload: {exc}") from exc


def record_to_wire(rec: Any) -> dict[str, Any]:
    """A served :class:`~repro.sim.schedule.JobRecord`: identity plus
    the exact floats the digest hashes."""
    return {
        "job_id": rec.job.job_id,
        "start_time": rec.start_time,
        "end_time": rec.end_time,
        "killed": rec.killed,
    }


def decision_to_wire(dec: Any) -> dict[str, Any]:
    return {
        "time": dec.time,
        "kind": dec.action.kind.value,
        "accepted": dec.accepted,
        "n_violations": len(dec.violations),
    }


def preemption_to_wire(p: Any) -> dict[str, Any]:
    return {
        "job_id": p.job_id,
        "time": p.time,
        "reason": p.reason,
        "work_saved": p.work_saved,
        "work_lost": p.work_lost,
        "restart_time": p.restart_time,
    }


# -- digests -----------------------------------------------------------
# Both digests reproduce tests/test_windowed_regression.py::run_digest
# line for line. schedule_digest hashes live engine objects (server
# side); wire_digest hashes the served payloads (client side). Because
# JSON round-trips every double exactly, the two agree — and both
# equal run_digest of the equivalent batch run.
def schedule_digest(
    result: Any, metrics: Mapping[str, float]
) -> str:
    """Full-precision behavioural digest of one served schedule."""
    h = hashlib.sha256()
    for rec in result.records:
        h.update(
            f"{rec.job.job_id},{rec.start_time.hex()},"
            f"{rec.end_time.hex()},{rec.killed}\n".encode()
        )
    for d in result.decisions:
        h.update(
            f"{d.time.hex()},{d.action.kind.value},{d.accepted},"
            f"{len(d.violations)}\n".encode()
        )
    for p in result.preemptions:
        restart = (
            p.restart_time.hex() if p.restart_time is not None else "None"
        )
        h.update(
            f"{p.job_id},{p.time.hex()},{p.reason},{p.work_saved.hex()},"
            f"{p.work_lost.hex()},{restart}\n".encode()
        )
    for k, v in sorted(metrics.items()):
        h.update(f"{k}={float(v).hex()}\n".encode())
    return h.hexdigest()


def wire_digest(
    records: Iterable[Mapping[str, Any]],
    decisions: Iterable[Mapping[str, Any]],
    preemptions: Iterable[Mapping[str, Any]],
    metrics: Mapping[str, float],
) -> str:
    """Recompute :func:`schedule_digest` from wire payloads."""
    h = hashlib.sha256()
    for rec in records:
        h.update(
            f"{rec['job_id']},{float(rec['start_time']).hex()},"
            f"{float(rec['end_time']).hex()},{rec['killed']}\n".encode()
        )
    for d in decisions:
        h.update(
            f"{float(d['time']).hex()},{d['kind']},{d['accepted']},"
            f"{d['n_violations']}\n".encode()
        )
    for p in preemptions:
        raw = p["restart_time"]
        restart = float(raw).hex() if raw is not None else "None"
        h.update(
            f"{p['job_id']},{float(p['time']).hex()},{p['reason']},"
            f"{float(p['work_saved']).hex()},"
            f"{float(p['work_lost']).hex()},{restart}\n".encode()
        )
    for k, v in sorted(metrics.items()):
        h.update(f"{k}={float(v).hex()}\n".encode())
    return h.hexdigest()
