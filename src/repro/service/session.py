"""Per-session deterministic engine instances with streaming arrivals.

A session is one client's isolated scheduling world: its own job list,
its own seeded scheduler, and its own event calendar. Arrivals stream
in over many ``submit_jobs`` calls and are appended to the session's
**sealed** :class:`~repro.sim.events.ArrayCalendar` incrementally
(:meth:`~repro.sim.events.ArrayCalendar.extend_static` — the static
lane grows without rebuilding); a schedule query replays the engine
over the accumulated workload, handing the engine a
:meth:`~repro.sim.events.ArrayCalendar.fork` of that calendar.

Why replay instead of resuming a half-run simulation: the paper's
schedulers observe global workload facts (``pending_arrivals``,
``all_jobs_scheduled``), so decisions taken before the full job set is
known are *different* decisions — resuming would silently fork the
session's results away from the batch reference. Replaying keeps the
contract exact: for the jobs known at query time, the served schedule
is byte-identical to ``simulate()`` over those jobs (the extend-built
calendar assigns times/kinds/seqs exactly as a batch build would).
Replays are memoized per generation, so polling ``get_schedule``
without new arrivals costs one dict lookup, not a simulation.

The streaming contract: each appended batch must be strictly newer
than everything already in the session — (submit_time, job_id)
strictly increasing. That makes append order equal to the engine's
sorted workload order, so calendar payload indexes stay stable as the
session grows (the same reason the calendar itself refuses to extend
into its consumed past).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.metrics.objectives import compute_metrics
from repro.schedulers.registry import create_scheduler
from repro.sim.engine import run_soa
from repro.sim.events import ArrayCalendar, EventKind
from repro.sim.job import Job
from repro.sim.schedule import ScheduleResult
from repro.sim.simulator import HPCSimulator


class SessionError(ValueError):
    """A client mistake scoped to one session (bad batch, empty
    query); the server maps it to an error response, never a crash."""


@dataclass(frozen=True)
class SessionConfig:
    """Immutable per-session engine settings, fixed at open time."""

    scheduler: str = "fcfs"
    scheduler_seed: int = 0
    max_retries: int = 3
    max_decisions: Optional[int] = None
    enforce_walltime: bool = False


@dataclass
class Session:
    """One isolated scheduling session (see module docstring)."""

    session_id: str
    config: SessionConfig = field(default_factory=SessionConfig)
    #: Accumulated workload, in arrival (== engine) order.
    _jobs: list[Job] = field(default_factory=list)
    _calendar: ArrayCalendar = field(init=False)
    _ids: set[int] = field(default_factory=set)
    #: Bumped per appended batch; the memoized result is valid only
    #: for the generation it was computed at.
    generation: int = 0
    _result: Optional[ScheduleResult] = None
    _result_generation: int = -1
    _metrics: Optional[dict[str, float]] = None
    #: Observability counters (the cache-hit tests read these).
    n_runs: int = 0
    n_result_reuses: int = 0
    #: Serializes replays: concurrent queries of one session must not
    #: run the engine twice for the same generation.
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        cal = ArrayCalendar()
        cal.seal()  # empty static lane; every arrival comes via extend
        self._calendar = cal

    # -- streaming arrivals ---------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    def append_jobs(self, jobs: Sequence[Job]) -> int:
        """Append one strictly-newer batch of arrivals.

        Validates the streaming contract — inside the batch and
        against the session tail, (submit_time, job_id) must be
        strictly increasing, and job ids must be fresh — then extends
        the calendar's static lane. Returns how many jobs were added.
        A rejected batch changes nothing (validation runs before any
        mutation).
        """
        batch = list(jobs)
        if not batch:
            raise SessionError("submit_jobs requires at least one job")
        last = (
            (self._jobs[-1].submit_time, self._jobs[-1].job_id)
            if self._jobs
            else None
        )
        for job in batch:
            mark = (job.submit_time, job.job_id)
            if last is not None and mark <= last:
                raise SessionError(
                    f"job {job.job_id} at t={job.submit_time:g} is not "
                    f"strictly newer than the session tail "
                    f"(t={last[0]:g}, id={last[1]}); streamed batches "
                    "must arrive in (submit_time, job_id) order"
                )
            if job.job_id in self._ids:
                raise SessionError(
                    f"duplicate job id {job.job_id} in session"
                )
            last = mark
        base = len(self._jobs)
        self._calendar.extend_static(
            (job.submit_time, EventKind.ARRIVAL, base + i)
            for i, job in enumerate(batch)
        )
        self._jobs.extend(batch)
        self._ids.update(job.job_id for job in batch)
        self.generation += 1
        return len(batch)

    # -- queries ---------------------------------------------------------
    def ensure_result(self) -> tuple[ScheduleResult, dict[str, float]]:
        """The schedule for the session's current job set, memoized.

        Each distinct generation simulates exactly once (`n_runs`);
        repeat queries reuse the memoized result
        (`n_result_reuses`). Every run builds a **fresh** scheduler
        from the session's (name, seed) — state carried across replays
        would break byte-identity with batch ``simulate()``.
        """
        with self._lock:
            if self._result is not None and (
                self._result_generation == self.generation
            ):
                self.n_result_reuses += 1
                assert self._metrics is not None
                return self._result, self._metrics
            if not self._jobs:
                raise SessionError(
                    "session has no jobs; submit_jobs before querying"
                )
            generation = self.generation
            sim = HPCSimulator(
                jobs=list(self._jobs),
                scheduler=create_scheduler(
                    self.config.scheduler, seed=self.config.scheduler_seed
                ),
                max_retries=self.config.max_retries,
                max_decisions=self.config.max_decisions,
                enforce_walltime=self.config.enforce_walltime,
            )
            result = run_soa(sim, calendar=self._calendar.fork())
            result.verify_capacity()
            metrics = dict(compute_metrics(result).as_dict())
            self._result = result
            self._metrics = metrics
            self._result_generation = generation
            self.n_runs += 1
            return result, metrics

    def stats(self) -> dict[str, int]:
        return {
            "n_jobs": len(self._jobs),
            "generation": self.generation,
            "n_runs": self.n_runs,
            "n_result_reuses": self.n_result_reuses,
        }
