"""Scheduling-as-a-service: a daemonized front end for the engine.

The batch stack answers one ``simulate()`` call per process; this
package wraps the same deterministic SoA engine in a long-lived
asyncio daemon (stdlib only — a JSON-lines protocol over a TCP or unix
socket) so many clients can stream arrivals into isolated sessions and
pull schedules, metrics, and sweep-cell results over a connection.

Three layers, thin to thick (the SimCash ``api/`` + simulator split):

* :mod:`repro.service.protocol` — wire format: framing, request/
  response envelopes, and the job/record/decision serializers whose
  floats round-trip exactly (so digests survive the wire).
* :mod:`repro.service.service` + :mod:`repro.service.session` — the
  engine room: per-session isolated simulators with incrementally
  extended arrival calendars, a :class:`CellKey`-keyed result cache
  backed by :class:`~repro.experiments.store.RunStore`, and a process
  pool for sweep cells.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio socket server behind ``repro-sched serve`` and the small
  synchronous client used by tests and the CI smoke.

The load-bearing invariant, pinned by the digest tests: a session's
served schedule is **byte-identical** to a batch ``simulate()`` call
over the same jobs — streaming arrivals through the daemon can never
change a single persisted bit.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.embedded import EmbeddedServer
from repro.service.protocol import PROTOCOL_VERSION, schedule_digest
from repro.service.server import ServiceServer
from repro.service.service import SchedulingService
from repro.service.session import Session, SessionConfig

__all__ = [
    "PROTOCOL_VERSION",
    "CacheStats",
    "EmbeddedServer",
    "ResultCache",
    "SchedulingService",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionConfig",
    "schedule_digest",
]
