"""Small synchronous client for the scheduling daemon.

Deliberately boring: a blocking socket, a line-buffered file, one
request → one response. It exists so tests, the CI smoke, and quick
scripts can drive the daemon without touching asyncio — the service's
async machinery stays entirely server-side.

    with ServiceClient.connect_unix(sock) as client:
        sid = client.open_session(scheduler="fcfs", scheduler_seed=0)
        client.submit_jobs(sid, jobs)
        schedule = client.get_schedule(sid)

Error responses raise :class:`ServiceError` carrying the server's
stable error type (``unknown_session``, ``session_error``,
``bad_request``, ``service_closing``…).
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

from repro.service import protocol
from repro.sim.job import Job


class ServiceError(RuntimeError):
    """An error response from the daemon."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class ServiceClient:
    """One connection to the daemon (not thread-safe; one per thread)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # -- connecting ------------------------------------------------------
    @classmethod
    def connect_unix(
        cls, path: Union[str, Path], timeout: Optional[float] = None
    ) -> "ServiceClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(str(path))
        return cls(sock)

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: Optional[float] = None
    ) -> "ServiceClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- core request/response -------------------------------------------
    def request(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> dict[str, Any]:
        """One round trip; returns the result dict or raises
        :class:`ServiceError`."""
        self._next_id += 1
        self._file.write(
            protocol.encode(protocol.request(self._next_id, op, params))
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = protocol.decode(line)
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("type", "unknown")),
            str(error.get("message", "")),
        )

    # -- convenience ops -------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def open_session(
        self,
        scheduler: str = "fcfs",
        scheduler_seed: int = 0,
        **engine_params: Any,
    ) -> str:
        result = self.request(
            "open_session",
            {
                "scheduler": scheduler,
                "scheduler_seed": scheduler_seed,
                **engine_params,
            },
        )
        return str(result["session_id"])

    def submit_jobs(
        self, session_id: str, jobs: Sequence[Union[Job, Mapping[str, Any]]]
    ) -> dict[str, Any]:
        wire = [
            protocol.job_to_wire(j) if isinstance(j, Job) else dict(j)
            for j in jobs
        ]
        return self.request(
            "submit_jobs", {"session_id": session_id, "jobs": wire}
        )

    def get_schedule(self, session_id: str) -> dict[str, Any]:
        return self.request("get_schedule", {"session_id": session_id})

    def get_metrics(self, session_id: str) -> dict[str, Any]:
        return self.request("get_metrics", {"session_id": session_id})

    def session_stats(self, session_id: str) -> dict[str, Any]:
        return self.request("session_stats", {"session_id": session_id})

    def close_session(self, session_id: str) -> dict[str, Any]:
        return self.request("close_session", {"session_id": session_id})

    def run_cell(self, config: Mapping[str, Any]) -> dict[str, Any]:
        return self.request("run_cell", {"config": dict(config)})

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def events(self) -> Iterator[dict[str, Any]]:
        """Subscribe and yield events until the stream ends. The
        connection is dedicated to the stream afterwards — use a
        second client for concurrent requests."""
        self._next_id += 1
        self._file.write(
            protocol.encode(
                protocol.request(self._next_id, "subscribe_events")
            )
        )
        self._file.flush()
        ack = protocol.decode(self._file.readline())
        if not ack.get("ok"):
            error = ack.get("error") or {}
            raise ServiceError(
                str(error.get("type", "unknown")),
                str(error.get("message", "")),
            )
        while True:
            line = self._file.readline()
            if not line:
                return
            yield protocol.decode(line)


def wait_for_server(
    *,
    socket_path: Optional[Union[str, Path]] = None,
    host: Optional[str] = None,
    port: int = 0,
    timeout: float = 10.0,
) -> ServiceClient:
    """Poll until the daemon accepts a connection (CI startup races)."""
    deadline = time.monotonic() + timeout
    last_exc: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            if socket_path is not None:
                return ServiceClient.connect_unix(socket_path)
            assert host is not None
            return ServiceClient.connect_tcp(host, port)
        except OSError as exc:
            last_exc = exc
            time.sleep(0.05)
    raise TimeoutError(
        f"daemon not reachable after {timeout:g}s: {last_exc}"
    )
