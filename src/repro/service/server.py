"""Asyncio socket server speaking the JSON-lines protocol.

One coroutine per connection, reading ``\\n``-framed requests and
writing matched-id responses. ``subscribe_events`` flips a connection
into streaming mode: the server pushes event messages until the client
disconnects. Everything else is strictly request/response, so a single
connection may pipeline requests (responses come back in completion
order, matched by id).

Lifecycle: the server runs until a client sends ``shutdown`` or the
process receives SIGINT/SIGTERM; either way it stops accepting, lets
in-flight requests drain (:meth:`SchedulingService.aclose`), and only
then closes — the graceful-shutdown test drives exactly this path with
a request still in flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from pathlib import Path
from typing import Any, Optional, Union

from repro.service import protocol
from repro.service.service import (
    SchedulingService,
    ServiceClosing,
    UnknownSession,
)
from repro.service.session import SessionError


class ServiceServer:
    """Bind a :class:`SchedulingService` to a unix or TCP socket."""

    def __init__(
        self,
        service: SchedulingService,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError(
                "bind to exactly one of socket_path= or host=/port="
            )
        self.service = service
        self.socket_path = Path(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            with contextlib.suppress(FileNotFoundError):
                self.socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.socket_path),
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            # An ephemeral port (port=0) is resolved at bind time.
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`)."""
        assert self._server is not None, "call start() first"
        await self.service.shutdown_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful stop: no new connections, drain, close."""
        self.service.shutdown_requested.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.aclose()
        # In-flight handlers have finished their ops by now (aclose
        # drained them); cancel the connection readers still blocked
        # on their next line.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        if self.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                self.socket_path.unlink()

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):  # pragma: no cover - abrupt disconnect races
                    break
                if not line:
                    break
                handler = asyncio.ensure_future(
                    self._handle_line(line, writer)
                )
                pending.add(handler)
                handler.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            pass
        finally:
            for handler in list(pending):
                with contextlib.suppress(asyncio.CancelledError):
                    await handler
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        request_id: Any = None
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            op = str(message.get("op", ""))
            params = message.get("params") or {}
            if op == "subscribe_events":
                await self._stream_events(request_id, writer)
                return
            result = await self.service.handle(op, params)
            response = protocol.ok_response(request_id, result)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            response = protocol.error_response(
                request_id, _error_type(exc), str(exc)
            )
        await self._send(writer, response)

    async def _stream_events(
        self, request_id: Any, writer: asyncio.StreamWriter
    ) -> None:
        """Acknowledge, then push events until the connection dies."""
        queue = self.service.subscribe()
        await self._send(
            writer, protocol.ok_response(request_id, {"subscribed": True})
        )
        try:
            while True:
                event = await queue.get()
                await self._send(writer, event)
                if event.get("event") == "shutdown":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
        ):  # pragma: no cover - subscriber vanished
            pass
        finally:
            self.service.unsubscribe(queue)

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, message: dict
    ) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()


def _error_type(exc: BaseException) -> str:
    """Stable wire name for an exception class."""
    if isinstance(exc, UnknownSession):
        return "unknown_session"
    if isinstance(exc, SessionError):
        return "session_error"
    if isinstance(exc, ServiceClosing):
        return "service_closing"
    if isinstance(exc, ValueError):
        return "bad_request"
    if isinstance(exc, KeyError):
        return "not_found"
    return type(exc).__name__


async def run_server(
    *,
    socket_path: Optional[Union[str, Path]] = None,
    host: Optional[str] = None,
    port: int = 0,
    store_path: Optional[Union[str, Path]] = None,
    store_format: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    ready: Optional[Any] = None,
    install_signal_handlers: bool = True,
) -> None:
    """Stand up a daemon and serve until shutdown (the CLI entry).

    *ready*, when given, is called with the bound server once it is
    accepting connections — the CLI prints the address, the tests get
    a handle.
    """
    kwargs: dict[str, Any] = {
        "store_path": store_path,
        "store_format": store_format,
        "workers": workers,
    }
    if cache_size is not None:
        kwargs["cache_size"] = cache_size
    service = SchedulingService(**kwargs)
    server = ServiceServer(
        service, socket_path=socket_path, host=host, port=port
    )
    await server.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            # NotImplementedError: platform without signal support;
            # RuntimeError: not the main thread (embedded runners).
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    sig, service.shutdown_requested.set
                )
    if ready is not None:
        ready(server)
    await server.serve_until_shutdown()
