"""CellKey-keyed result cache over the artifact store.

Sweep-cell requests (``run_cell``) are pure functions of their
:class:`~repro.experiments.store.CellKey`, so the service never needs
to simulate the same cell twice: results are answered from a bounded
in-memory LRU first, then from the backing store — any
:class:`~repro.experiments.storage.StoreBackend`; a ``get`` against a
JSONL store is one dict lookup in its parsed-file cache, against a
sharded store a single-shard parse — and only on a genuine miss does
a simulation run, whose result is written through to both tiers, so
it survives a daemon restart.

The :class:`CacheStats` counters are the observable contract: the
tests (and the CI smoke) assert that a repeated identical request
increments a hit counter and **not** ``simulations``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.experiments.store import CellKey, StoredRun
from repro.experiments.storage import StoreBackend, open_store

#: Default LRU capacity: enough for a full paper-scale sweep matrix
#: to stay memory-resident, small enough to be harmless.
DEFAULT_CACHE_SIZE = 4096


@dataclass
class CacheStats:
    """Monotone counters, one per interesting event."""

    hits_memory: int = 0
    hits_store: int = 0
    misses: int = 0
    #: Simulations actually executed (pool submissions that ran).
    simulations: int = 0
    #: Requests that piggybacked on an identical in-flight simulation.
    coalesced: int = 0
    store_appends: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits_memory": self.hits_memory,
            "hits_store": self.hits_store,
            "misses": self.misses,
            "simulations": self.simulations,
            "coalesced": self.coalesced,
            "store_appends": self.store_appends,
        }


@dataclass
class ResultCache:
    """Two-tier (memory LRU → store backend) cell-result cache.

    The persistent tier is any ``StoreBackend`` — the single-file
    JSONL store or a sharded directory — reached through the protocol
    only (``get``/``append``), so the service is layout-blind.
    """

    store: Optional[StoreBackend] = None
    max_entries: int = DEFAULT_CACHE_SIZE
    stats: CacheStats = field(default_factory=CacheStats)
    _lru: OrderedDict = field(default_factory=OrderedDict)

    @classmethod
    def for_path(
        cls,
        path: Optional[Union[str, Path]],
        max_entries: int = DEFAULT_CACHE_SIZE,
        *,
        format: Optional[str] = None,
    ) -> "ResultCache":
        """Cache over the archive at *path* — whatever backend is on
        disk there (:func:`open_store` sniffing), or *format* for a
        path that doesn't exist yet."""
        store = (
            open_store(path, format=format) if path is not None else None
        )
        return cls(store=store, max_entries=max_entries)

    def lookup(
        self, key: CellKey
    ) -> tuple[Optional[StoredRun], str]:
        """Cached run for *key* plus where it came from: ``"memory"``,
        ``"store"``, or ``"miss"`` (with ``None``)."""
        hit = self._lru.get(key)
        if hit is not None:
            self._lru.move_to_end(key)
            self.stats.hits_memory += 1
            return hit, "memory"
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self.stats.hits_store += 1
                self._remember(key, stored)
                return stored, "store"
        self.stats.misses += 1
        return None, "miss"

    def get(self, key: CellKey) -> Optional[StoredRun]:
        """Cached run for *key*, consulting memory then the store."""
        return self.lookup(key)[0]

    def put(self, stored: StoredRun, *, persist: bool = True) -> None:
        """Write-through insert of a freshly simulated cell."""
        self._remember(stored.key, stored)
        if persist and self.store is not None:
            self.store.append(stored)
            self.stats.store_appends += 1

    def _remember(self, key: CellKey, stored: StoredRun) -> None:
        self._lru[key] = stored
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)

    def __len__(self) -> int:
        return len(self._lru)
