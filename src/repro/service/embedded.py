"""In-process daemon harness for tests.

Runs the real asyncio server — real socket, real protocol, real
service — on a background thread, so synchronous test code can drive
it with :class:`~repro.service.client.ServiceClient` exactly like an
external daemon, without subprocess management:

    with EmbeddedServer() as server:
        with server.client() as client:
            sid = client.open_session(scheduler="fcfs")

Nothing here is test-only magic: the thread runs
:func:`repro.service.server.run_server` minus the signal handlers
(signals belong to the main thread), so every code path the CI
``service`` job exercises against a daemon subprocess is the same one
these tests cover in-process.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
from pathlib import Path
from typing import Any, Optional, Union

from repro.service.client import ServiceClient, wait_for_server
from repro.service.server import ServiceServer, run_server


class EmbeddedServer:
    """Context manager: daemon on a background thread, unix socket."""

    def __init__(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        store_path: Optional[Union[str, Path]] = None,
        store_format: Optional[str] = None,
        workers: Optional[int] = None,
        cache_size: Optional[int] = None,
    ) -> None:
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if socket_path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-svc-")
            socket_path = Path(self._tmpdir.name) / "daemon.sock"
        self.socket_path = Path(socket_path)
        self.store_path = store_path
        self.store_format = store_format
        self.workers = workers
        self.cache_size = cache_size
        self.server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "EmbeddedServer":
        def runner() -> None:
            def on_ready(server: ServiceServer) -> None:
                self.server = server
                self._ready.set()

            try:
                asyncio.run(
                    run_server(
                        socket_path=self.socket_path,
                        store_path=self.store_path,
                        store_format=self.store_format,
                        workers=self.workers,
                        cache_size=self.cache_size,
                        ready=on_ready,
                        install_signal_handlers=False,
                    )
                )
            except BaseException as exc:  # pragma: no cover - surfaced
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("embedded daemon failed") from self._error
        if self.server is None:
            raise TimeoutError("embedded daemon did not start in 30s")
        return self

    def stop(self) -> None:
        """Ask for shutdown and join the daemon thread."""
        if self._thread is None:
            return
        if self.server is not None and self._thread.is_alive():
            try:
                with self.client(timeout=5.0) as client:
                    client.shutdown()
            except OSError:  # pragma: no cover - already stopping
                pass
        self._thread.join(timeout=30.0)
        self._thread = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "EmbeddedServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- clients ---------------------------------------------------------
    def client(self, timeout: Optional[float] = 30.0) -> ServiceClient:
        """A fresh connected client (caller closes it)."""
        return ServiceClient.connect_unix(self.socket_path, timeout=timeout)

    def wait_client(self, timeout: float = 10.0) -> ServiceClient:
        """A client that polls through startup races (CI style)."""
        return wait_for_server(
            socket_path=self.socket_path, timeout=timeout
        )
