"""The service layer: sessions, the cell cache, and the process pool.

:class:`SchedulingService` is transport-agnostic — the socket server
(:mod:`repro.service.server`) and the in-process test harness
(:mod:`repro.service.embedded`) both drive the same
:meth:`SchedulingService.handle` dispatch, so every behaviour the
tests pin holds for real connections too.

Concurrency model, by workload class:

* **Session replays** run on the default thread executor: the
  incremental calendar lives in this process (it cannot cross a pickle
  boundary without losing its identity), and numpy releases the GIL
  enough that concurrent sessions overlap usefully. A per-session
  :class:`asyncio.Lock` serializes operations *within* one session —
  isolation between sessions, ordering inside one.
* **Sweep cells** (``run_cell``) are pure functions of their
  :class:`~repro.experiments.store.CellKey` and go to a process pool
  (the same ``_execute_cell`` entry point the sweep engine uses).
  Identical concurrent requests coalesce onto one in-flight
  simulation; finished cells land in the two-tier
  :class:`~repro.service.cache.ResultCache`, so a repeat request never
  simulates again — the counters prove it.

Graceful shutdown: new requests are refused, in-flight ones drain
(bounded by a grace period), subscribers get a final ``shutdown``
event, and the pool is torn down.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from dataclasses import asdict

from repro.experiments.parallel import (
    MatrixCell,
    _execute_cell,
    _worker_init,
    resolve_workers,
)
from repro.experiments.store import StoredRun
from repro.service import protocol
from repro.service.cache import DEFAULT_CACHE_SIZE, ResultCache
from repro.service.session import Session, SessionConfig, SessionError
from repro.sim.job import Job


class ServiceClosing(RuntimeError):
    """Request refused because the daemon is shutting down."""


class UnknownSession(KeyError):
    """The request named a session this daemon does not hold."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it plain
        return self.args[0] if self.args else ""


#: Ops a client may invoke, mapped to handler method names.
_OPS = {
    "ping": "op_ping",
    "open_session": "op_open_session",
    "submit_jobs": "op_submit_jobs",
    "get_schedule": "op_get_schedule",
    "get_metrics": "op_get_metrics",
    "session_stats": "op_session_stats",
    "close_session": "op_close_session",
    "run_cell": "op_run_cell",
    "stats": "op_stats",
    "shutdown": "op_shutdown",
}


class SchedulingService:
    """Engine room shared by every transport (see module docstring)."""

    def __init__(
        self,
        *,
        store_path: Optional[Union[str, Path]] = None,
        store_format: Optional[str] = None,
        workers: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.cache = ResultCache.for_path(
            store_path, cache_size, format=store_format
        )
        self.workers = resolve_workers(workers) if workers else None
        self._sessions: dict[str, Session] = {}
        self._session_locks: dict[str, asyncio.Lock] = {}
        self._session_counter = itertools.count(1)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight_cells: dict[Any, asyncio.Future] = {}
        self._subscribers: set[asyncio.Queue] = set()
        self._closing = False
        self._active = 0
        self._drained = asyncio.Event()
        self._drained.set()
        #: Set by op_shutdown; the server awaits it to stop serving.
        self.shutdown_requested = asyncio.Event()

    # -- dispatch --------------------------------------------------------
    async def handle(
        self, op: str, params: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Execute one request; raises on error (the transport maps
        exceptions to error responses)."""
        if self._closing and op not in ("ping", "stats"):
            raise ServiceClosing("service is shutting down")
        method = _OPS.get(op)
        if method is None:
            raise ValueError(f"unknown op: {op!r}")
        self._active += 1
        self._drained.clear()
        try:
            return await getattr(self, method)(dict(params))
        finally:
            self._active -= 1
            if self._active == 0:
                self._drained.set()

    # -- events ----------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        """Register an event queue (the ``subscribe_events`` stream)."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=1024)
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    def publish(self, event: str, data: Mapping[str, Any]) -> None:
        """Fan an event out to every subscriber; a subscriber that
        stopped draining loses events, never blocks the service."""
        message = protocol.event_message(event, data)
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(message)
            except asyncio.QueueFull:  # pragma: no cover - slow reader
                pass

    # -- session ops -----------------------------------------------------
    def _session(self, params: Mapping[str, Any]) -> Session:
        session_id = str(params.get("session_id", ""))
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(f"unknown session: {session_id!r}")
        return session

    def _session_lock(self, session_id: str) -> asyncio.Lock:
        return self._session_locks[session_id]

    async def op_ping(self, params: dict) -> dict:
        return {"protocol": protocol.PROTOCOL_VERSION}

    async def op_open_session(self, params: dict) -> dict:
        config = SessionConfig(
            scheduler=str(params.get("scheduler", "fcfs")),
            scheduler_seed=int(params.get("scheduler_seed", 0)),
            max_retries=int(params.get("max_retries", 3)),
            max_decisions=(
                int(params["max_decisions"])
                if params.get("max_decisions") is not None
                else None
            ),
            enforce_walltime=bool(params.get("enforce_walltime", False)),
        )
        # Fail fast on an unknown scheduler, at open rather than at
        # first query (create_scheduler raises KeyError).
        from repro.schedulers.registry import create_scheduler

        create_scheduler(config.scheduler, seed=config.scheduler_seed)
        session_id = f"s{next(self._session_counter)}"
        self._sessions[session_id] = Session(session_id, config)
        self._session_locks[session_id] = asyncio.Lock()
        self.publish(
            "session_opened",
            {"session_id": session_id, "scheduler": config.scheduler},
        )
        return {"session_id": session_id}

    async def op_submit_jobs(self, params: dict) -> dict:
        session = self._session(params)
        raw = params.get("jobs")
        if not isinstance(raw, list):
            raise SessionError("submit_jobs needs a 'jobs' list")
        jobs: list[Job] = [protocol.job_from_wire(j) for j in raw]
        async with self._session_lock(session.session_id):
            added = session.append_jobs(jobs)
        self.publish(
            "jobs_submitted",
            {
                "session_id": session.session_id,
                "added": added,
                "n_jobs": session.n_jobs,
            },
        )
        return {
            "added": added,
            "n_jobs": session.n_jobs,
            "generation": session.generation,
        }

    async def _session_result(self, session: Session):
        loop = asyncio.get_running_loop()
        async with self._session_lock(session.session_id):
            return await loop.run_in_executor(None, session.ensure_result)

    async def op_get_schedule(self, params: dict) -> dict:
        session = self._session(params)
        result, metrics = await self._session_result(session)
        payload = {
            "session_id": session.session_id,
            "scheduler": session.config.scheduler,
            "n_jobs": session.n_jobs,
            "generation": session.generation,
            "records": [protocol.record_to_wire(r) for r in result.records],
            "decisions": [
                protocol.decision_to_wire(d) for d in result.decisions
            ],
            "preemptions": [
                protocol.preemption_to_wire(p) for p in result.preemptions
            ],
            "metrics": metrics,
            "digest": protocol.schedule_digest(result, metrics),
        }
        self.publish(
            "schedule_served",
            {
                "session_id": session.session_id,
                "n_jobs": session.n_jobs,
                "digest": payload["digest"],
            },
        )
        return payload

    async def op_get_metrics(self, params: dict) -> dict:
        session = self._session(params)
        result, metrics = await self._session_result(session)
        return {
            "session_id": session.session_id,
            "n_jobs": session.n_jobs,
            "metrics": metrics,
            "digest": protocol.schedule_digest(result, metrics),
        }

    async def op_session_stats(self, params: dict) -> dict:
        return self._session(params).stats()

    async def op_close_session(self, params: dict) -> dict:
        session = self._session(params)
        async with self._session_lock(session.session_id):
            self._sessions.pop(session.session_id, None)
        self._session_locks.pop(session.session_id, None)
        self.publish("session_closed", {"session_id": session.session_id})
        return {"closed": session.session_id}

    # -- sweep cells -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_init
            )
        return self._pool

    async def op_run_cell(self, params: dict) -> dict:
        config = params.get("config")
        if not isinstance(config, dict):
            raise ValueError("run_cell needs a 'config' object")
        cell = MatrixCell.from_config(config)
        key = cell.key
        stored, source = self.cache.lookup(key)
        if stored is not None:
            return self._cell_payload(stored, source)
        inflight = self._inflight_cells.get(key)
        if inflight is not None:
            # Identical request already simulating: ride along. shield
            # so one rider's disconnect cannot cancel the shared run.
            self.cache.stats.coalesced += 1
            stored = await asyncio.shield(inflight)
            return self._cell_payload(stored, "coalesced")
        task = asyncio.ensure_future(self._simulate_cell(cell))
        self._inflight_cells[key] = task
        try:
            stored = await asyncio.shield(task)
        finally:
            self._inflight_cells.pop(key, None)
        return self._cell_payload(stored, "simulated")

    async def _simulate_cell(self, cell: MatrixCell) -> StoredRun:
        loop = asyncio.get_running_loop()
        run = await loop.run_in_executor(
            self._ensure_pool(), _execute_cell, cell
        )
        self.cache.stats.simulations += 1
        stored = StoredRun.from_run(run)
        self.cache.put(stored)
        self.publish(
            "cell_completed",
            {"key": list(stored.key), "scheduler": stored.scheduler},
        )
        return stored

    @staticmethod
    def _cell_payload(stored: StoredRun, source: str) -> dict:
        return {"source": source, "run": asdict(stored)}

    # -- introspection / lifecycle ---------------------------------------
    async def op_stats(self, params: dict) -> dict:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "closing": self._closing,
            "n_sessions": len(self._sessions),
            "sessions": {
                sid: s.stats() for sid, s in sorted(self._sessions.items())
            },
            "cache": self.cache.stats.as_dict(),
            "inflight_cells": len(self._inflight_cells),
        }

    async def op_shutdown(self, params: dict) -> dict:
        self.shutdown_requested.set()
        return {"stopping": True}

    async def aclose(self, grace_s: float = 30.0) -> None:
        """Drain and stop: refuse new requests, give in-flight ones
        *grace_s* seconds to finish, notify subscribers, kill the
        pool."""
        self._closing = True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=grace_s)
        except asyncio.TimeoutError:  # pragma: no cover - pathological
            pass
        self.publish("shutdown", {"reason": "daemon stopping"})
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
