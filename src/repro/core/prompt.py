"""Prompt construction (paper §3.4).

Renders the exact prompt structure the paper shows: role preamble,
system capacity, current time, available resources, running/completed/
waiting job listings, the scratchpad, the multiobjective goal
statement with trade-off guidance, and the required output format.

Backends receive both the rendered text (what a real API would see)
and a structured :class:`PromptContext` (so the simulated reasoner
does not have to re-parse its own rendering; a real-API backend would
ignore the context).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scratchpad import Scratchpad
from repro.sim.simulator import SystemView

#: The objective block, verbatim from the paper's prompt example.
OBJECTIVES_BLOCK = """\
Your scheduling objectives are:
You must balance all of the following:
- Fairness: Minimize variance in user wait times. Avoid starving any user.
- Makespan: Minimize total time to finish all jobs.
- Utilization: Maximize Node & memory usage over time (avoid idle resources).
- Throughput: Maximize the number of jobs completed per unit time.
- Feasibility: Do not exceed {nodes} Nodes or {memory:g} GB memory at any time.

Trade-offs are allowed. Do not over-optimize one metric at the expense of others.
For example:
- Prioritizing a long-waiting job improves fairness, but may slightly hurt makespan.
- Choosing short jobs improves throughput, but may increase wait time for large jobs."""

#: The instruction/output block, verbatim structure from the paper.
DECIDE_BLOCK = """\
Decide:
(1) Which job should be started now (if any)?
(2) Justify your decision in thought.
(3) Return only one of:
- StartJob(job_id=X)
- BackfillJob(job_id=Y)
- Delay
- Stop (when all jobs have been scheduled)

Output format:
Thought: <your reasoning>
Action: <your action>"""


@dataclass(frozen=True)
class PromptContext:
    """Structured companion to the rendered prompt text."""

    view: SystemView
    scratchpad: Scratchpad
    prompt_text: str

    @property
    def now(self) -> float:
        return self.view.now


@dataclass
class PromptBuilder:
    """Builds §3.4-style prompts from a system view + scratchpad."""

    preamble: str = (
        "You are an expert HPC resource manager, and your task is to "
        "schedule jobs in a high-performance computing (HPC) environment. "
        "Use the current system state, job queue, scratchpad (decision "
        "history), and fairness indicators to make well-balanced decisions."
    )

    def build(self, view: SystemView, scratchpad: Scratchpad) -> PromptContext:
        """Render the full prompt for one decision point."""
        lines: list[str] = [self.preamble, ""]
        lines.append(
            f"System capacity: {view.total_nodes} nodes, "
            f"{view.total_memory_gb:g} GB memory"
        )
        lines.append(f"Current time: {view.now:g}")
        lines.append(f"Available Nodes: {view.free_nodes}")
        lines.append(f"Available Memory: {view.free_memory_gb:g} GB")

        lines.append("Running Jobs:")
        if view.running:
            for run in sorted(view.running, key=lambda r: r.job.job_id):
                lines.append(
                    f"- Job {run.job.job_id}: {run.job.nodes} nodes, "
                    f"{run.job.memory_gb:g} GB, started t={run.start_time:g}, "
                    f"user={run.job.user}"
                )
        else:
            lines.append("None")

        lines.append("Completed Jobs:")
        if view.completed_ids:
            ids = ", ".join(str(i) for i in view.completed_ids)
            lines.append(f"- {ids}")
        else:
            lines.append("None")

        lines.append("Waiting Jobs (eligible to schedule):")
        if view.queued:
            for job in view.queued:
                wait = view.now - job.submit_time
                lines.append(
                    f"- Job {job.job_id}: {job.nodes} nodes, "
                    f"{job.memory_gb:g} GB, walltime={job.walltime:g}, "
                    f"user={job.user}, waiting={wait:g}s"
                )
        else:
            lines.append("None")

        if view.blocked_jobs:
            lines.append(
                f"Jobs held by unmet dependencies (not yet eligible): "
                f"{view.blocked_jobs}"
            )

        lines.append("")
        lines.append("# Scratchpad (Decision History)")
        lines.append(scratchpad.render())
        lines.append("")
        lines.append(
            OBJECTIVES_BLOCK.format(
                nodes=view.total_nodes, memory=view.total_memory_gb
            )
        )
        lines.append("")
        lines.append(DECIDE_BLOCK)

        return PromptContext(
            view=view, scratchpad=scratchpad, prompt_text="\n".join(lines)
        )


def estimate_tokens(text: str) -> int:
    """Cheap token estimate (≈4 chars/token) for overhead accounting."""
    return max(1, len(text) // 4)
