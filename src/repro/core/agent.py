"""The ReAct scheduling agent — Algorithm 1 of the paper.

At every decision point the agent:

1. constructs the §3.4 prompt from the system view + scratchpad;
2. queries the LLM backend for a (Thought, Action) reply;
3. parses the action (unparseable replies become ``Delay`` with
   corrective feedback);
4. returns the action to the simulator, which validates it;
5. on rejection, renders the violations as natural-language feedback
   into the scratchpad so the *next* prompt carries the correction.

Every backend call is logged as an
:class:`~repro.core.backends.LLMCallRecord` for the overhead analysis
(Figs. 5/6); latencies are virtual.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.backends import (
    LLMBackend,
    LLMCallRecord,
    SimulatedReasoningBackend,
    make_call_record,
)
from repro.core.constraints import render_feedback, render_parse_feedback
from repro.core.grammar import ActionParseError, parse_reply
from repro.core.profiles import ModelProfile, get_profile
from repro.core.prompt import PromptBuilder
from repro.core.scratchpad import Scratchpad
from repro.schedulers.base import BaseScheduler
from repro.sim.actions import Action, Delay
from repro.sim.constraints import Violation
from repro.sim.simulator import SystemView


class ReActSchedulingAgent(BaseScheduler):
    """LLM-driven scheduler implementing the paper's decision loop.

    Parameters
    ----------
    backend:
        Any :class:`~repro.core.backends.LLMBackend`; the scheduler's
        ``name`` defaults to the backend's model name.
    scratchpad_window:
        How many recent scratchpad entries each prompt includes
        (``None`` = all; the paper's scratchpad is unbounded but
        context windows are not).
    name:
        Override the scheduler name used in results.
    """

    emits_stop = True

    def __init__(
        self,
        backend: LLMBackend,
        *,
        scratchpad_window: Optional[int] = 12,
        name: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.backend = backend
        self.name = name if name is not None else backend.name
        self._window = scratchpad_window
        self.prompt_builder = PromptBuilder()
        self.scratchpad = Scratchpad(window=scratchpad_window)
        self.calls: list[LLMCallRecord] = []

    # -- SchedulerProtocol -------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self.backend.reset()
        self.scratchpad = Scratchpad(window=self._window)
        self.calls = []

    def decide(self, view: SystemView) -> Action:
        context = self.prompt_builder.build(view, self.scratchpad)
        reply = self.backend.complete(context.prompt_text, context)
        try:
            parsed = parse_reply(reply.text)
            thought, action = parsed.thought, parsed.action
            parse_feedback = ""
        except ActionParseError as exc:
            thought, action = reply.text.strip(), Delay
            parse_feedback = render_parse_feedback(exc)

        entry_action_text = (
            action.render() if not parse_feedback else "(unparseable reply)"
        )
        self.scratchpad.append(
            time=view.now,
            thought=thought,
            action_text=entry_action_text,
            feedback=parse_feedback,
        )
        record = make_call_record(
            time=view.now,
            reply=reply,
            action=action,
            queue_len=len(view.queued),
            model=self.backend.name,
        )
        if parse_feedback:
            record.accepted = False
        self.calls.append(record)
        self._set_meta(
            thought=thought,
            latency_s=reply.latency_s,
            model=self.backend.name,
        )
        return action

    def on_rejection(
        self,
        action: Action,
        violations: tuple[Violation, ...],
        view: SystemView,
    ) -> None:
        feedback = render_feedback(action, violations, view)
        self.scratchpad.attach_feedback(feedback)
        if self.calls:
            self.calls[-1].accepted = False

    def collect_extras(self) -> dict[str, Any]:
        return {
            "llm_calls": list(self.calls),
            "model": self.backend.name,
            "scratchpad_entries": len(self.scratchpad),
            "scratchpad_text": self.scratchpad.render(),
        }

    # -- overhead convenience -------------------------------------------------
    @property
    def total_elapsed_s(self) -> float:
        """Total virtual scheduling time: sum of accepted placement-call
        latencies (the paper's §3.7.1 accounting)."""
        return sum(
            c.latency_s for c in self.calls if c.accepted and c.is_placement
        )

    @property
    def call_count(self) -> int:
        return len(self.calls)


def create_llm_scheduler(
    model: str | ModelProfile = "claude-3.7-sim",
    seed: int | np.random.SeedSequence = 0,
    *,
    scratchpad_window: Optional[int] = 12,
    hallucination_rate: Optional[float] = None,
) -> ReActSchedulingAgent:
    """Build a ReAct agent for a named (or custom) model profile.

    Parameters
    ----------
    model:
        ``"claude-3.7-sim"``, ``"o4-mini-sim"`` or a custom
        :class:`~repro.core.profiles.ModelProfile`.
    seed:
        Backend RNG seed (controls both policy tie-breaking /
        hallucinations and latency draws).
    hallucination_rate:
        Override the profile's infeasible-proposal rate (ablations; 0
        disables the constraint-feedback path entirely).
    """
    profile = get_profile(model) if isinstance(model, str) else model
    if hallucination_rate is not None:
        profile = profile.with_hallucination_rate(hallucination_rate)
    backend = SimulatedReasoningBackend(profile, seed=seed)
    return ReActSchedulingAgent(
        backend, scratchpad_window=scratchpad_window
    )
