"""Plan-ahead (batched) ReAct agent — the §3.7.3 deployment mitigation.

The paper concludes that per-decision LLM latency makes real-time
deployment impractical and suggests batch/periodic operation instead.
This module implements that idea: at each *queried* decision point the
model plans a whole batch of placements (scored against a simulated
drain of the currently free resources), and the agent executes the
batch action-by-action without further LLM calls. One call now covers
up to ``batch_size`` placements, dividing call count — and therefore
total reasoning latency — by roughly the batch size, at the cost of
planning against slightly stale state (the batch is invalidated
whenever the environment rejects one of its actions or new jobs arrive
mid-batch).

Use :func:`create_batched_llm_scheduler` as a drop-in replacement for
:func:`repro.core.agent.create_llm_scheduler`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

import numpy as np

from repro.core.backends import LLMCallRecord
from repro.core.constraints import render_feedback
from repro.core.grammar import action_tag
from repro.core.profiles import ModelProfile, get_profile
from repro.core.prompt import PromptBuilder, estimate_tokens
from repro.core.reasoning import ReasoningPolicy
from repro.core.scratchpad import Scratchpad
from repro.schedulers.base import BaseScheduler
from repro.sim.actions import Action, Delay, Stop
from repro.sim.constraints import Violation
from repro.sim.simulator import SystemView


class BatchedReActAgent(BaseScheduler):
    """ReAct agent that plans several placements per LLM call.

    Parameters
    ----------
    profile:
        Model profile (weights + latency model).
    batch_size:
        Maximum placements planned per call. ``1`` degenerates to the
        per-decision agent's call pattern.
    delay_cooldown_s:
        Periodic-scheduling mode (§3.7.3's "periodic resource
        optimization"): after the model decides to Delay, further
        decision points within this many (virtual) seconds return
        Delay *without* a new LLM call — the saturated cluster is not
        re-analyzed on every completion event. ``0`` disables it.
        New arrivals always break the cooldown.
    seed:
        RNG seed.
    """

    emits_stop = True

    def __init__(
        self,
        profile: ModelProfile,
        *,
        batch_size: int = 4,
        delay_cooldown_s: float = 0.0,
        seed: int | np.random.SeedSequence = 0,
        scratchpad_window: Optional[int] = 12,
    ) -> None:
        super().__init__()
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if delay_cooldown_s < 0:
            raise ValueError("delay_cooldown_s must be non-negative")
        self.profile = profile
        self.batch_size = batch_size
        self.delay_cooldown_s = delay_cooldown_s
        self.name = f"{profile.name}-batch{batch_size}"
        self._seed = seed
        self._window = scratchpad_window
        self.prompt_builder = PromptBuilder()
        self.reset()

    def reset(self) -> None:
        super().reset()
        seq = np.random.SeedSequence(
            self._seed
            if isinstance(self._seed, int)
            else self._seed.entropy  # type: ignore[arg-type]
        )
        policy_seed, latency_seed = seq.spawn(2)
        self.policy = ReasoningPolicy(
            self.profile, np.random.default_rng(policy_seed)
        )
        self._latency_rng = np.random.default_rng(latency_seed)
        self.scratchpad = Scratchpad(window=self._window)
        self.calls: list[LLMCallRecord] = []
        self._pending: list[tuple[Action, str]] = []
        self._batch_queue_ids: frozenset[int] = frozenset()
        self._delay_until: float = -1.0
        self._delay_queue_ids: frozenset[int] = frozenset()

    # -- planning -----------------------------------------------------------
    def _plan_batch(self, view: SystemView) -> list[tuple[Action, str]]:
        """One reasoning pass producing up to ``batch_size`` actions.

        The policy is applied repeatedly against a *simulated drain* of
        the view: each chosen job is removed from the queue and its
        resources subtracted, so later picks in the batch respect the
        earlier ones. Stops at the first Delay/Stop.
        """
        batch: list[tuple[Action, str]] = []
        current = view
        for _ in range(self.batch_size):
            ctx = self.prompt_builder.build(current, self.scratchpad)
            step = self.policy.decide(ctx)
            batch.append((step.action, step.thought))
            if not step.action.places_job:
                break
            job = current.queued_job(step.action.job_id)  # type: ignore[arg-type]
            if job is None or not current.can_fit(job):
                break  # hallucinated pick: let the simulator reject it
            current = replace(
                current,
                queued=tuple(
                    j for j in current.queued if j.job_id != job.job_id
                ),
                free_nodes=current.free_nodes - job.nodes,
                free_memory_gb=current.free_memory_gb - job.memory_gb,
            )
            if not current.queued:
                break
        return batch

    # -- SchedulerProtocol -------------------------------------------------
    def decide(self, view: SystemView) -> Action:
        queue_ids = frozenset(j.job_id for j in view.queued)
        # Periodic mode: inside the delay cooldown, with no new
        # arrivals, stay silent instead of re-querying the model.
        # Liveness guard: only while jobs are still running — their
        # completions are the future events that will wake us again;
        # with an idle cluster we must act now.
        if (
            view.now < self._delay_until
            and queue_ids <= self._delay_queue_ids
            and not self._pending
            and view.running
        ):
            self._set_meta(thought="(delay cooldown)", batched=True)
            return Delay
        # Invalidate a stale batch when the queue changed beyond our own
        # placements (new arrivals) — the plan no longer reflects state.
        if self._pending and not (
            queue_ids <= self._batch_queue_ids
        ):
            self._pending = []

        if not self._pending:
            batch = self._plan_batch(view)
            self._batch_queue_ids = queue_ids
            prompt = self.prompt_builder.build(view, self.scratchpad)
            latency = self.profile.latency.sample(
                self._latency_rng,
                queue_len=len(view.queued),
                heterogeneity=0.5,
            )
            # One call record covers the whole batch; tag by its first
            # action (the §3.7.1 accounting still sees placements).
            first_action = batch[0][0]
            self.calls.append(
                LLMCallRecord(
                    time=view.now,
                    latency_s=latency,
                    input_tokens=estimate_tokens(prompt.prompt_text),
                    output_tokens=sum(
                        estimate_tokens(t) for _, t in batch
                    ),
                    action_tag=action_tag(first_action),
                    queue_len=len(view.queued),
                    model=self.name,
                )
            )
            self._pending = batch

        action, thought = self._pending.pop(0)
        if action.kind is Delay.kind and self.delay_cooldown_s > 0:
            self._delay_until = view.now + self.delay_cooldown_s
            self._delay_queue_ids = queue_ids
        self.scratchpad.append(
            time=view.now, thought=thought, action_text=action.render()
        )
        self._set_meta(
            thought=thought,
            batched=True,
            remaining_in_batch=len(self._pending),
        )
        return action

    def on_rejection(
        self,
        action: Action,
        violations: tuple[Violation, ...],
        view: SystemView,
    ) -> None:
        self.scratchpad.attach_feedback(
            render_feedback(action, violations, view)
        )
        if self.calls:
            self.calls[-1].accepted = False
        # The rest of the plan was built on a wrong premise.
        self._pending = []

    def collect_extras(self) -> dict[str, Any]:
        return {
            "llm_calls": list(self.calls),
            "model": self.name,
            "batch_size": self.batch_size,
            "scratchpad_entries": len(self.scratchpad),
        }


def create_batched_llm_scheduler(
    model: str | ModelProfile = "claude-3.7-sim",
    *,
    batch_size: int = 4,
    delay_cooldown_s: float = 0.0,
    seed: int | np.random.SeedSequence = 0,
) -> BatchedReActAgent:
    """Build a plan-ahead agent for a named (or custom) profile."""
    profile = get_profile(model) if isinstance(model, str) else model
    return BatchedReActAgent(
        profile,
        batch_size=batch_size,
        delay_cooldown_s=delay_cooldown_s,
        seed=seed,
    )
