"""LLM backends: the pluggable model layer.

:class:`LLMBackend` is the seam where the paper plugs OpenAI's O4-Mini
and Anthropic's Claude 3.7 via cloud APIs (§3.3). In this offline
reproduction the default implementation is
:class:`SimulatedReasoningBackend` — the deterministic reasoning policy
of :mod:`repro.core.reasoning` plus the profile's virtual latency
model. :class:`ScriptedBackend` replays canned replies (used by tests
to exercise the agent against arbitrary, including malformed, model
output).

Latency is *virtual*: a sampled number recorded for overhead analysis
(Figs. 5/6), never a real sleep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.grammar import action_tag, render_reply
from repro.core.profiles import ModelProfile
from repro.core.prompt import PromptContext, estimate_tokens
from repro.core.reasoning import ReasoningPolicy


@dataclass(frozen=True)
class LLMReply:
    """One model completion with its (virtual) cost."""

    text: str
    latency_s: float
    input_tokens: int
    output_tokens: int


@dataclass
class LLMCallRecord:
    """Bookkeeping for one LLM call, the unit of overhead analysis.

    ``accepted`` is finalized by the agent after constraint checking;
    §3.7.1 restricts overhead statistics to accepted ``start_job`` /
    ``backfill_job`` calls.
    """

    time: float
    latency_s: float
    input_tokens: int
    output_tokens: int
    action_tag: str
    queue_len: int
    model: str
    accepted: bool = True

    @property
    def is_placement(self) -> bool:
        return self.action_tag in ("start_job", "backfill_job")


@runtime_checkable
class LLMBackend(Protocol):
    """Protocol for model backends."""

    name: str

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        """Produce a ReAct reply for *prompt*.

        *context* is the structured companion of the rendered prompt;
        simulated backends use it directly, real-API backends would
        ignore it and send *prompt* over the wire.
        """
        ...

    def reset(self) -> None:
        """Reset per-run state (RNG streams, counters)."""
        ...


class SimulatedReasoningBackend:
    """Deterministic stand-in for a cloud reasoning model.

    Couples a :class:`~repro.core.reasoning.ReasoningPolicy`
    (decisions + thought text) with the profile's
    :class:`~repro.core.profiles.LatencyModel` (virtual per-call
    latency). Fully reproducible under a fixed seed.

    Parameters
    ----------
    profile:
        The model profile (weights, latency, hallucination rate).
    seed:
        Seed for both the policy and latency RNG streams.
    """

    def __init__(
        self,
        profile: ModelProfile,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        self.profile = profile
        self.name = profile.name
        self._seed = seed
        self.reset()

    def reset(self) -> None:
        seq = np.random.SeedSequence(
            self._seed
            if isinstance(self._seed, int)
            else self._seed.entropy  # type: ignore[arg-type]
        )
        policy_seed, latency_seed = seq.spawn(2)
        self.policy = ReasoningPolicy(
            self.profile, np.random.default_rng(policy_seed)
        )
        self._latency_rng = np.random.default_rng(latency_seed)

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        step = self.policy.decide(context)
        text = render_reply(step.thought, step.action)
        heterogeneity = _queue_heterogeneity(context)
        latency = self.profile.latency.sample(
            self._latency_rng,
            queue_len=len(context.view.queued),
            heterogeneity=heterogeneity,
        )
        return LLMReply(
            text=text,
            latency_s=latency,
            input_tokens=estimate_tokens(prompt),
            output_tokens=min(
                estimate_tokens(text), self.profile.max_tokens
            ),
        )


def _queue_heterogeneity(context: PromptContext) -> float:
    """Heterogeneity of the *current queue* feeding the latency model."""
    from repro.workloads.generator import workload_heterogeneity

    return workload_heterogeneity(list(context.view.queued))


@dataclass
class ScriptedBackend:
    """Replays a fixed sequence of reply texts (testing utility).

    After the script is exhausted it keeps returning the final reply
    (or raises if ``strict``).
    """

    replies: Sequence[str]
    latency_s: float = 1.0
    name: str = "scripted"
    strict: bool = False
    _cursor: int = field(default=0, init=False)

    def reset(self) -> None:
        self._cursor = 0

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        if self._cursor >= len(self.replies):
            if self.strict:
                raise RuntimeError("scripted backend exhausted")
            index = len(self.replies) - 1
        else:
            index = self._cursor
        self._cursor += 1
        text = self.replies[index]
        return LLMReply(
            text=text,
            latency_s=self.latency_s,
            input_tokens=estimate_tokens(prompt),
            output_tokens=estimate_tokens(text),
        )


def make_call_record(
    *,
    time: float,
    reply: LLMReply,
    action,
    queue_len: int,
    model: str,
) -> LLMCallRecord:
    """Build the call record for one completed backend call."""
    return LLMCallRecord(
        time=time,
        latency_s=reply.latency_s,
        input_tokens=reply.input_tokens,
        output_tokens=reply.output_tokens,
        action_tag=action_tag(action),
        queue_len=queue_len,
        model=model,
    )
