"""Record/replay for LLM backends.

Cloud reasoning calls are slow and expensive (the whole point of the
paper's §3.7 overhead analysis). This module lets a session be captured
once and re-run offline, deterministically:

* :class:`RecordingBackend` wraps any backend and logs every
  (prompt, reply) exchange;
* :meth:`RecordingBackend.save` / :func:`load_replay` persist the tape
  as JSON;
* :class:`ReplayBackend` plays a tape back, optionally verifying that
  the prompts produced by the re-run match the recorded ones (catching
  drift in prompt construction or workload generation).

This is also the mechanism for turning a *real* API session into a
reproducible artifact: record once against the cloud model, commit the
tape, and every CI run replays it exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.backends import LLMBackend, LLMReply
from repro.core.prompt import PromptContext


def _fingerprint(prompt: str) -> str:
    """Short stable fingerprint of a prompt (for mismatch detection)."""
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()[:16]


@dataclass
class RecordedCall:
    """One captured backend exchange."""

    prompt_fingerprint: str
    text: str
    latency_s: float
    input_tokens: int
    output_tokens: int

    def to_json(self) -> dict:
        return {
            "prompt_fingerprint": self.prompt_fingerprint,
            "text": self.text,
            "latency_s": self.latency_s,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RecordedCall":
        return cls(
            prompt_fingerprint=data["prompt_fingerprint"],
            text=data["text"],
            latency_s=float(data["latency_s"]),
            input_tokens=int(data["input_tokens"]),
            output_tokens=int(data["output_tokens"]),
        )


class RecordingBackend:
    """Wraps a backend and captures every call onto a tape."""

    def __init__(self, inner: LLMBackend) -> None:
        self.inner = inner
        self.name = inner.name
        self.tape: list[RecordedCall] = []

    def reset(self) -> None:
        # A fresh run gets a fresh tape — tapes capture one session.
        self.inner.reset()
        self.tape = []

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        reply = self.inner.complete(prompt, context)
        self.tape.append(
            RecordedCall(
                prompt_fingerprint=_fingerprint(prompt),
                text=reply.text,
                latency_s=reply.latency_s,
                input_tokens=reply.input_tokens,
                output_tokens=reply.output_tokens,
            )
        )
        return reply

    def save(self, path: str | Path) -> None:
        """Persist the tape as JSON."""
        payload = {
            "model": self.name,
            "calls": [c.to_json() for c in self.tape],
        }
        Path(path).write_text(json.dumps(payload, indent=2))


class ReplayMismatch(RuntimeError):
    """The replayed session diverged from the recorded one."""


class ReplayBackend:
    """Plays a recorded tape back in order.

    Parameters
    ----------
    calls:
        The tape (e.g. from :func:`load_replay`).
    model:
        Name to report as the backend's model.
    verify_prompts:
        When True (default), every replayed call checks that the
        prompt fingerprint matches the recording — a mismatch means
        the re-run diverged (different workload, seed, or prompt
        rendering) and the tape no longer applies.
    """

    def __init__(
        self,
        calls: list[RecordedCall],
        *,
        model: str = "replay",
        verify_prompts: bool = True,
    ) -> None:
        self.calls = list(calls)
        self.name = model
        self.verify_prompts = verify_prompts
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        if self._cursor >= len(self.calls):
            raise ReplayMismatch(
                f"tape exhausted after {len(self.calls)} calls — the "
                "re-run issued more queries than the recording"
            )
        call = self.calls[self._cursor]
        self._cursor += 1
        if self.verify_prompts and call.prompt_fingerprint != _fingerprint(
            prompt
        ):
            raise ReplayMismatch(
                f"prompt mismatch at call {self._cursor}: the re-run's "
                "prompt differs from the recorded one (workload, seed or "
                "prompt rendering changed)"
            )
        return LLMReply(
            text=call.text,
            latency_s=call.latency_s,
            input_tokens=call.input_tokens,
            output_tokens=call.output_tokens,
        )


def load_replay(
    path: str | Path, *, verify_prompts: bool = True
) -> ReplayBackend:
    """Load a tape saved by :meth:`RecordingBackend.save`."""
    payload = json.loads(Path(path).read_text())
    calls = [RecordedCall.from_json(c) for c in payload["calls"]]
    return ReplayBackend(
        calls,
        model=payload.get("model", "replay"),
        verify_prompts=verify_prompts,
    )
