"""The LLM-based ReAct scheduling agent (the paper's contribution).

Architecture (paper §2, Figure 1)::

    Discrete event HPC simulator  ──state──▶  Prompt builder (§3.4)
            ▲                                        │
            │ valid action                           ▼
    Constraint check  ◀──parse──  LLM backend (Thought / Action text)
            │                                        ▲
            └── natural-language feedback ──▶  Scratchpad memory

Modules
-------
``grammar``
    The textual ReAct action grammar: parsing ``Action:`` lines into
    :mod:`repro.sim.actions` objects and rendering replies.
``scratchpad``
    Persistent decision-history memory appended to every prompt.
``prompt``
    Renders the §3.4 prompt template from a
    :class:`~repro.sim.simulator.SystemView` + scratchpad.
``profiles``
    Model profiles (``claude-3.7-sim``, ``o4-mini-sim``): multiobjective
    policy weights and calibrated virtual-latency models.
``reasoning``
    The deterministic multiobjective reasoning policy that stands in
    for the cloud LLMs (see DESIGN.md substitution table).
``backends``
    The :class:`~repro.core.backends.LLMBackend` protocol and the
    simulated / scripted implementations.
``constraints``
    Natural-language feedback rendering for violations (§2.4).
``agent``
    :class:`~repro.core.agent.ReActSchedulingAgent`, Algorithm 1.
"""

from repro.core.agent import ReActSchedulingAgent, create_llm_scheduler
from repro.core.batching import BatchedReActAgent, create_batched_llm_scheduler
from repro.core.backends import (
    LLMBackend,
    LLMCallRecord,
    LLMReply,
    ScriptedBackend,
    SimulatedReasoningBackend,
)
from repro.core.constraints import render_feedback
from repro.core.grammar import ActionParseError, parse_reply, render_reply
from repro.core.profiles import (
    CLAUDE_37_SIM,
    ONPREM_FAST_SIM,
    MODEL_PROFILES,
    O4_MINI_SIM,
    LatencyModel,
    ModelProfile,
    PolicyWeights,
)
from repro.core.prompt import PromptBuilder, PromptContext
from repro.core.reasoning import ReasoningPolicy, ReasoningStep
from repro.core.replay import (
    RecordingBackend,
    ReplayBackend,
    ReplayMismatch,
    load_replay,
)
from repro.core.scratchpad import Scratchpad, ScratchpadEntry

__all__ = [
    "ActionParseError",
    "BatchedReActAgent",
    "CLAUDE_37_SIM",
    "create_batched_llm_scheduler",
    "LLMBackend",
    "LLMCallRecord",
    "LLMReply",
    "LatencyModel",
    "MODEL_PROFILES",
    "ModelProfile",
    "O4_MINI_SIM",
    "ONPREM_FAST_SIM",
    "PolicyWeights",
    "PromptBuilder",
    "PromptContext",
    "ReActSchedulingAgent",
    "ReasoningPolicy",
    "ReasoningStep",
    "RecordingBackend",
    "ReplayBackend",
    "ReplayMismatch",
    "ScriptedBackend",
    "load_replay",
    "Scratchpad",
    "ScratchpadEntry",
    "SimulatedReasoningBackend",
    "create_llm_scheduler",
    "parse_reply",
    "render_feedback",
    "render_reply",
]

# Register the LLM schedulers with the central registry on import.
from repro.core import scheduler as _scheduler_registration  # noqa: E402,F401
