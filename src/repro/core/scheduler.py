"""Registers the LLM agents with the central scheduler registry.

Importing :mod:`repro.core` (or top-level :mod:`repro`) makes
``create_scheduler("claude-3.7-sim")`` and
``create_scheduler("o4-mini-sim")`` work alongside the baselines.
"""

from __future__ import annotations

from repro.core.agent import create_llm_scheduler
from repro.core.profiles import MODEL_PROFILES
from repro.schedulers.registry import register_scheduler


def _make_factory(model_name: str):
    def factory(seed: int = 0, **kwargs):
        return create_llm_scheduler(model_name, seed=seed, **kwargs)

    return factory


for _name in MODEL_PROFILES:
    register_scheduler(_name, _make_factory(_name))

#: Names of the LLM schedulers, in the paper's figure order.
LLM_SCHEDULER_NAMES: tuple[str, ...] = tuple(MODEL_PROFILES)
