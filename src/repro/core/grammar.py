"""The textual ReAct grammar.

The paper's prompt (§3.4) instructs the model to answer in the format::

    Thought: <your reasoning>
    Action: <your action>

with the action being one of ``StartJob(job_id=X)``,
``BackfillJob(job_id=Y)``, ``Delay`` or ``Stop``. LLM output is text,
so parsing must be tolerant of the variation real models produce
(case, whitespace, ``job_id`` vs bare integers, trailing prose) while
rejecting genuinely malformed replies so the feedback loop can correct
them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sim.actions import Action, ActionKind, BackfillJob, Delay, StartJob, Stop


class ActionParseError(ValueError):
    """A reply's Action line could not be understood."""


@dataclass(frozen=True)
class ParsedReply:
    """A parsed ReAct reply: free-form thought + structured action."""

    thought: str
    action: Action


_ACTION_LINE = re.compile(r"^\s*action\s*:\s*(?P<body>.+?)\s*$", re.IGNORECASE)
_THOUGHT_LINE = re.compile(r"^\s*thought\s*:\s*(?P<body>.*)$", re.IGNORECASE)

_START = re.compile(
    r"^startjob\s*\(\s*(?:job_?id\s*=\s*)?(?P<id>\d+)\s*\)\s*$", re.IGNORECASE
)
_BACKFILL = re.compile(
    r"^backfilljob\s*\(\s*(?:job_?id\s*=\s*)?(?P<id>\d+)\s*\)\s*$",
    re.IGNORECASE,
)
_DELAY = re.compile(r"^delay\s*(\(\s*\))?\s*\.?$", re.IGNORECASE)
_STOP = re.compile(r"^stop\s*(\(\s*\))?\s*\.?$", re.IGNORECASE)


def parse_action(text: str) -> Action:
    """Parse one action expression (the body of an ``Action:`` line)."""
    body = text.strip()
    if match := _START.match(body):
        return StartJob(int(match.group("id")))
    if match := _BACKFILL.match(body):
        return BackfillJob(int(match.group("id")))
    if _DELAY.match(body):
        return Delay
    if _STOP.match(body):
        return Stop
    raise ActionParseError(
        f"unrecognized action {body!r}; expected StartJob(job_id=X), "
        "BackfillJob(job_id=Y), Delay, or Stop"
    )


def parse_reply(text: str) -> ParsedReply:
    """Parse a full ReAct reply into (thought, action).

    The *last* ``Action:`` line wins (reasoning models sometimes discuss
    candidate actions inside the thought); everything between the first
    ``Thought:`` marker and the chosen action line is the thought. A
    reply with no ``Action:`` line raises :class:`ActionParseError`.
    """
    lines = text.splitlines()
    action_idx = None
    for i, line in enumerate(lines):
        if _ACTION_LINE.match(line):
            action_idx = i
    if action_idx is None:
        raise ActionParseError("reply contains no 'Action:' line")
    body = _ACTION_LINE.match(lines[action_idx]).group("body")  # type: ignore[union-attr]
    action = parse_action(body)

    thought_lines: list[str] = []
    in_thought = False
    for i, line in enumerate(lines[:action_idx]):
        if match := _THOUGHT_LINE.match(line):
            in_thought = True
            first = match.group("body")
            if first:
                thought_lines.append(first)
            continue
        if in_thought:
            thought_lines.append(line)
    if not in_thought:
        # Tolerate replies that skip the Thought: marker entirely.
        thought_lines = [ln for ln in lines[:action_idx]]
    thought = "\n".join(thought_lines).strip()
    return ParsedReply(thought=thought, action=action)


def render_reply(thought: str, action: Action) -> str:
    """Render a (thought, action) pair in the canonical ReAct format."""
    return f"Thought: {thought}\nAction: {action.render()}"


def action_tag(action: Action) -> str:
    """Snake-case tag for overhead bookkeeping (paper §3.7.1 restricts
    to ``start_job`` and ``backfill_job`` calls)."""
    return {
        ActionKind.START: "start_job",
        ActionKind.BACKFILL: "backfill_job",
        ActionKind.DELAY: "delay",
        ActionKind.STOP: "stop",
    }[action.kind]
