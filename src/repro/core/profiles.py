"""Model profiles: policy behaviour + latency models per simulated LLM.

The paper evaluates two reasoning models (§1.2, §3.3):

* **O4-Mini** (OpenAI, "reasoning effort: high") — strong multi-step
  reasoning; heavy-tailed per-call latency with outliers beyond 100 s,
  especially on heterogeneous queues (Fig. 5/6); fairness-focused on
  contended workloads but prone to "easy wins" (short-job bias) when
  resources are scarce, hurting fairness in Resource Sparse /
  Homogeneous Short (§3.5).
* **Claude 3.7 Sonnet** (Anthropic, temperature 0) — tightly clustered
  per-call latencies below ~10 s, ~7× lower total overhead; balanced
  multiobjective behaviour, slightly weaker fairness than O4-Mini in
  Long-Job-Dominant.

A :class:`ModelProfile` packages the two aspects we substitute for the
cloud APIs (see DESIGN.md): :class:`PolicyWeights` steering the
multiobjective reasoning policy, and a :class:`LatencyModel` producing
*virtual* per-call latencies with the observed distributional shape.
Nothing sleeps — latencies are sampled numbers fed to the overhead
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class PolicyWeights:
    """Relative weights of the four prompt objectives in job scoring.

    Weights need not sum to one; scores are compared, not normalized.

    ``easy_win_bias`` models the paper's observation that O4-Mini
    over-prioritizes short jobs under low contention: it scales the
    throughput term *up* as the fraction of feasible queued jobs rises
    (lots of feasible jobs = low contention = easy wins available).
    """

    fairness: float = 0.25
    makespan: float = 0.25
    utilization: float = 0.25
    throughput: float = 0.25
    easy_win_bias: float = 0.0
    #: Starvation patience: once any queued job has waited longer than
    #: ``patience × max(median queued walltime, 300 s)`` the policy
    #: switches to reservation mode — it protects the starving job's
    #: earliest start the way EASY backfilling protects the queue head.
    #: Lower patience = more fairness-protective.
    starvation_patience: float = 3.0
    #: Std-dev of additive noise on per-job scores. Models the run-to-run
    #: nondeterminism of real LLM APIs (the paper's §4 robustness study
    #: exists because even temperature-0 cloud calls are not bitwise
    #: repeatable). Zero = fully deterministic policy.
    decision_noise: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fairness", "makespan", "utilization", "throughput"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be non-negative")


@dataclass(frozen=True)
class LatencyModel:
    """Virtual per-call latency sampler.

    latency = lognormal(log(base_s), sigma)
              × (1 + het_sensitivity · heterogeneity)
              × (1 + queue_sensitivity · (queue_len / 20))
              [× outlier_scale·U(1, 2) with prob outlier_prob·(1+het)]

    Parameters are calibrated so the Fig. 5/6 *shapes* reproduce:
    Claude-sim clusters below 10 s with rare mild outliers; O4-Mini-sim
    is heavy-tailed with >100 s spikes on heterogeneous queues and a
    superlinear elapsed-time growth as queues lengthen.
    """

    base_s: float = 4.0
    sigma: float = 0.25
    het_sensitivity: float = 0.3
    queue_sensitivity: float = 0.1
    outlier_prob: float = 0.0
    outlier_scale: float = 1.0

    def sample(
        self,
        rng: np.random.Generator,
        *,
        queue_len: int = 0,
        heterogeneity: float = 0.0,
    ) -> float:
        """Draw one virtual call latency in seconds."""
        latency = rng.lognormal(np.log(self.base_s), self.sigma)
        latency *= 1.0 + self.het_sensitivity * heterogeneity
        latency *= 1.0 + self.queue_sensitivity * (queue_len / 20.0)
        p_outlier = self.outlier_prob * (1.0 + heterogeneity)
        if p_outlier > 0 and rng.random() < p_outlier:
            latency *= self.outlier_scale * rng.uniform(1.0, 2.0)
        return float(latency)


@dataclass(frozen=True)
class ModelProfile:
    """Everything that distinguishes one simulated LLM from another."""

    name: str
    weights: PolicyWeights
    latency: LatencyModel
    #: Probability that a decision proposes an infeasible job despite
    #: the prompt's resource listing — the hallucination mode §2.4's
    #: constraint enforcement exists to catch. Real reasoning models do
    #: this occasionally (Fig. 2 bottom-right); keep small.
    hallucination_rate: float = 0.02
    #: Max output tokens per call (Claude 3.7 was run with 5 000; the
    #: figure only feeds token accounting).
    max_tokens: int = 5000
    #: Sampling temperature metadata (0 = deterministic decisions).
    temperature: float = 0.0

    def with_weights(self, **kwargs: float) -> "ModelProfile":
        """Derived profile with some policy weights replaced (ablations)."""
        return replace(self, weights=replace(self.weights, **kwargs))

    def with_hallucination_rate(self, rate: float) -> "ModelProfile":
        return replace(self, hallucination_rate=rate)


#: Claude 3.7 Sonnet stand-in: balanced weights, tight low latency.
CLAUDE_37_SIM = ModelProfile(
    name="claude-3.7-sim",
    weights=PolicyWeights(
        fairness=0.24,
        makespan=0.26,
        utilization=0.28,
        throughput=0.22,
        easy_win_bias=0.0,
        starvation_patience=0.3,
        decision_noise=0.01,
    ),
    latency=LatencyModel(
        base_s=4.5,
        sigma=0.22,
        het_sensitivity=0.35,
        queue_sensitivity=0.12,
        outlier_prob=0.01,
        outlier_scale=1.8,
    ),
    hallucination_rate=0.02,
    max_tokens=5000,
    temperature=0.0,
)

#: O4-Mini stand-in: fairness-leaning with an easy-win short-job bias,
#: heavy-tailed latency sensitive to queue heterogeneity and length.
O4_MINI_SIM = ModelProfile(
    name="o4-mini-sim",
    weights=PolicyWeights(
        fairness=0.32,
        makespan=0.18,
        utilization=0.22,
        throughput=0.28,
        easy_win_bias=0.6,
        starvation_patience=0.25,
        decision_noise=0.02,
    ),
    latency=LatencyModel(
        base_s=10.0,
        sigma=0.8,
        het_sensitivity=1.0,
        queue_sensitivity=0.35,
        outlier_prob=0.05,
        outlier_scale=8.0,
    ),
    hallucination_rate=0.03,
    max_tokens=100_000,
    temperature=float("nan"),  # fixed internally, not controllable (§3.3)
)

#: Hypothetical on-premise fast reasoning model — the deployment the
#: paper's §6 says is "critical to overcome the computational overhead
#: barriers": Claude-sim's policy quality with two-orders-of-magnitude
#: lower, dedicated-hardware latency. Exists to quantify the §3.7.3
#: deployment-limit discussion under the suggested fix.
ONPREM_FAST_SIM = ModelProfile(
    name="onprem-fast-sim",
    weights=CLAUDE_37_SIM.weights,
    latency=LatencyModel(
        base_s=0.08,
        sigma=0.3,
        het_sensitivity=0.3,
        queue_sensitivity=0.1,
        outlier_prob=0.005,
        outlier_scale=3.0,
    ),
    hallucination_rate=0.02,
    max_tokens=5000,
    temperature=0.0,
)

#: Registry of named model profiles.
MODEL_PROFILES: dict[str, ModelProfile] = {
    CLAUDE_37_SIM.name: CLAUDE_37_SIM,
    O4_MINI_SIM.name: O4_MINI_SIM,
    ONPREM_FAST_SIM.name: ONPREM_FAST_SIM,
}


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile with a helpful error."""
    try:
        return MODEL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown model profile {name!r}; available: "
            f"{', '.join(MODEL_PROFILES)}"
        ) from None
