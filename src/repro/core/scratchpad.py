"""Scratchpad memory (paper §2.2).

The scratchpad is the agent's persistent context: a running log of
every (Thought, Action, Feedback) triple across timesteps, appended to
each prompt so the model can refer to its own history without
retraining. Because prompts have finite context windows, rendering
supports a last-*k* window while the full history is retained for
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class ScratchpadEntry:
    """One scratchpad line: a decision or an environment feedback."""

    time: float
    thought: str
    action_text: str
    feedback: str = ""

    def render(self) -> str:
        parts = [f"[t={self.time:g}] Action: {self.action_text}"]
        if self.thought:
            # Keep the scratchpad compact: first line of the thought only.
            first_line = self.thought.strip().splitlines()[0]
            parts.insert(0, f"[t={self.time:g}] Thought: {first_line}")
        if self.feedback:
            parts.append(f"Feedback: {self.feedback}")
        return "\n".join(parts)


@dataclass
class Scratchpad:
    """Append-only decision history with windowed rendering.

    Parameters
    ----------
    window:
        How many most-recent entries to include when rendering into a
        prompt (``None`` renders everything). The full history is kept
        regardless — Fig. 2's analysis reads it back out.
    """

    window: Optional[int] = 12
    entries: list[ScratchpadEntry] = field(default_factory=list)

    def append(
        self,
        time: float,
        thought: str,
        action_text: str,
        feedback: str = "",
    ) -> ScratchpadEntry:
        """Record one (thought, action, feedback) triple."""
        entry = ScratchpadEntry(time, thought, action_text, feedback)
        self.entries.append(entry)
        return entry

    def attach_feedback(self, feedback: str) -> None:
        """Attach environment feedback to the most recent entry (the
        constraint module reacts *after* the decision is logged)."""
        if not self.entries:
            raise RuntimeError("no entry to attach feedback to")
        last = self.entries[-1]
        self.entries[-1] = ScratchpadEntry(
            last.time, last.thought, last.action_text, feedback
        )

    def render(self) -> str:
        """Render the prompt section (windowed)."""
        if not self.entries:
            return "(nothing yet)"
        view = (
            self.entries
            if self.window is None
            else self.entries[-self.window :]
        )
        omitted = len(self.entries) - len(view)
        lines: list[str] = []
        if omitted:
            lines.append(f"({omitted} earlier entries omitted)")
        lines.extend(entry.render() for entry in view)
        return "\n".join(lines)

    def recent_feedback(self, since_time: float) -> list[ScratchpadEntry]:
        """Entries carrying feedback at or after *since_time* — the
        reasoning policy uses these to avoid re-proposing jobs the
        environment just rejected."""
        return [
            e for e in self.entries if e.feedback and e.time >= since_time
        ]

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScratchpadEntry]:
        return iter(self.entries)
