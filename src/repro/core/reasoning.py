"""The multiobjective reasoning policy behind the simulated LLMs.

This is the substitution heart (DESIGN.md §2): where the paper queries
a cloud reasoning model, we run a deterministic, seedable policy that
produces the same *kind* of decision the paper's traces show (Fig. 2):

* multiobjective scoring of every feasible queued job against the four
  prompt objectives (fairness, makespan, utilization, throughput);
* explicit natural-language reasoning about the top candidates and the
  trade-off that favours the winner;
* ``Delay`` with an explanation of the blocking condition when nothing
  fits (including the next expected completion, exactly like the
  t=1554 trace);
* occasional infeasible proposals (hallucinations) that exercise the
  constraint-feedback loop, after which the policy reads its own
  scratchpad feedback and avoids the rejected job;
* a closing ``Stop`` once every job has been scheduled.

The policy reads *only* the :class:`~repro.core.prompt.PromptContext`
(system view + scratchpad) — the same information the rendered prompt
carries — so swapping in a real API backend changes nothing upstream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.profiles import ModelProfile
from repro.core.prompt import PromptContext
from repro.sim.actions import (
    Action,
    BackfillJob,
    Delay,
    StartJob,
    Stop,
)
from repro.sim.job import Job

_JOB_ID_IN_ACTION = re.compile(r"job_id\s*=\s*(\d+)", re.IGNORECASE)


@dataclass(frozen=True)
class JobScore:
    """Per-job multiobjective score decomposition."""

    job: Job
    fairness: float
    makespan: float
    utilization: float
    throughput: float
    total: float

    def dominant_objective(self) -> str:
        parts = {
            "fairness": self.fairness,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "throughput": self.throughput,
        }
        return max(parts, key=parts.get)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ReasoningStep:
    """One decision produced by the policy."""

    thought: str
    action: Action
    scores: tuple[JobScore, ...] = ()
    hallucinated: bool = False


@dataclass
class ReasoningPolicy:
    """Deterministic multiobjective decision policy for one model profile."""

    profile: ModelProfile
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    # -- scoring -----------------------------------------------------------
    def score_jobs(
        self, ctx: PromptContext, candidates: list[Job]
    ) -> list[JobScore]:
        """Score *candidates* against the four prompt objectives.

        Each component is normalized into [0, 1] over the candidate set
        so the profile weights are scale-free:

        * fairness — how long the job (and its user) has waited
          relative to the longest waiter;
        * makespan — node-seconds footprint (starting big work early
          shortens the tail, the LPT argument);
        * utilization — fraction of currently free nodes+memory the job
          would put to use;
        * throughput — shortness of the job relative to the candidate
          median (quick completions, like Job 9 in Fig. 2).
        """
        view = ctx.view
        w = self.profile.weights
        n = len(candidates)
        if n == 0:
            return []

        waits = np.array([view.now - j.submit_time for j in candidates])
        max_wait = waits.max()
        user_waits = view.user_wait_times()
        max_user_wait = max(user_waits.values(), default=0.0)
        node_seconds = np.array([j.node_seconds for j in candidates])
        max_ns = node_seconds.max()
        walltimes = np.array([j.walltime for j in candidates])
        median_wt = float(np.median(walltimes))

        free_nodes = max(view.free_nodes, 1)
        free_mem = max(view.free_memory_gb, 1e-9)

        # Easy-win bias: when most of the queue is feasible (low
        # contention), biased models inflate the throughput term.
        feasible_frac = n / max(len(view.queued), 1)
        throughput_weight = w.throughput * (
            1.0 + w.easy_win_bias * feasible_frac
        )

        scores: list[JobScore] = []
        for i, job in enumerate(candidates):
            job_wait_score = waits[i] / max_wait if max_wait > 0 else 0.0
            user_score = (
                user_waits.get(job.user, 0.0) / max_user_wait
                if max_user_wait > 0
                else 0.0
            )
            fair = 0.6 * job_wait_score + 0.4 * user_score
            make = node_seconds[i] / max_ns if max_ns > 0 else 0.0
            util = 0.5 * min(job.nodes / free_nodes, 1.0) + 0.5 * min(
                job.memory_gb / free_mem, 1.0
            )
            short = 1.0 / (1.0 + walltimes[i] / max(median_wt, 1e-9))
            total = (
                w.fairness * fair
                + w.makespan * make
                + w.utilization * util
                + throughput_weight * short
            )
            if w.decision_noise > 0:
                # API-style run-to-run nondeterminism (§4): a small
                # seed-dependent perturbation that can flip near-ties.
                total += float(self.rng.normal(0.0, w.decision_noise))
            scores.append(
                JobScore(
                    job=job,
                    fairness=w.fairness * fair,
                    makespan=w.makespan * make,
                    utilization=w.utilization * util,
                    throughput=throughput_weight * short,
                    total=total,
                )
            )
        scores.sort(key=lambda s: (-s.total, s.job.job_id))
        return scores

    # -- scratchpad awareness ------------------------------------------------
    @staticmethod
    def recently_rejected_ids(ctx: PromptContext) -> set[int]:
        """Job ids the environment rejected at the current timestep.

        Read back from the scratchpad feedback — this is the §2.4
        correction loop: the policy consults its own memory rather
        than any privileged channel.
        """
        rejected: set[int] = set()
        for entry in ctx.scratchpad.recent_feedback(ctx.view.now):
            match = _JOB_ID_IN_ACTION.search(entry.action_text)
            if match:
                rejected.add(int(match.group(1)))
        return rejected

    # -- decisions ---------------------------------------------------------
    def decide(self, ctx: PromptContext) -> ReasoningStep:
        """Produce the next (Thought, Action) for this decision point."""
        view = ctx.view
        if view.all_jobs_scheduled:
            return ReasoningStep(thought=self._stop_thought(ctx), action=Stop)

        rejected = self.recently_rejected_ids(ctx)
        queued = [j for j in view.queued if j.job_id not in rejected]
        feasible = [j for j in queued if view.can_fit(j)]
        infeasible = [j for j in queued if not view.can_fit(j)]

        # Occasional infeasible proposal (hallucination): pick the most
        # "attractive" blocked job, reasoning about fairness/utilization
        # while misreading the resource arithmetic — exactly the failure
        # mode the paper's Fig. 2 bottom-right trace shows.
        if (
            infeasible
            and self.rng.random() < self.profile.hallucination_rate
        ):
            target = max(
                infeasible, key=lambda j: (j.node_seconds, -j.job_id)
            )
            thought = self._hallucination_thought(ctx, target)
            return ReasoningStep(
                thought=thought,
                action=StartJob(target.job_id),
                hallucinated=True,
            )

        if not feasible:
            return ReasoningStep(
                thought=self._delay_thought(ctx), action=Delay
            )

        # Starvation protection: when some queued job has waited far
        # beyond the queue's typical walltime, reason like a reservation
        # backfiller — only run work that cannot push the starving job's
        # earliest start further back (the prompt's "avoid starving any
        # user" objective in action).
        protection = self._starvation_filter(ctx, queued, feasible)
        if protection is not None:
            starving, protected = protection
            if starving.job_id in {j.job_id for j in feasible}:
                thought = self._starvation_thought(ctx, starving, direct=True)
                head0 = view.queued[0]
                act: Action = (
                    StartJob(starving.job_id)
                    if starving.job_id == head0.job_id
                    else BackfillJob(starving.job_id)
                )
                return ReasoningStep(thought=thought, action=act)
            if not protected:
                thought = self._starvation_thought(ctx, starving, direct=False)
                return ReasoningStep(thought=thought, action=Delay)
            feasible = protected

        scores = self.score_jobs(ctx, feasible)
        best = scores[0]
        head = view.queued[0]
        if best.job.job_id == head.job_id:
            action: Action = StartJob(best.job.job_id)
        else:
            # Picking a job out of arrival order = opportunistic backfill.
            action = BackfillJob(best.job.job_id)
        thought = self._decision_thought(ctx, scores, action)
        return ReasoningStep(
            thought=thought, action=action, scores=tuple(scores)
        )

    # -- starvation protection ------------------------------------------------
    def _starvation_filter(
        self,
        ctx: PromptContext,
        queued: list[Job],
        feasible: list[Job],
    ) -> Optional[tuple[Job, list[Job]]]:
        """Detect a starving job and compute the backfill-safe subset.

        Returns ``None`` when nothing is starving; otherwise
        ``(starving_job, jobs_safe_to_run_now)`` where safe jobs either
        finish (by walltime) before the starving job's earliest start
        or fit into resources it will not need then.
        """
        from repro.schedulers.fcfs import head_reservation

        view = ctx.view
        if not queued:
            return None
        starving = max(queued, key=lambda j: (view.now - j.submit_time, j.job_id))
        wait = view.now - starving.submit_time
        median_wt = float(np.median([j.walltime for j in queued]))
        threshold = self.profile.weights.starvation_patience * max(
            median_wt, 300.0
        )
        if wait <= threshold:
            return None
        shadow, extra_nodes, extra_mem = head_reservation(
            starving, view.running, view
        )
        protected = [
            j
            for j in feasible
            if j.job_id != starving.job_id
            and (
                view.now + j.walltime <= shadow + 1e-9
                or (j.nodes <= extra_nodes and j.memory_gb <= extra_mem + 1e-9)
            )
        ]
        if starving.job_id in {j.job_id for j in feasible}:
            return starving, feasible
        return starving, protected

    # -- thought rendering ---------------------------------------------------
    def _state_summary(self, ctx: PromptContext) -> str:
        view = ctx.view
        return (
            f"I need to analyze the current system state and job queue to "
            f"make an optimal scheduling decision. At t={view.now:g} the "
            f"system has {view.free_nodes} of {view.total_nodes} nodes and "
            f"{view.free_memory_gb:g} of {view.total_memory_gb:g} GB memory "
            f"available, with {len(view.running)} running and "
            f"{len(view.queued)} waiting jobs."
        )

    def _decision_thought(
        self,
        ctx: PromptContext,
        scores: list[JobScore],
        action: Action,
    ) -> str:
        view = ctx.view
        lines = [self._state_summary(ctx)]
        lines.append("Looking at the job queue, I notice:")
        for s in scores[:3]:
            j = s.job
            wait = view.now - j.submit_time
            lines.append(
                f"  Job {j.job_id} ({j.nodes} nodes, {j.memory_gb:g} GB, "
                f"walltime={j.walltime:g}) — strongest on "
                f"{s.dominant_objective()}; user {j.user} has waited "
                f"{wait:g}s."
            )
        best = scores[0]
        dominant = best.dominant_objective()
        rationale = {
            "fairness": (
                "it has been waiting longest and starting it minimizes "
                "variance in user wait times without starving anyone"
            ),
            "makespan": (
                "committing its large footprint now shortens the overall "
                "schedule tail while other jobs can pack around it"
            ),
            "utilization": (
                "it puts the largest share of currently idle nodes and "
                "memory to work, avoiding wasted capacity"
            ),
            "throughput": (
                "it is short and will complete quickly, freeing resources "
                "for the remaining queue and raising jobs completed per "
                "unit time"
            ),
        }[dominant]
        verb = (
            "backfill" if action.kind.value == "BackfillJob" else "start"
        )
        lines.append(
            f"Balancing fairness, makespan, utilization and throughput, "
            f"the best choice is to {verb} Job {best.job.job_id} because "
            f"{rationale}. Trade-offs are acceptable: no other candidate "
            f"dominates it on the remaining objectives."
        )
        return "\n".join(lines)

    def _delay_thought(self, ctx: PromptContext) -> str:
        view = ctx.view
        lines = [self._state_summary(ctx)]
        blockers = sorted(
            view.queued, key=lambda j: (j.nodes, j.memory_gb), reverse=True
        )
        if blockers:
            j = blockers[0]
            lines.append(
                f"All eligible jobs currently require more nodes or memory "
                f"than is available (e.g. Job {j.job_id} needs {j.nodes} "
                f"nodes / {j.memory_gb:g} GB; available: {view.free_nodes} "
                f"nodes / {view.free_memory_gb:g} GB)."
            )
        if view.next_completion_time is not None:
            lines.append(
                f"The next likely completion is at t="
                f"{view.next_completion_time:g}, which will release "
                f"resources. Since I cannot start any new jobs now, I "
                f"should wait until then."
            )
        else:
            lines.append(
                "No running job will release resources before new arrivals; "
                "waiting is the only feasible action."
            )
        return "\n".join(lines)

    def _hallucination_thought(self, ctx: PromptContext, job: Job) -> str:
        view = ctx.view
        return (
            f"{self._state_summary(ctx)}\n"
            f"I identified Job {job.job_id} ({job.nodes} nodes, "
            f"{job.memory_gb:g} GB) as the job that would maximize "
            f"utilization and fairness — user {job.user} has not had jobs "
            f"run recently. Starting it now should achieve the best "
            f"balance across objectives."
        )

    def _starvation_thought(
        self, ctx: PromptContext, starving: Job, *, direct: bool
    ) -> str:
        view = ctx.view
        wait = view.now - starving.submit_time
        head = (
            f"{self._state_summary(ctx)}\n"
            f"Fairness check: Job {starving.job_id} (user {starving.user}, "
            f"{starving.nodes} nodes / {starving.memory_gb:g} GB) has been "
            f"waiting {wait:g}s — far longer than the rest of the queue. "
            f"Avoiding starvation now outweighs marginal throughput gains."
        )
        if direct:
            return (
                head
                + f"\nIt fits the currently available resources, so the "
                f"right move is to run Job {starving.job_id} immediately."
            )
        return (
            head
            + "\nIt does not fit yet, and every remaining candidate would "
            "push its earliest start further back, so I will hold "
            "resources for it and wait for running jobs to finish."
        )

    def _stop_thought(self, ctx: PromptContext) -> str:
        view = ctx.view
        running = ", ".join(
            f"Job {r.job.job_id}" for r in view.running
        ) or "none"
        return (
            f"Looking at the waiting jobs queue, there are no eligible jobs "
            f"waiting to be scheduled and no further arrivals are expected. "
            f"Reviewing the decision history, all jobs have been scheduled "
            f"already (still running: {running}). Since every job has been "
            f"assigned a start time, the appropriate action is to stop the "
            f"scheduling process."
        )
