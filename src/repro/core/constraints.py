"""Natural-language feedback for constraint violations (paper §2.4).

The simulator validates every proposed action; when it rejects one,
this module renders the structured violations into the feedback string
appended to the scratchpad — the exact style of Fig. 2's trace::

    [t=1554] Action: StartJob failed (not enough resources)
    Feedback: Job 32 cannot be started — requires 256 Nodes, 8 GB;
    available: 238 Nodes, 576 GB.

The next prompt carries this text, letting the model correct itself
without retraining.
"""

from __future__ import annotations

from repro.sim.actions import Action, ActionKind
from repro.sim.constraints import Violation, ViolationKind
from repro.sim.simulator import SystemView


def render_feedback(
    action: Action,
    violations: tuple[Violation, ...],
    view: SystemView,
) -> str:
    """One feedback string covering every violation of *action*."""
    if not violations:
        return ""

    kinds = {v.kind for v in violations}
    job_id = action.job_id

    if action.kind is ActionKind.STOP:
        return (
            "Stop rejected — jobs remain in the queue or are still "
            "arriving; continue scheduling."
        )

    if kinds & {
        ViolationKind.INSUFFICIENT_NODES,
        ViolationKind.INSUFFICIENT_MEMORY,
    }:
        job = view.queued_job(job_id) if job_id is not None else None
        if job is not None:
            return (
                f"Job {job.job_id} cannot be started — requires "
                f"{job.nodes} Nodes, {job.memory_gb:g} GB; available: "
                f"{view.free_nodes} Nodes, {view.free_memory_gb:g} GB."
            )

    if ViolationKind.EXCEEDS_CAPACITY in kinds:
        detail = next(
            v.detail
            for v in violations
            if v.kind is ViolationKind.EXCEEDS_CAPACITY
        )
        return (
            f"Job {job_id} can never run on this system — {detail}."
        )

    if ViolationKind.NOT_QUEUED in kinds:
        return (
            f"Job {job_id} is not in the waiting queue (it may be "
            "running, completed, or unknown); choose a job from the "
            "Waiting Jobs list."
        )

    if ViolationKind.MALFORMED_ACTION in kinds:
        return (
            "The action was malformed; return exactly one of "
            "StartJob(job_id=X), BackfillJob(job_id=Y), Delay, or Stop."
        )

    # Generic fallback: concatenate the structured details.
    details = "; ".join(v.detail or v.kind.value for v in violations)
    return f"Action {action.render()} rejected — {details}."


def render_parse_feedback(error: Exception) -> str:
    """Feedback for replies the action parser could not understand."""
    return (
        f"Your reply could not be parsed ({error}). Respond in the "
        "format 'Thought: <reasoning>' followed by 'Action: <action>' "
        "where <action> is StartJob(job_id=X), BackfillJob(job_id=Y), "
        "Delay, or Stop."
    )
