"""Cluster resource models.

The paper models a shared partition as two aggregate pools — 256 compute
nodes and 2048 GB of memory (§3.1) — with a *first-fit* allocation
strategy (§3.3): a selected job is placed on the first available set of
resources meeting its requirements, and topology/storage are abstracted
away. :class:`ResourcePool` is that model.

:class:`NodeLevelCluster` is an optional finer-grained model that tracks
per-node memory and performs first-fit over an explicit node list; it is
used in tests and ablations to confirm that aggregate accounting does
not change scheduling outcomes for the paper's workloads (jobs spread
memory evenly across their nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.sim.job import Job
from repro.sim.topology import ClusterTopology


@runtime_checkable
class ClusterModel(Protocol):
    """Protocol every cluster resource model implements."""

    total_nodes: int
    total_memory_gb: float

    def can_fit(self, job: Job) -> bool:
        """True if *job* could start right now."""
        ...

    def allocate(self, job: Job) -> None:
        """Reserve resources for *job* (raises if infeasible)."""
        ...

    def release(self, job_id: int) -> None:
        """Free the resources held by *job_id*."""
        ...

    @property
    def free_nodes(self) -> int:
        ...

    @property
    def free_memory_gb(self) -> float:
        ...


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied.

    The simulator never lets this happen for validated actions; seeing
    it indicates a scheduler bypassed constraint checking.
    """


@dataclass
class ResourcePool:
    """Aggregate node + memory accounting with first-fit feasibility.

    This is the paper's cluster model: a job fits iff its node request
    is at most the free node count and its memory request at most the
    free memory. Allocations are tracked per job id so releases are
    exact and double-release is detected.

    Parameters
    ----------
    total_nodes:
        Partition node count (paper default 256).
    total_memory_gb:
        Partition memory capacity in GB (paper default 2048).
    topology:
        Optional node → rack → switch hierarchy; defaults to the flat
        single-domain topology, under which every topology-aware code
        path is a no-op and the pool behaves exactly as before.
    """

    total_nodes: int = 256
    total_memory_gb: float = 2048.0
    topology: Optional[ClusterTopology] = None
    _free_nodes: int = field(init=False)
    _free_memory_gb: float = field(init=False)
    _allocations: dict[int, tuple[int, float]] = field(
        init=False, default_factory=dict
    )
    #: Nodes currently out of service (failed or draining); each holds
    #: back one node and an even memory share from the free pool.
    _offline_nodes: int = field(init=False, default=0)
    #: Nodes held per active drain tag (see :meth:`drain_take_idle`).
    _drain_tags: dict[str, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        if self.total_memory_gb <= 0:
            raise ValueError("total_memory_gb must be positive")
        if self.topology is None:
            self.topology = ClusterTopology.flat(self.total_nodes)
        else:
            self.topology.validate_for(self.total_nodes)
        self._free_nodes = self.total_nodes
        self._free_memory_gb = float(self.total_memory_gb)

    @property
    def _node_memory_share(self) -> float:
        """Memory an offline node withholds: the even per-node share."""
        return self.total_memory_gb / self.total_nodes

    # -- feasibility ---------------------------------------------------
    def can_fit(self, job: Job) -> bool:
        return (
            job.nodes <= self._free_nodes
            and job.memory_gb <= self._free_memory_gb + 1e-9
        )

    def fits_empty(self, job: Job) -> bool:
        """True if *job* could run on an otherwise idle cluster."""
        return (
            job.nodes <= self.total_nodes
            and job.memory_gb <= self.total_memory_gb + 1e-9
        )

    # -- state transitions ---------------------------------------------
    def allocate(self, job: Job) -> None:
        if job.job_id in self._allocations:
            raise AllocationError(f"job {job.job_id} is already allocated")
        if not self.can_fit(job):
            raise AllocationError(
                f"job {job.job_id} needs {job.nodes} nodes / "
                f"{job.memory_gb:g} GB; free: {self._free_nodes} nodes / "
                f"{self._free_memory_gb:g} GB"
            )
        self._allocations[job.job_id] = (job.nodes, job.memory_gb)
        self._free_nodes -= job.nodes
        self._free_memory_gb -= job.memory_gb

    def release(self, job_id: int) -> None:
        try:
            nodes, memory = self._allocations.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        self._free_nodes += nodes
        self._free_memory_gb += memory
        # Guard against drift from repeated float adds.
        if self._free_nodes > self.total_nodes:
            raise AllocationError("node accounting corrupted (over-release)")
        self._free_memory_gb = min(self._free_memory_gb, self.total_memory_gb)

    def reset(self) -> None:
        """Return to the fully idle state."""
        self._allocations.clear()
        self._free_nodes = self.total_nodes
        self._free_memory_gb = float(self.total_memory_gb)
        self._offline_nodes = 0
        self._drain_tags.clear()

    # -- disruptions -----------------------------------------------------
    # The aggregate model has no node identity, so disruptions operate
    # on *occupancy slots*: running allocations are laid out
    # contiguously over [0, used_nodes) in allocation order, and idle
    # capacity occupies the rest. A failure at slot index i therefore
    # kills the job holding slot i — or an idle node when i falls past
    # the busy region. Free memory can transiently go (slightly)
    # negative when a failure strikes a memory-saturated cluster; every
    # feasibility comparison treats that as "nothing fits", and the
    # books balance exactly on repair.

    def slot_victim(self, node_index: int) -> Optional[int]:
        """Job occupying occupancy slot *node_index*, or ``None`` if the
        slot is idle/offline. Deterministic: allocation (insertion)
        order, which the simulator replays identically under a seed."""
        offset = 0
        for job_id, (nodes, _mem) in self._allocations.items():
            if offset <= node_index < offset + nodes:
                return job_id
            offset += nodes
        return None

    def mark_failed(self, node_index: int) -> bool:
        """Take one (idle) node offline for a failure. Returns False —
        a no-op — when every non-busy node is already offline (the
        abstract slot pointed at a node that is already down); the
        caller must then skip the paired repair too."""
        if self._free_nodes < 1:
            return False
        self._free_nodes -= 1
        self._free_memory_gb -= self._node_memory_share
        self._offline_nodes += 1
        return True

    def mark_repaired(self, node_index: int) -> None:
        """Bring a failed node back into service."""
        if self._offline_nodes < 1:
            raise AllocationError("repair with no offline nodes")
        self._offline_nodes -= 1
        self._free_nodes += 1
        self._free_memory_gb += self._node_memory_share

    def drain_take_idle(
        self, tag: str, within: Optional[range] = None
    ) -> bool:
        """Drain one idle node under *tag*; False if none is idle
        (the simulator must kill a running job first — see
        :meth:`drain_victim`). The aggregate model has no node
        identity, so a domain restriction (*within*) cannot narrow the
        idle pool and is ignored."""
        if self._free_nodes < 1:
            return False
        self._free_nodes -= 1
        self._free_memory_gb -= self._node_memory_share
        self._offline_nodes += 1
        self._drain_tags[tag] = self._drain_tags.get(tag, 0) + 1
        return True

    def drain_victim(self, within: Optional[range] = None) -> Optional[int]:
        """Job to preempt so a drain can proceed: the most recently
        started allocation (the "top" of the slot layout). *within* is
        ignored — see :meth:`drain_take_idle`."""
        if not self._allocations:
            return None
        return next(reversed(self._allocations))

    def drain_release(self, tag: str) -> None:
        """End a drain: every node taken under *tag* returns."""
        count = self._drain_tags.pop(tag, 0)
        self._offline_nodes -= count
        self._free_nodes += count
        self._free_memory_gb += count * self._node_memory_share

    # -- introspection ---------------------------------------------------
    @property
    def free_nodes(self) -> int:
        return self._free_nodes

    @property
    def free_memory_gb(self) -> float:
        return self._free_memory_gb

    @property
    def offline_nodes(self) -> int:
        """Nodes currently failed or draining."""
        return self._offline_nodes

    @property
    def used_nodes(self) -> int:
        return self.total_nodes - self._free_nodes

    @property
    def used_memory_gb(self) -> float:
        return self.total_memory_gb - self._free_memory_gb

    @property
    def running_job_ids(self) -> list[int]:
        return sorted(self._allocations)

    def node_utilization(self) -> float:
        """Instantaneous node occupancy in [0, 1]."""
        return self.used_nodes / self.total_nodes

    def memory_utilization(self) -> float:
        """Instantaneous memory occupancy in [0, 1]."""
        return self.used_memory_gb / self.total_memory_gb

    def domain_free_nodes(self) -> tuple[int, ...]:
        """Free (idle, online) node count per rack.

        The aggregate pool has no node identity, so the count is
        derived from the canonical slot layout the disruption subsystem
        already uses: busy allocations occupy slots ``[0, used)``,
        offline nodes are pinned to the top slots, and the idle region
        is what remains in between — each rack's free count is its
        overlap with that region. Deterministic, and consistent with
        :meth:`slot_victim`'s view of the world.
        """
        topo = self.topology
        assert topo is not None  # set in __post_init__
        busy = self.total_nodes - self._free_nodes - self._offline_nodes
        idle_end = self.total_nodes - self._offline_nodes
        out = []
        for rack in range(topo.n_racks):
            nodes = topo.rack_nodes(rack)
            lo = max(nodes.start, busy)
            hi = min(nodes.stop, idle_end)
            out.append(max(0, hi - lo))
        return tuple(out)

    def snapshot(self) -> dict[str, float]:
        """Structured state snapshot (used by prompt rendering)."""
        return {
            "total_nodes": self.total_nodes,
            "total_memory_gb": self.total_memory_gb,
            "free_nodes": self._free_nodes,
            "free_memory_gb": self._free_memory_gb,
            "used_nodes": self.used_nodes,
            "used_memory_gb": self.used_memory_gb,
        }


@dataclass
class NodeLevelCluster:
    """Per-node first-fit cluster model.

    Each node has its own memory capacity; a job asking for ``n`` nodes
    and ``m`` GB is placed on the first ``n`` nodes (in index order,
    classic first-fit) that each have at least ``m / n`` GB free. Jobs
    are assumed to spread memory evenly across their nodes, which is how
    both the paper's generator and the Polaris preprocessing derive
    memory demands.

    Exposes the same interface as :class:`ResourcePool` so the simulator
    can run with either model.
    """

    node_count: int = 256
    memory_per_node_gb: float = 8.0
    topology: Optional[ClusterTopology] = None
    _node_free_mem: np.ndarray = field(init=False, repr=False)
    _node_owner: np.ndarray = field(init=False, repr=False)
    #: Per-node out-of-service flag (failed or draining); offline nodes
    #: are excluded from placement candidates and aggregate capacity.
    _node_offline: np.ndarray = field(init=False, repr=False)
    _drain_tags: dict[str, list[int]] = field(
        init=False, default_factory=dict, repr=False
    )
    _placements: dict[int, tuple[np.ndarray, float]] = field(
        init=False, default_factory=dict, repr=False
    )
    #: Cached (free_nodes, free_memory_gb); recomputed with the exact
    #: same numpy reductions on first read after a state change, so the
    #: per-decision aggregate queries are O(1) without any accumulated
    #: float drift an incremental running total would introduce.
    _agg_cache: tuple[int, float] | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if self.memory_per_node_gb <= 0:
            raise ValueError("memory_per_node_gb must be positive")
        if self.topology is None:
            self.topology = ClusterTopology.flat(self.node_count)
        else:
            self.topology.validate_for(self.node_count)
        self._node_free_mem = np.full(
            self.node_count, float(self.memory_per_node_gb)
        )
        self._node_owner = np.full(self.node_count, -1, dtype=np.int64)
        self._node_offline = np.zeros(self.node_count, dtype=bool)

    # Aggregate capacity view (ClusterModel protocol).
    @property
    def total_nodes(self) -> int:
        return self.node_count

    @property
    def total_memory_gb(self) -> float:
        return self.node_count * self.memory_per_node_gb

    def _aggregates(self) -> tuple[int, float]:
        agg = self._agg_cache
        if agg is None:
            free = (self._node_owner < 0) & ~self._node_offline
            agg = (
                int(free.sum()),
                float(self._node_free_mem[free].sum()),
            )
            self._agg_cache = agg
        return agg

    @property
    def free_nodes(self) -> int:
        return self._aggregates()[0]

    @property
    def free_memory_gb(self) -> float:
        return self._aggregates()[1]

    def _candidate_nodes(self, job: Job) -> np.ndarray | None:
        per_node_mem = job.memory_gb / job.nodes
        free = (self._node_owner < 0) & ~self._node_offline
        enough = self._node_free_mem >= per_node_mem - 1e-9
        eligible = np.flatnonzero(free & enough)
        if eligible.size < job.nodes:
            return None
        topo = self.topology
        if topo is not None and not topo.is_flat:
            # Spread-first-fit: a job that fits inside one rack goes to
            # the rack with the most eligible nodes (ties: lowest rack
            # index), keeping domains evenly loaded so one correlated
            # shock does not wipe out a disproportionate share of the
            # running work. Jobs wider than any single rack's supply
            # fall back to the global first-fit scan. Gated on a
            # non-flat topology: default clusters place identically to
            # the pre-topology code.
            rack_ids = eligible // topo.rack_size
            counts = np.bincount(rack_ids, minlength=topo.n_racks)
            fits = np.flatnonzero(counts >= job.nodes)
            if fits.size:
                best = int(fits[np.argmax(counts[fits])])
                within = eligible[rack_ids == best]
                return within[: job.nodes]
        return eligible[: job.nodes]

    def can_fit(self, job: Job) -> bool:
        return self._candidate_nodes(job) is not None

    def fits_empty(self, job: Job) -> bool:
        return (
            job.nodes <= self.node_count
            and job.memory_gb / job.nodes <= self.memory_per_node_gb + 1e-9
        )

    def allocate(self, job: Job) -> None:
        if job.job_id in self._placements:
            raise AllocationError(f"job {job.job_id} is already allocated")
        nodes = self._candidate_nodes(job)
        if nodes is None:
            raise AllocationError(
                f"job {job.job_id} does not fit on any {job.nodes} free nodes"
            )
        per_node_mem = job.memory_gb / job.nodes
        self._node_owner[nodes] = job.job_id
        self._node_free_mem[nodes] -= per_node_mem
        self._placements[job.job_id] = (nodes.copy(), per_node_mem)
        self._agg_cache = None

    def release(self, job_id: int) -> None:
        try:
            nodes, per_node_mem = self._placements.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        self._node_owner[nodes] = -1
        self._node_free_mem[nodes] += per_node_mem
        np.minimum(
            self._node_free_mem, self.memory_per_node_gb, out=self._node_free_mem
        )
        self._agg_cache = None

    def reset(self) -> None:
        self._placements.clear()
        self._node_free_mem[:] = self.memory_per_node_gb
        self._node_owner[:] = -1
        self._node_offline[:] = False
        self._drain_tags.clear()
        self._agg_cache = None

    # -- disruptions -----------------------------------------------------
    # Unlike the aggregate pool, nodes have identity here: failures hit
    # the actual node index and drains take the highest-indexed online
    # nodes (idle ones first), killing owners only when necessary.

    def slot_victim(self, node_index: int) -> Optional[int]:
        """Job owning node *node_index* (``None`` if idle or offline)."""
        if not 0 <= node_index < self.node_count:
            return None
        if self._node_offline[node_index]:
            return None
        owner = int(self._node_owner[node_index])
        return owner if owner >= 0 else None

    def mark_failed(self, node_index: int) -> bool:
        """Take node *node_index* offline; the owner (if any) must have
        been killed/released first. False if it is already offline."""
        if not 0 <= node_index < self.node_count:
            return False
        if self._node_offline[node_index]:
            return False
        if self._node_owner[node_index] >= 0:
            raise AllocationError(
                f"node {node_index} still owned by job "
                f"{int(self._node_owner[node_index])}; kill it first"
            )
        self._node_offline[node_index] = True
        self._agg_cache = None
        return True

    def mark_repaired(self, node_index: int) -> None:
        self._node_offline[node_index] = False
        self._agg_cache = None

    @staticmethod
    def _highest_in(mask: np.ndarray, within: Optional[range]) -> int:
        """Highest node index satisfying *mask* inside *within* (the
        whole machine when None); -1 if none does."""
        if within is not None:
            hits = np.flatnonzero(mask[within.start : within.stop])
            return within.start + int(hits[-1]) if hits.size else -1
        hits = np.flatnonzero(mask)
        return int(hits[-1]) if hits.size else -1

    def drain_take_idle(
        self, tag: str, within: Optional[range] = None
    ) -> bool:
        """Drain the highest-indexed idle online node under *tag*.

        With *within* (a domain's node range) only nodes inside that
        block are taken — a rack-scoped maintenance window drains that
        rack, not whichever nodes happen to be idle elsewhere.
        """
        idle = (self._node_owner < 0) & ~self._node_offline
        node = self._highest_in(idle, within)
        if node < 0:
            return False
        self._node_offline[node] = True
        self._drain_tags.setdefault(tag, []).append(node)
        self._agg_cache = None
        return True

    def drain_victim(self, within: Optional[range] = None) -> Optional[int]:
        """Owner of the highest-indexed occupied online node (within
        the given domain block, when restricted)."""
        occupied = (self._node_owner >= 0) & ~self._node_offline
        node = self._highest_in(occupied, within)
        if node < 0:
            return None
        return int(self._node_owner[node])

    def drain_release(self, tag: str) -> None:
        for node in self._drain_tags.pop(tag, ()):
            self._node_offline[node] = False
        self._agg_cache = None

    @property
    def offline_nodes(self) -> int:
        return int(self._node_offline.sum())

    @property
    def used_nodes(self) -> int:
        return self.node_count - self.free_nodes

    @property
    def used_memory_gb(self) -> float:
        return self.total_memory_gb - self.free_memory_gb

    @property
    def running_job_ids(self) -> list[int]:
        return sorted(self._placements)

    def node_utilization(self) -> float:
        return self.used_nodes / self.node_count

    def memory_utilization(self) -> float:
        return self.used_memory_gb / self.total_memory_gb

    def domain_free_nodes(self) -> tuple[int, ...]:
        """Exact free (idle, online) node count per rack."""
        topo = self.topology
        assert topo is not None  # set in __post_init__
        free = (self._node_owner < 0) & ~self._node_offline
        rack_ids = np.flatnonzero(free) // topo.rack_size
        counts = np.bincount(rack_ids, minlength=topo.n_racks)
        return tuple(int(c) for c in counts)

    def placement_of(self, job_id: int) -> np.ndarray:
        """Node indices assigned to a running job (testing/inspection)."""
        return self._placements[job_id][0].copy()

    def snapshot(self) -> dict[str, float]:
        return {
            "total_nodes": self.total_nodes,
            "total_memory_gb": self.total_memory_gb,
            "free_nodes": self.free_nodes,
            "free_memory_gb": self.free_memory_gb,
            "used_nodes": self.used_nodes,
            "used_memory_gb": self.used_memory_gb,
        }
