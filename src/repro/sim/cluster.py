"""Cluster resource models.

The paper models a shared partition as two aggregate pools — 256 compute
nodes and 2048 GB of memory (§3.1) — with a *first-fit* allocation
strategy (§3.3): a selected job is placed on the first available set of
resources meeting its requirements, and topology/storage are abstracted
away. :class:`ResourcePool` is that model.

:class:`NodeLevelCluster` is an optional finer-grained model that tracks
per-node memory and performs first-fit over an explicit node list; it is
used in tests and ablations to confirm that aggregate accounting does
not change scheduling outcomes for the paper's workloads (jobs spread
memory evenly across their nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.sim.job import Job


@runtime_checkable
class ClusterModel(Protocol):
    """Protocol every cluster resource model implements."""

    total_nodes: int
    total_memory_gb: float

    def can_fit(self, job: Job) -> bool:
        """True if *job* could start right now."""
        ...

    def allocate(self, job: Job) -> None:
        """Reserve resources for *job* (raises if infeasible)."""
        ...

    def release(self, job_id: int) -> None:
        """Free the resources held by *job_id*."""
        ...

    @property
    def free_nodes(self) -> int:
        ...

    @property
    def free_memory_gb(self) -> float:
        ...


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied.

    The simulator never lets this happen for validated actions; seeing
    it indicates a scheduler bypassed constraint checking.
    """


@dataclass
class ResourcePool:
    """Aggregate node + memory accounting with first-fit feasibility.

    This is the paper's cluster model: a job fits iff its node request
    is at most the free node count and its memory request at most the
    free memory. Allocations are tracked per job id so releases are
    exact and double-release is detected.

    Parameters
    ----------
    total_nodes:
        Partition node count (paper default 256).
    total_memory_gb:
        Partition memory capacity in GB (paper default 2048).
    """

    total_nodes: int = 256
    total_memory_gb: float = 2048.0
    _free_nodes: int = field(init=False)
    _free_memory_gb: float = field(init=False)
    _allocations: dict[int, tuple[int, float]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        if self.total_memory_gb <= 0:
            raise ValueError("total_memory_gb must be positive")
        self._free_nodes = self.total_nodes
        self._free_memory_gb = float(self.total_memory_gb)

    # -- feasibility ---------------------------------------------------
    def can_fit(self, job: Job) -> bool:
        return (
            job.nodes <= self._free_nodes
            and job.memory_gb <= self._free_memory_gb + 1e-9
        )

    def fits_empty(self, job: Job) -> bool:
        """True if *job* could run on an otherwise idle cluster."""
        return (
            job.nodes <= self.total_nodes
            and job.memory_gb <= self.total_memory_gb + 1e-9
        )

    # -- state transitions ---------------------------------------------
    def allocate(self, job: Job) -> None:
        if job.job_id in self._allocations:
            raise AllocationError(f"job {job.job_id} is already allocated")
        if not self.can_fit(job):
            raise AllocationError(
                f"job {job.job_id} needs {job.nodes} nodes / "
                f"{job.memory_gb:g} GB; free: {self._free_nodes} nodes / "
                f"{self._free_memory_gb:g} GB"
            )
        self._allocations[job.job_id] = (job.nodes, job.memory_gb)
        self._free_nodes -= job.nodes
        self._free_memory_gb -= job.memory_gb

    def release(self, job_id: int) -> None:
        try:
            nodes, memory = self._allocations.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        self._free_nodes += nodes
        self._free_memory_gb += memory
        # Guard against drift from repeated float adds.
        if self._free_nodes > self.total_nodes:
            raise AllocationError("node accounting corrupted (over-release)")
        self._free_memory_gb = min(self._free_memory_gb, self.total_memory_gb)

    def reset(self) -> None:
        """Return to the fully idle state."""
        self._allocations.clear()
        self._free_nodes = self.total_nodes
        self._free_memory_gb = float(self.total_memory_gb)

    # -- introspection ---------------------------------------------------
    @property
    def free_nodes(self) -> int:
        return self._free_nodes

    @property
    def free_memory_gb(self) -> float:
        return self._free_memory_gb

    @property
    def used_nodes(self) -> int:
        return self.total_nodes - self._free_nodes

    @property
    def used_memory_gb(self) -> float:
        return self.total_memory_gb - self._free_memory_gb

    @property
    def running_job_ids(self) -> list[int]:
        return sorted(self._allocations)

    def node_utilization(self) -> float:
        """Instantaneous node occupancy in [0, 1]."""
        return self.used_nodes / self.total_nodes

    def memory_utilization(self) -> float:
        """Instantaneous memory occupancy in [0, 1]."""
        return self.used_memory_gb / self.total_memory_gb

    def snapshot(self) -> dict[str, float]:
        """Structured state snapshot (used by prompt rendering)."""
        return {
            "total_nodes": self.total_nodes,
            "total_memory_gb": self.total_memory_gb,
            "free_nodes": self._free_nodes,
            "free_memory_gb": self._free_memory_gb,
            "used_nodes": self.used_nodes,
            "used_memory_gb": self.used_memory_gb,
        }


@dataclass
class NodeLevelCluster:
    """Per-node first-fit cluster model.

    Each node has its own memory capacity; a job asking for ``n`` nodes
    and ``m`` GB is placed on the first ``n`` nodes (in index order,
    classic first-fit) that each have at least ``m / n`` GB free. Jobs
    are assumed to spread memory evenly across their nodes, which is how
    both the paper's generator and the Polaris preprocessing derive
    memory demands.

    Exposes the same interface as :class:`ResourcePool` so the simulator
    can run with either model.
    """

    node_count: int = 256
    memory_per_node_gb: float = 8.0
    _node_free_mem: np.ndarray = field(init=False, repr=False)
    _node_owner: np.ndarray = field(init=False, repr=False)
    _placements: dict[int, tuple[np.ndarray, float]] = field(
        init=False, default_factory=dict, repr=False
    )
    #: Cached (free_nodes, free_memory_gb); recomputed with the exact
    #: same numpy reductions on first read after a state change, so the
    #: per-decision aggregate queries are O(1) without any accumulated
    #: float drift an incremental running total would introduce.
    _agg_cache: tuple[int, float] | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if self.memory_per_node_gb <= 0:
            raise ValueError("memory_per_node_gb must be positive")
        self._node_free_mem = np.full(
            self.node_count, float(self.memory_per_node_gb)
        )
        self._node_owner = np.full(self.node_count, -1, dtype=np.int64)

    # Aggregate capacity view (ClusterModel protocol).
    @property
    def total_nodes(self) -> int:
        return self.node_count

    @property
    def total_memory_gb(self) -> float:
        return self.node_count * self.memory_per_node_gb

    def _aggregates(self) -> tuple[int, float]:
        agg = self._agg_cache
        if agg is None:
            free = self._node_owner < 0
            agg = (
                int(free.sum()),
                float(self._node_free_mem[free].sum()),
            )
            self._agg_cache = agg
        return agg

    @property
    def free_nodes(self) -> int:
        return self._aggregates()[0]

    @property
    def free_memory_gb(self) -> float:
        return self._aggregates()[1]

    def _candidate_nodes(self, job: Job) -> np.ndarray | None:
        per_node_mem = job.memory_gb / job.nodes
        free = self._node_owner < 0
        enough = self._node_free_mem >= per_node_mem - 1e-9
        eligible = np.flatnonzero(free & enough)
        if eligible.size < job.nodes:
            return None
        return eligible[: job.nodes]

    def can_fit(self, job: Job) -> bool:
        return self._candidate_nodes(job) is not None

    def fits_empty(self, job: Job) -> bool:
        return (
            job.nodes <= self.node_count
            and job.memory_gb / job.nodes <= self.memory_per_node_gb + 1e-9
        )

    def allocate(self, job: Job) -> None:
        if job.job_id in self._placements:
            raise AllocationError(f"job {job.job_id} is already allocated")
        nodes = self._candidate_nodes(job)
        if nodes is None:
            raise AllocationError(
                f"job {job.job_id} does not fit on any {job.nodes} free nodes"
            )
        per_node_mem = job.memory_gb / job.nodes
        self._node_owner[nodes] = job.job_id
        self._node_free_mem[nodes] -= per_node_mem
        self._placements[job.job_id] = (nodes.copy(), per_node_mem)
        self._agg_cache = None

    def release(self, job_id: int) -> None:
        try:
            nodes, per_node_mem = self._placements.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        self._node_owner[nodes] = -1
        self._node_free_mem[nodes] += per_node_mem
        np.minimum(
            self._node_free_mem, self.memory_per_node_gb, out=self._node_free_mem
        )
        self._agg_cache = None

    def reset(self) -> None:
        self._placements.clear()
        self._node_free_mem[:] = self.memory_per_node_gb
        self._node_owner[:] = -1
        self._agg_cache = None

    @property
    def used_nodes(self) -> int:
        return self.node_count - self.free_nodes

    @property
    def used_memory_gb(self) -> float:
        return self.total_memory_gb - self.free_memory_gb

    @property
    def running_job_ids(self) -> list[int]:
        return sorted(self._placements)

    def node_utilization(self) -> float:
        return self.used_nodes / self.node_count

    def memory_utilization(self) -> float:
        return self.used_memory_gb / self.total_memory_gb

    def placement_of(self, job_id: int) -> np.ndarray:
        """Node indices assigned to a running job (testing/inspection)."""
        return self._placements[job_id][0].copy()

    def snapshot(self) -> dict[str, float]:
        return {
            "total_nodes": self.total_nodes,
            "total_memory_gb": self.total_memory_gb,
            "free_nodes": self.free_nodes,
            "free_memory_gb": self.free_memory_gb,
            "used_nodes": self.used_nodes,
            "used_memory_gb": self.used_memory_gb,
        }
