"""Columnar decision layer: vectorized projections of the queue.

PR 6's flat-array engine made the *event loop* queue-depth-insensitive,
but schedulers still pulled state through per-:class:`~repro.sim.job.Job`
facades one attribute at a time — the decision path re-materialized
Python attribute reads the SoA core worked hard to avoid. This module
is the scheduler-side counterpart: per-job attribute **columns** built
once per workload, projected onto the current queue as numpy arrays, so
sort/filter-shaped decision kernels run as argsorts and boolean masks
instead of per-job key lambdas.

Three layers, matching how often each changes:

* :class:`JobColumns` — one array per job attribute, indexed by
  workload position. Built **once per run** (lazily, on the first
  columnar access) and shared by every view of that run; the no-copy
  property test pins exactly this sharing.
* :class:`QueueColumns` — the queue-order projection: the engine's
  live-position selector over the masters. Rebuilt only when the queue
  actually changes (the same cadence as the cached ``queued`` tuple);
  gathered columns are cached per rebuild, so a stable backlog pays
  zero per-decision gather cost.
* :class:`ViewColumns` — the per-view handle returned by
  :meth:`~repro.sim.simulator.SystemView.columns`: queue columns plus
  the view's capacity scalars/vectors and the derived per-decision
  masks (``fits_mask``), each cached on the view's lifetime.

**Byte-identity is inherited, not re-proven**: columns carry the exact
float/int values the ``Job`` facades hold (no casts through lower
precision), so an argsort keyed on ``(column, job_id)`` reproduces a
``sorted(..., key=...)`` over the same tuples bit for bit. Columnar
schedulers are digest-pinned against their facade twins on the full
disruption/topology regime matrix.

Hand-built views (tests, bench harnesses) get the same surface with no
engine behind them: the fallback builds masters from ``view.queued``
directly and uses the identity selector, so the gathered columns *are*
the masters — still zero copies per decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.job import Job
    from repro.sim.simulator import SystemView

#: Gatherable per-job attribute columns, in a fixed order.
COLUMN_NAMES = (
    "job_id",
    "nodes",
    "memory_gb",
    "walltime",
    "duration",
    "submit_time",
    "node_seconds",
)

_INT_COLUMNS = frozenset({"job_id", "nodes"})

#: Queue depth below which columnar kernels defer to their facade
#: twins. On short steady-state queues numpy dispatch (lexsort, mask
#: construction, boolean indexing at ~5–15 µs per call) costs more
#: than it saves over a handful of Python attribute reads; the decision
#: microbench puts the break-even near this depth. Because both kernels
#: are byte-identical, switching per decision is invisible to digests —
#: the crossover tunes constants, never observables.
COLUMNAR_MIN_QUEUE = 32


class JobColumns:
    """Immutable per-job attribute arrays for one workload.

    Indexed by workload position (the engine's flat-array index), one
    read-only numpy array per attribute in :data:`COLUMN_NAMES`.
    ``node_seconds`` is materialized as ``nodes * duration`` with the
    same int×float IEEE multiply the :class:`Job` property performs,
    so argsorts over the column reproduce facade key tuples exactly.
    """

    __slots__ = ("n",) + COLUMN_NAMES

    def __init__(self, jobs: Sequence["Job"]) -> None:
        n = len(jobs)
        self.n = n
        self.job_id = np.fromiter(
            (j.job_id for j in jobs), np.int64, count=n
        )
        self.nodes = np.fromiter((j.nodes for j in jobs), np.int64, count=n)
        self.memory_gb = np.fromiter(
            (j.memory_gb for j in jobs), np.float64, count=n
        )
        self.walltime = np.fromiter(
            (j.walltime for j in jobs), np.float64, count=n
        )
        self.duration = np.fromiter(
            (j.duration for j in jobs), np.float64, count=n
        )
        self.submit_time = np.fromiter(
            (j.submit_time for j in jobs), np.float64, count=n
        )
        self.node_seconds = self.nodes * self.duration
        for name in COLUMN_NAMES:
            getattr(self, name).setflags(write=False)


class QueueColumns:
    """Queue-order projection of :class:`JobColumns`.

    ``sel`` holds the workload positions of the queued jobs in queue
    order (``None`` means the identity selector: masters already *are*
    queue order — the hand-built-view fallback). Gathers are lazy and
    cached, so they run once per queue change, not once per decision.
    """

    __slots__ = ("_masters", "_sel", "n", "_gathered")

    def __init__(
        self,
        masters: Union[JobColumns, Callable[[], JobColumns]],
        sel: Optional[Sequence[int]],
        n: int,
    ) -> None:
        self._masters = masters
        self._sel = sel
        self.n = n
        self._gathered: dict[str, np.ndarray] = {}

    @property
    def masters(self) -> JobColumns:
        m = self._masters
        if not isinstance(m, JobColumns):
            m = self._masters = m()
        return m

    @property
    def sel(self) -> np.ndarray:
        """Workload positions of the queued jobs, queue order."""
        sel = self._sel
        if sel is None:
            sel = np.arange(self.n, dtype=np.int64)
            sel.setflags(write=False)
            self._sel = sel
        elif not isinstance(sel, np.ndarray):
            sel = np.asarray(sel, dtype=np.int64)
            sel.setflags(write=False)
            self._sel = sel
        return sel

    def col(self, name: str) -> np.ndarray:
        """Queue-order column *name*; gathered once and cached."""
        arr = self._gathered.get(name)
        if arr is None:
            master = getattr(self.masters, name)
            if self._sel is None:
                arr = master
            else:
                arr = master[self.sel]
                arr.setflags(write=False)
            self._gathered[name] = arr
        return arr

    def scalar(self, name: str, pos: int):
        """One queue-position read without forcing a full gather —
        O(1) even on the first access of a deep queue."""
        arr = self._gathered.get(name)
        if arr is not None:
            return arr[pos]
        master = getattr(self.masters, name)
        if self._sel is None:
            return master[pos]
        return master[self.sel[pos]]


def queue_columns_from_jobs(jobs: Sequence["Job"]) -> QueueColumns:
    """Fallback projection for hand-built views: masters over exactly
    the queued jobs, identity selector."""
    return QueueColumns(JobColumns(jobs), None, len(jobs))


class ViewColumns:
    """The columnar surface of one :class:`SystemView`.

    Queue-order attribute columns (delegated to the underlying
    :class:`QueueColumns`, shared across unchanged-queue decisions)
    plus the view's capacity scalars and the vectorized per-decision
    predicates. One instance per view, cached on the view itself —
    repeated ``columns()`` calls return the same object, and derived
    masks are computed at most once per decision point.
    """

    __slots__ = ("_q", "_view", "_fits", "_eff_walltime", "_requeued")

    def __init__(self, queue_cols: QueueColumns, view: "SystemView") -> None:
        self._q = queue_cols
        self._view = view
        self._fits: Optional[np.ndarray] = None
        self._eff_walltime: Optional[np.ndarray] = None
        self._requeued: Optional[np.ndarray] = None

    # -- queue-order attribute columns ---------------------------------
    @property
    def n(self) -> int:
        return self._q.n

    @property
    def sel(self) -> np.ndarray:
        return self._q.sel

    @property
    def masters(self) -> JobColumns:
        """The shared per-run master arrays (workload order)."""
        return self._q.masters

    @property
    def ids(self) -> np.ndarray:
        return self._q.col("job_id")

    @property
    def nodes(self) -> np.ndarray:
        return self._q.col("nodes")

    @property
    def memory_gb(self) -> np.ndarray:
        return self._q.col("memory_gb")

    @property
    def walltime(self) -> np.ndarray:
        return self._q.col("walltime")

    @property
    def duration(self) -> np.ndarray:
        return self._q.col("duration")

    @property
    def submit_time(self) -> np.ndarray:
        return self._q.col("submit_time")

    @property
    def node_seconds(self) -> np.ndarray:
        return self._q.col("node_seconds")

    # -- capacity scalars/vectors --------------------------------------
    @property
    def free_nodes(self) -> int:
        return self._view.free_nodes

    @property
    def free_memory_gb(self) -> float:
        return self._view.free_memory_gb

    @property
    def domain_free_nodes(self) -> np.ndarray:
        """Free node count per rack as an int64 vector (empty for
        flat/absent topologies, like the view field it mirrors)."""
        return np.asarray(self._view.domain_free_nodes, dtype=np.int64)

    # -- O(1) scalar probes (no gather, no numpy boxing) ---------------
    # Single-position reads go through the view's queued tuple: the
    # engine materializes it for every view anyway, and its Python
    # scalars compare ~5× faster than boxed numpy scalars pulled out
    # of the masters. Identical values either way — the columns are
    # built from these very attributes.
    def id_at(self, pos: int) -> int:
        return self._view.queued[pos].job_id

    def fits_at(self, pos: int) -> bool:
        """``SystemView.can_fit`` for queue position *pos* — O(1),
        identical arithmetic."""
        view = self._view
        job = view.queued[pos]
        return (
            job.nodes <= view.free_nodes
            and job.memory_gb <= view.free_memory_gb + 1e-9
        )

    # -- vectorized predicates -----------------------------------------
    def fits_mask(self) -> np.ndarray:
        """Boolean mask of queued jobs that fit right now — the
        vectorized twin of ``can_fit`` (same ``+ 1e-9`` slack, same
        comparisons, elementwise)."""
        mask = self._fits
        if mask is None:
            view = self._view
            mask = (self.nodes <= view.free_nodes) & (
                self.memory_gb <= view.free_memory_gb + 1e-9
            )
            self._fits = mask
        return mask

    def effective_walltime_col(self) -> np.ndarray:
        """Per-job ``SystemView.effective_walltime`` as a column:
        requested walltime, tightened to the known remaining runtime
        for checkpoint-restarted jobs. The plain walltime column
        (no copy) when nothing was restarted."""
        col = self._eff_walltime
        if col is None:
            rem = self._view.remaining_runtimes
            if not rem:
                col = self.walltime
            else:
                col = self.walltime.copy()
                ids = self.ids
                for job_id, remaining in rem.items():
                    hit = ids == job_id
                    col[hit] = np.minimum(col[hit], remaining)
                col.setflags(write=False)
            self._eff_walltime = col
        return col

    def requeued_mask(self) -> np.ndarray:
        """Mask of queued jobs that were evicted and requeued (present
        in ``remaining_runtimes``) — the population the
        spread-across-domains restart gate applies to."""
        mask = self._requeued
        if mask is None:
            rem = self._view.remaining_runtimes
            ids = self.ids
            if not rem:
                mask = np.zeros(self.n, dtype=bool)
            else:
                mask = np.zeros(self.n, dtype=bool)
                for job_id in rem:
                    mask |= ids == job_id
            self._requeued = mask
        return mask

    def drain_safe_mask(self) -> np.ndarray:
        """Mask of queued jobs that are drain-safe right now.

        All-True with no announced drains (the vacuous fast path every
        undisrupted decision takes, allocation-free beyond one array).
        With drains pending, the per-job capacity test delegates to the
        scalar :meth:`SystemView.drain_safe` — drain decision points
        are rare and the peak-overlap window differs per job, so a
        faithful scalar loop beats a speculative vectorization here.
        """
        view = self._view
        if not view.upcoming_drains:
            return np.ones(self.n, dtype=bool)
        queued = view.queued
        return np.fromiter(
            (view.drain_safe(job) for job in queued),
            dtype=bool,
            count=self.n,
        )
