"""Scheduling action vocabulary.

The paper's agent chooses from four actions at every decision point
(§2.2): ``StartJob(job_id=X)``, ``BackfillJob(job_id=Y)``, ``Delay`` and
``Stop``. Every scheduler in this library — heuristics, the optimizer
and the LLM agent — speaks the same vocabulary, so the simulator has a
single execution/validation path.

``BackfillJob`` executes identically to ``StartJob`` (allocate now);
the distinct verb conveys *intent* (running a small job out of queue
order) and is preserved in decision records so overhead analysis can
restrict itself to accepted placements (paper §3.7.1) and backfill
behaviour can be studied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ActionKind(enum.Enum):
    """The verbs of the scheduling action space.

    The paper's agent uses four (§2.2); ``PREEMPT`` is the disruption
    subsystem's extension — voluntarily suspend a *running* job
    (checkpoint it cleanly and requeue it), the mechanism a
    recovery-aware policy uses to migrate work off nodes an announced
    maintenance drain is about to take.
    """

    START = "StartJob"
    BACKFILL = "BackfillJob"
    PREEMPT = "PreemptJob"
    DELAY = "Delay"
    STOP = "Stop"


@dataclass(frozen=True)
class Action:
    """A concrete scheduling action.

    ``job_id`` is required for START/BACKFILL/PREEMPT and must be
    ``None`` for DELAY/STOP.
    """

    kind: ActionKind
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind in (ActionKind.START, ActionKind.BACKFILL,
                         ActionKind.PREEMPT):
            if self.job_id is None:
                raise ValueError(f"{self.kind.value} requires a job_id")
        elif self.job_id is not None:
            raise ValueError(f"{self.kind.value} takes no job_id")

    @property
    def places_job(self) -> bool:
        """True for actions that allocate resources (start/backfill)."""
        return self.kind in (ActionKind.START, ActionKind.BACKFILL)

    def render(self) -> str:
        """Canonical textual form, e.g. ``StartJob(job_id=7)``."""
        if self.job_id is not None:
            return f"{self.kind.value}(job_id={self.job_id})"
        return self.kind.value

    def __str__(self) -> str:
        return self.render()


def StartJob(job_id: int) -> Action:
    """Start job *job_id* immediately."""
    return Action(ActionKind.START, job_id)


def BackfillJob(job_id: int) -> Action:
    """Opportunistically run the (smaller) job *job_id* ahead of queue order."""
    return Action(ActionKind.BACKFILL, job_id)


def PreemptJob(job_id: int) -> Action:
    """Gracefully suspend the *running* job *job_id*: checkpoint it at
    the current instant and return it to the queue (no work is lost).
    Only meaningful under the disruption subsystem; models
    suspend/migrate ahead of an announced drain."""
    return Action(ActionKind.PREEMPT, job_id)


#: Wait; defer action until conditions change (next event).
Delay = Action(ActionKind.DELAY)

#: End the scheduling process (only legal once all jobs are scheduled).
Stop = Action(ActionKind.STOP)
