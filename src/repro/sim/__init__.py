"""Discrete event HPC cluster simulator.

This subpackage is the substrate the paper's ReAct scheduling agent runs
against (paper §2, §3.1): an event-driven model of a shared HPC partition
that owns the global simulation clock, injects job arrivals, tracks
running jobs, releases resources on completion, validates every proposed
scheduling action, and advances time only at discrete events (arrivals
and completions).

Public surface
--------------
:class:`~repro.sim.job.Job`
    Immutable job description (submit time, duration, walltime, nodes,
    memory, user/group metadata).
:class:`~repro.sim.cluster.ResourcePool`
    Aggregate node/memory accounting with first-fit feasibility, the
    model the paper uses (256 nodes / 2048 GB partition).
:class:`~repro.sim.cluster.NodeLevelCluster`
    Optional finer-grained per-node model (first-fit over a node list).
:class:`~repro.sim.simulator.HPCSimulator`
    The discrete event engine: ties a workload, a cluster model and a
    scheduler together and produces a :class:`~repro.sim.schedule.ScheduleResult`.
:mod:`~repro.sim.actions`
    The action vocabulary shared by every scheduler
    (``StartJob`` / ``BackfillJob`` / ``PreemptJob`` / ``Delay`` /
    ``Stop``).
:class:`~repro.sim.constraints.ConstraintChecker`
    Structured feasibility validation; the natural-language rendering
    used for LLM feedback lives in :mod:`repro.core.constraints`.
:mod:`~repro.sim.disruptions`
    The fault & disruption subsystem: seeded node-failure traces,
    correlated domain shocks, maintenance drain windows, restart
    policies (resubmit/checkpoint/preempt-migrate), and the preemption
    records the reliability metrics consume. An empty
    :class:`~repro.sim.disruptions.DisruptionTrace` leaves the engine
    byte-identical to the undisrupted code path.
:class:`~repro.sim.topology.ClusterTopology`
    Node → rack → switch-group hierarchy: the failure domains the
    correlated generators strike, domain-scoped drains take, and
    spread placement balances. The flat default (one domain) is
    behaviourally invisible.
"""

from repro.sim.actions import (
    Action,
    ActionKind,
    BackfillJob,
    Delay,
    PreemptJob,
    StartJob,
    Stop,
)
from repro.sim.cluster import ClusterModel, NodeLevelCluster, ResourcePool
from repro.sim.constraints import ConstraintChecker, Violation, ViolationKind
from repro.sim.disruptions import (
    DISRUPTION_PRESETS,
    DisruptionSpec,
    DisruptionTrace,
    DomainFailure,
    DrainWindow,
    NodeFailure,
    PreemptionRecord,
    RESTART_POLICIES,
    correlated_failures,
    exponential_failures,
    periodic_drains,
    weibull_failures,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.topology import ClusterTopology, topology_signature
from repro.sim.job import Job, JobState
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult
from repro.sim.simulator import HPCSimulator, SystemView

__all__ = [
    "Action",
    "ActionKind",
    "BackfillJob",
    "ClusterModel",
    "ConstraintChecker",
    "DISRUPTION_PRESETS",
    "ClusterTopology",
    "DecisionRecord",
    "Delay",
    "DisruptionSpec",
    "DisruptionTrace",
    "DomainFailure",
    "DrainWindow",
    "Event",
    "EventKind",
    "EventQueue",
    "HPCSimulator",
    "Job",
    "JobRecord",
    "JobState",
    "NodeFailure",
    "NodeLevelCluster",
    "PreemptJob",
    "PreemptionRecord",
    "RESTART_POLICIES",
    "ResourcePool",
    "ScheduleResult",
    "StartJob",
    "Stop",
    "SystemView",
    "Violation",
    "ViolationKind",
    "correlated_failures",
    "exponential_failures",
    "periodic_drains",
    "topology_signature",
    "weibull_failures",
]
