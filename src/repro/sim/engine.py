"""Structure-of-arrays simulator core.

This is the flat-array rebuild of :meth:`HPCSimulator.run`'s hot loop —
the same treatment ``ResourceProfile`` received in the incremental
packing kernel. Job lifecycle state lives in flat preallocated arrays
indexed by workload position, the event stream is an
:class:`~repro.sim.events.ArrayCalendar` (pre-sorted static lane +
primitive-tuple completion lane, no per-event objects), and the
running-set indexes (walltime expiry, next completion) are flat sorted
arrays with in-place shift maintenance. Queue membership is a state
code array plus an order array with vectorized purge/compaction, so
requeue bookkeeping after kills is a masked copy instead of a Python
list rebuild.

**Byte-identity is the contract.** Every observable of a run — job
records, decision stream, preemption records, view contents handed to
schedulers — is bit-for-bit identical to the object engine's: the loop
below is a line-by-line translation that changes data layout, never
semantics or float arithmetic. ``tests/test_soa_regression.py`` pins
this on seeded scenarios including disrupted, correlated, windowed,
walltime-enforced, and dependency workloads; the digest suites from
earlier PRs run through this engine by default, pinning it transitively
to digests generated before it existed.

:class:`~repro.sim.simulator.SystemView` (and ``Job``/``RunningJob`` at
the API boundary) stay untouched facades: schedulers, disruption
generators, and metrics modules cannot tell the engines apart. What the
layout buys on top of the object loop:

* no ``Event`` allocation or heap traffic for the (large, static)
  arrival + disruption schedule — popped off sorted arrays by cursor;
* O(1) next-completion lookup per view instead of an O(running) scan;
* the queued-jobs tuple (and its id index) is cached across decision
  points and rebuilt only when the queue actually changes — completions
  and time advances on a deep backlog no longer pay O(queue) each;
* kills purge/requeue through masked array ops.
"""

from __future__ import annotations

import dataclasses
import math
from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.actions import ActionKind
from repro.sim.columns import JobColumns, QueueColumns, ViewColumns
from repro.sim.constraints import ConstraintChecker
from repro.sim.disruptions import DrainWindow, PreemptionRecord
from repro.sim.events import ArrayCalendar, EventKind
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult
from repro.sim.simulator import (
    _NO_REMAINING,
    CompletedLog,
    RunningJob,
    SimulationError,
    SystemView,
)
from repro.sim.topology import ClusterTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HPCSimulator

#: Job lifecycle codes for the flat state array.
_PENDING, _QUEUED, _RUNNING, _COMPLETED, _BLOCKED = 0, 1, 2, 3, 4

#: ``SystemView`` field layout the fast view constructor in
#: :func:`run_soa` writes directly (init fields in declaration order,
#: then the three lazy caches). Guarded at import so a field added to
#: the dataclass cannot silently desynchronize the hot path.
_VIEW_FIELDS = (
    "now",
    "queued",
    "running",
    "completed_ids",
    "free_nodes",
    "free_memory_gb",
    "total_nodes",
    "total_memory_gb",
    "pending_arrivals",
    "next_arrival_time",
    "next_completion_time",
    "blocked_jobs",
    "nodes_offline",
    "upcoming_drains",
    "remaining_runtimes",
    "topology",
    "domain_free_nodes",
    "_queued_index",
    "_running_sorted",
    "_columns",
)
if tuple(f.name for f in dataclasses.fields(SystemView)) != _VIEW_FIELDS:
    raise AssertionError(
        "SystemView fields changed; update run_soa's fast view "
        "constructor to match"
    )
if tuple(f.name for f in dataclasses.fields(RunningJob)) != (
    "job",
    "start_time",
    "runtime",
):
    raise AssertionError(
        "RunningJob fields changed; update run_soa's fast constructor "
        "in start_running to match"
    )


class QueueChurnCrossover:
    """Adaptive scalar/vector crossover for queue-snapshot rebuilds.

    ``build_view`` filters the order array down to live queue entries
    either with a Python loop (cheap on short, mostly-live scans) or a
    vectorized mask (cheap on long or stale-heavy scans). The old fixed
    64-entry crossover priced only *length*; under bursty churn — kills
    and requeues leaving many stale placed ids between compactions —
    the scalar loop wastes Python-level work on entries numpy would
    mask in bulk, so the crossover should drop.

    This helper tracks an EWMA of the observed stale fraction per
    rebuild and lowers the threshold linearly from :data:`BASE`
    (all-live queues, the old constant) to :data:`FLOOR` (fully stale
    scans). Both paths produce identical snapshots and apply the same
    compaction rule, so the tuning affects constant factors only —
    never an observable.
    """

    BASE = 64
    FLOOR = 16
    #: EWMA smoothing: one burst moves the threshold a quarter of the
    #: way; sustained churn converges within a handful of rebuilds.
    ALPHA = 0.25

    __slots__ = ("threshold", "_stale_ewma")

    def __init__(self) -> None:
        self.threshold: float = float(self.BASE)
        self._stale_ewma = 0.0

    def observe(self, scanned: int, live: int) -> None:
        """Record one rebuild that scanned *scanned* order entries and
        found *live* of them queued; retune the threshold."""
        if scanned <= 0:
            return
        stale = 1.0 - live / scanned
        self._stale_ewma += self.ALPHA * (stale - self._stale_ewma)
        self.threshold = self.BASE - (self.BASE - self.FLOOR) * self._stale_ewma


class _SortedIndex:
    """Flat-array sorted multiset of ``(key, seq) -> id`` rows.

    The running-set indexes (walltime-expiry order, expected-end order)
    are maintained with bisect + in-place slice shifts over
    preallocated primitive arrays (``array('d')``/``array('q')``) —
    the ``ResourceProfile`` treatment, minus numpy: the running set is
    small, element access is always scalar, and stdlib arrays hand back
    plain Python floats/ints with none of the numpy boxing cost that
    dominated the first cut of this index. ``seq`` (the monotone
    placement counter) breaks key ties exactly like the object engine's
    stable tuples.
    """

    __slots__ = ("_keys", "_seqs", "_ids", "_n")

    def __init__(self, capacity: int = 64) -> None:
        self._keys = array("d", bytes(8 * capacity))
        self._seqs = array("q", bytes(8 * capacity))
        self._ids = array("q", bytes(8 * capacity))
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _grow(self) -> None:
        for name in ("_keys", "_seqs", "_ids"):
            old = getattr(self, name)
            old.frombytes(bytes(old.itemsize * len(old)))

    def _position(self, key: float, seq: int) -> int:
        n = self._n
        keys = self._keys
        pos = bisect_left(keys, key, 0, n)
        while pos < n and keys[pos] == key and self._seqs[pos] < seq:
            pos += 1
        return pos

    def insert(self, key: float, seq: int, ident: int) -> None:
        if self._n == len(self._keys):
            self._grow()
        pos, n = self._position(key, seq), self._n
        if pos != n:
            self._keys[pos + 1 : n + 1] = self._keys[pos:n]
            self._seqs[pos + 1 : n + 1] = self._seqs[pos:n]
            self._ids[pos + 1 : n + 1] = self._ids[pos:n]
        self._keys[pos] = key
        self._seqs[pos] = seq
        self._ids[pos] = ident
        self._n = n + 1

    def remove(self, key: float, seq: int) -> None:
        pos, n = self._position(key, seq), self._n
        if pos != n - 1:
            self._keys[pos : n - 1] = self._keys[pos + 1 : n]
            self._seqs[pos : n - 1] = self._seqs[pos + 1 : n]
            self._ids[pos : n - 1] = self._ids[pos + 1 : n]
        self._n = n - 1

    def min_key(self) -> float:
        return self._keys[0]

    def ids(self) -> list[int]:
        """Row ids in sorted (key, seq) order."""
        return self._ids[: self._n].tolist()


class _QueueMap:
    """Read-only dict facade over the flat queue state, for
    :class:`~repro.sim.constraints.ConstraintChecker` (which only ever
    calls ``.get``/``in``/``len``)."""

    __slots__ = ("_get", "_len")

    def __init__(self, get, length) -> None:
        self._get = get
        self._len = length

    def get(self, key, default=None):
        return self._get(key, default)

    def __contains__(self, key) -> bool:
        return self._get(key, None) is not None

    def __len__(self) -> int:
        return self._len()

    def __bool__(self) -> bool:
        return self._len() > 0


def run_soa(
    sim: "HPCSimulator",
    calendar: Optional[ArrayCalendar] = None,
) -> ScheduleResult:
    """Execute *sim* on the structure-of-arrays core.

    Semantically a line-by-line translation of the object engine
    (``HPCSimulator._run_object``); see the module docstring for what
    may differ (data layout) and what must not (everything observable).

    *calendar*, when given, must be a sealed, unconsumed
    :class:`~repro.sim.events.ArrayCalendar` holding exactly the
    static events this function would otherwise build — one ARRIVAL
    per job in workload order (payload = workload index), then the
    disruption events. The service's session engine maintains such a
    calendar incrementally (streamed arrivals appended to the sealed
    lane) and passes a fork per replay; because the extend path
    assigns sequence numbers exactly like a batch build, the run is
    byte-identical to one over a calendar built here.
    """
    checker = ConstraintChecker()
    scheduler = sim.scheduler
    cluster = sim.cluster
    jobs = sim.jobs
    n_jobs = len(jobs)
    idx_of = {job.job_id: i for i, job in enumerate(jobs)}

    # -- flat job-state array -------------------------------------------
    # One lifecycle code per workload position. A bytearray, not a
    # numpy array: every hot access is a scalar read/write (plain
    # Python ints, no numpy boxing), while the vectorized paths go
    # through a zero-copy int8 view of the same buffer.
    state = bytearray(n_jobs)  # zero-filled == _PENDING
    state_np = np.frombuffer(state, dtype=np.int8)

    # -- event calendar -------------------------------------------------
    # Static adds replay the object engine's push order exactly, so the
    # sequence numbers — the tie-break of last resort — are identical.
    trace = sim.disruptions if sim.disruptions else None
    disrupted = trace is not None
    if calendar is not None:
        expected = n_jobs
        if trace is not None:
            expected += 2 * len(trace.failures)
            expected += 2 * len(trace.domain_failures)
            for drain in trace.drains:
                expected += 3 if drain.announce_time < drain.start else 2
        if len(calendar) != expected:
            raise ValueError(
                f"prebuilt calendar holds {len(calendar)} pending "
                f"event(s); this simulation needs exactly {expected} "
                "(one ARRIVAL per job plus the disruption schedule)"
            )
        cal = calendar
    else:
        cal = ArrayCalendar()
        for i, job in enumerate(jobs):
            cal.add_static(job.submit_time, EventKind.ARRIVAL, i)
        if trace is not None:
            for idx, failure in enumerate(trace.failures):
                cal.add_static(failure.time, EventKind.NODE_FAILURE, idx)
                cal.add_static(
                    failure.repair_time, EventKind.NODE_REPAIR, idx
                )
            for idx, shock in enumerate(trace.domain_failures):
                cal.add_static(shock.time, EventKind.DOMAIN_FAILURE, idx)
                cal.add_static(shock.repair_time, EventKind.DOMAIN_REPAIR, idx)
            for idx, drain in enumerate(trace.drains):
                if drain.announce_time < drain.start:
                    cal.add_static(
                        drain.announce_time, EventKind.DRAIN_ANNOUNCE, idx
                    )
                cal.add_static(drain.start, EventKind.DRAIN_START, idx)
                cal.add_static(drain.end, EventKind.DRAIN_END, idx)
        cal.seal()

    # Hoisted event-kind codes (popped events carry plain ints).
    K_COMPLETION = int(EventKind.COMPLETION)
    K_NODE_FAILURE = int(EventKind.NODE_FAILURE)
    K_NODE_REPAIR = int(EventKind.NODE_REPAIR)
    K_DOMAIN_FAILURE = int(EventKind.DOMAIN_FAILURE)
    K_DOMAIN_REPAIR = int(EventKind.DOMAIN_REPAIR)
    K_DRAIN_START = int(EventKind.DRAIN_START)
    K_DRAIN_END = int(EventKind.DRAIN_END)
    K_ARRIVAL = int(EventKind.ARRIVAL)

    # -- queue (order array + state codes) ------------------------------
    order = np.empty(max(n_jobs, 16), dtype=np.int64)
    order_len = 0
    n_queued = 0
    n_blocked = 0

    running_objs: dict[int, RunningJob] = {}
    records: list[JobRecord] = []
    decisions: list[DecisionRecord] = []
    pending_arrivals = n_jobs
    completed_ids: list[int] = []
    completed_set: set[int] = set()
    dependents: dict[int, list[int]] = {}
    for job in jobs:
        for dep in job.depends_on:
            dependents.setdefault(dep, []).append(job.job_id)
    stopped = False
    final_stop_asked = False
    decision_budget = (
        sim.max_decisions
        if sim.max_decisions is not None
        else 200 * n_jobs
        + 1000
        + 20 * (trace.n_events if trace is not None else 0)
    )

    # -- disruption bookkeeping (sparse: plain dicts/sets) --------------
    remaining: dict[int, float] = {}
    preemptions: list[PreemptionRecord] = []
    pending_restart: dict[int, int] = {}
    effective_failures: set[int] = set()
    domain_offline: dict[int, list[int]] = {}
    failed_down_nodes: set[int] = set()
    domain_kills: dict[str, int] = {}
    last_announce = -math.inf
    n_kills = {"failure": 0, "drain": 0, "preempt": 0}
    announce_pending = False

    # -- running-set sorted indexes (flat arrays) -----------------------
    wt_index = _SortedIndex()  # (start + walltime, seq) -> job_id
    end_index = _SortedIndex()  # (expected_end, seq) -> job_id
    place_seq = 0
    #: job_id -> (placement seq, walltime key, expected end) of the
    #: current attempt; keeps the drop path and the stale-completion
    #: check off the RunningJob property chain.
    run_info: dict[int, tuple[int, float, float]] = {}

    # -- snapshots (copy-on-write, invalidated independently) -----------
    view_cache: Optional[SystemView] = None
    prev_view: Optional[SystemView] = None
    running_snapshot: Optional[tuple[RunningJob, ...]] = None
    running_sorted_snapshot: Optional[tuple[RunningJob, ...]] = None
    queued_snapshot: Optional[tuple] = None

    # -- columnar projection (shares the queued_snapshot cadence) -------
    #: Per-run master columns, built once on first columnar access; the
    #: selector-based queue projection over them is invalidated exactly
    #: where queued_snapshot is, so facade tuple and columns can never
    #: disagree about what is queued.
    job_columns: Optional[JobColumns] = None

    def get_masters() -> JobColumns:
        nonlocal job_columns
        if job_columns is None:
            job_columns = JobColumns(jobs)
        return job_columns

    queue_cols: Optional[QueueColumns] = None
    crossover = QueueChurnCrossover()

    # Static per-run cluster facts, hoisted off the per-decision path.
    topo: Optional[ClusterTopology] = getattr(cluster, "topology", None)
    has_domains = topo is not None and not topo.is_flat
    has_drain_windows = trace is not None and bool(trace.drains)
    has_offline_attr = hasattr(cluster, "offline_nodes")

    # One CompletedLog per completion-log length, not per view: the
    # log is append-only, so equal length means identical snapshot.
    completed_log = CompletedLog(completed_ids)

    if hasattr(cluster, "reset"):
        cluster.reset()
    scheduler.reset()

    now = 0.0
    if jobs:
        now = min(now, jobs[0].submit_time)

    def deps_met(job) -> bool:
        return all(dep in completed_set for dep in job.depends_on)

    def queued_get(job_id, default=None):
        i = idx_of.get(job_id)
        if i is None or state[i] != _QUEUED:
            return default
        return jobs[i]

    queued_map = _QueueMap(queued_get, lambda: n_queued)

    def q_append(i: int) -> None:
        nonlocal order, order_len
        if order_len == order.size:
            grown = np.empty(order.size * 2, dtype=np.int64)
            grown[:order_len] = order[:order_len]
            order = grown
        order[order_len] = i
        order_len += 1

    def invalidate_view() -> None:
        nonlocal view_cache
        view_cache = None

    def enqueue(i: int) -> None:
        nonlocal n_queued, queued_snapshot, queue_cols
        state[i] = _QUEUED
        n_queued += 1
        q_append(i)
        queued_snapshot = None
        queue_cols = None

    def start_running(i: int, start: float) -> None:
        """Allocate job index *i* and schedule its completion."""
        nonlocal place_seq
        nonlocal view_cache, running_snapshot, running_sorted_snapshot
        view_cache = None
        running_snapshot = None
        running_sorted_snapshot = None
        job = jobs[i]
        cluster.allocate(job)
        full = remaining.get(job.job_id, job.duration)
        runtime = min(full, job.walltime) if sim.enforce_walltime else full
        # Fast construction (cf. the view fast path): runtime is always
        # resolved here, so the frozen __init__ + __post_init__ dance
        # is three guarded setattrs for nothing.
        run = RunningJob.__new__(RunningJob)
        run.__dict__.update(
            {"job": job, "start_time": start, "runtime": runtime}
        )
        running_objs[job.job_id] = run
        wt_key = start + job.walltime
        wt_index.insert(wt_key, place_seq, job.job_id)
        expected_end = start + runtime
        end_index.insert(expected_end, place_seq, job.job_id)
        run_info[job.job_id] = (place_seq, wt_key, expected_end)
        place_seq += 1
        if job.job_id in pending_restart:
            preemptions[pending_restart.pop(job.job_id)].restart_time = start
        cal.push(expected_end, EventKind.COMPLETION, i)

    def drop_running(job_id: int) -> RunningJob:
        """Remove a job from the running set and both sorted indexes."""
        nonlocal view_cache, running_snapshot, running_sorted_snapshot
        view_cache = None
        running_snapshot = None
        running_sorted_snapshot = None
        run = running_objs.pop(job_id)
        seq, wt_key, end_key = run_info.pop(job_id)
        wt_index.remove(wt_key, seq)
        end_index.remove(end_key, seq)
        cluster.release(job_id)
        return run

    def kill_running(
        job_id: int,
        time: float,
        reason: str,
        domain: Optional[str] = None,
    ) -> None:
        """Evict a running job and requeue it under the restart policy
        (see the object engine for the full semantics — identical)."""
        nonlocal stopped, final_stop_asked, decision_budget
        nonlocal order_len, n_queued, queued_snapshot
        if sim.max_decisions is None and reason != "preempt":
            decision_budget += 8
        run = drop_running(job_id)
        elapsed = time - run.start_time
        prior = remaining.get(job_id, run.job.duration)
        if reason == "preempt":
            saved = elapsed
        elif sim.restart_policy == "resubmit":
            saved = 0.0
        else:  # checkpoint / preempt_migrate
            interval = sim.checkpoint_interval
            saved = (
                math.floor(elapsed / interval) * interval if interval else 0.0
            )
            if (
                sim.restart_policy == "preempt_migrate"
                and last_announce >= run.start_time
            ):
                saved = max(saved, last_announce - run.start_time)
            saved = min(saved, elapsed)
        remaining[job_id] = prior - saved
        i = idx_of[job_id]
        # Vectorized purge of the job's stale order entry (placed ids
        # linger until compaction; a duplicate would show the requeued
        # job twice in every view's queue).
        live = order[:order_len]
        keep = live != i
        if not keep.all():
            kept = live[keep]
            order[: kept.size] = kept
            order_len = int(kept.size)
        enqueue(i)
        stopped = False
        final_stop_asked = False
        n_kills[reason] += 1
        if domain is not None:
            domain_kills[domain] = domain_kills.get(domain, 0) + 1
        pending_restart[job_id] = len(preemptions)
        preemptions.append(
            PreemptionRecord(
                job_id=job_id,
                nodes=run.job.nodes,
                start_time=run.start_time,
                time=time,
                reason=reason,
                work_saved=saved,
                work_lost=elapsed - saved,
                domain=domain,
            )
        )
        # The killed attempt's COMPLETION event stays in the calendar;
        # the completion handler drops it as stale (mismatched
        # expected end).

    def apply_drain_start(idx: int) -> None:
        drain = trace.drains[idx]
        tag = f"drain:{idx}"
        within: Optional[range] = None
        topo = getattr(cluster, "topology", None)
        if drain.domain is not None and topo is not None:
            within = topo.domain_range(drain.domain)
        taken = 0
        target = min(drain.nodes, cluster.total_nodes)
        if within is not None:
            target = min(target, len(within))
        while taken < target:
            if cluster.drain_take_idle(tag, within):
                taken += 1
                continue
            victim = cluster.drain_victim(within)
            if victim is None:
                break  # nothing left to take; partial drain
            kill_running(victim, drain.start, "drain", drain.domain)
        invalidate_view()

    pop_due = cal.pop_due

    def process_events_at(time: float) -> None:
        nonlocal pending_arrivals, last_announce, announce_pending
        nonlocal n_queued, n_blocked, queued_snapshot, view_cache
        while True:
            event = pop_due(time)
            if event is None:
                return
            event_time, kind, payload = event
            view_cache = None
            if kind == K_COMPLETION:
                job = jobs[payload]
                job_id = job.job_id
                run = running_objs.get(job_id)
                if run is None or run_info[job_id][2] != event_time:
                    # Stale: this attempt was killed by a
                    # failure/drain/preemption.
                    continue
                drop_running(job_id)
                state[payload] = _COMPLETED
                full = remaining.pop(job_id, job.duration)
                records.append(
                    JobRecord(
                        job,
                        run.start_time,
                        event_time,
                        killed=run.runtime < full,
                    )
                )
                completed_ids.append(job_id)
                completed_set.add(job_id)
                for dep_id in dependents.get(job_id, ()):
                    j = idx_of[dep_id]
                    if state[j] == _BLOCKED and deps_met(jobs[j]):
                        n_blocked -= 1
                        enqueue(j)
            elif kind == K_ARRIVAL:
                pending_arrivals -= 1
                if deps_met(jobs[payload]):
                    enqueue(payload)
                else:
                    state[payload] = _BLOCKED
                    n_blocked += 1
            elif kind == K_NODE_FAILURE:
                failure = trace.failures[payload]
                if failure.node not in failed_down_nodes:
                    victim = cluster.slot_victim(failure.node)
                    if victim is not None:
                        kill_running(victim, event_time, "failure")
                    if cluster.mark_failed(failure.node):
                        effective_failures.add(payload)
                        failed_down_nodes.add(failure.node)
            elif kind == K_NODE_REPAIR:
                if payload in effective_failures:
                    effective_failures.discard(payload)
                    node = trace.failures[payload].node
                    failed_down_nodes.discard(node)
                    cluster.mark_repaired(node)
            elif kind == K_DOMAIN_FAILURE:
                shock = trace.domain_failures[payload]
                fresh = [
                    node
                    for node in shock.nodes
                    if node not in failed_down_nodes
                ]
                victims: list[int] = []
                seen_victims: set[int] = set()
                for node in fresh:
                    victim = cluster.slot_victim(node)
                    if victim is not None and victim not in seen_victims:
                        seen_victims.add(victim)
                        victims.append(victim)
                for victim in victims:
                    kill_running(victim, event_time, "failure", shock.domain)
                taken = [
                    node for node in fresh if cluster.mark_failed(node)
                ]
                if taken:
                    domain_offline[payload] = taken
                    failed_down_nodes.update(taken)
            elif kind == K_DOMAIN_REPAIR:
                for node in domain_offline.pop(payload, ()):
                    failed_down_nodes.discard(node)
                    cluster.mark_repaired(node)
            elif kind == K_DRAIN_START:
                apply_drain_start(payload)
            elif kind == K_DRAIN_END:
                cluster.drain_release(f"drain:{payload}")
            else:  # DRAIN_ANNOUNCE
                last_announce = event_time
                announce_pending = True

    def build_view() -> SystemView:
        nonlocal view_cache, prev_view, running_snapshot
        nonlocal running_sorted_snapshot, queued_snapshot, order_len
        nonlocal queue_cols, completed_log
        if view_cache is not None:
            return view_cache
        next_arrival: Optional[float] = None
        next_completion: Optional[float] = None
        if pending_arrivals:
            # Same float the submit array holds; skipping the numpy
            # round-trip matters at one call per decision point.
            next_arrival = jobs[n_jobs - pending_arrivals].submit_time
        if running_objs:
            next_completion = end_index.min_key()
        reused_queue = queued_snapshot is not None
        if not reused_queue:
            if order_len <= crossover.threshold:
                # Scalar path: on a short queue (the steady-state
                # regime) vectorized masking costs more in numpy
                # dispatch than it saves. The crossover adapts to the
                # observed churn rate (see QueueChurnCrossover).
                live_l = [
                    i
                    for i in order[:order_len].tolist()
                    if state[i] == _QUEUED
                ]
                crossover.observe(order_len, len(live_l))
                if order_len > 2 * len(live_l) + 8:
                    order[: len(live_l)] = live_l
                    order_len = len(live_l)
                queued_snapshot = tuple(map(jobs.__getitem__, live_l))
                queue_cols = QueueColumns(
                    get_masters, live_l, len(live_l)
                )
            else:
                live = order[:order_len]
                live = live[state_np[live] == _QUEUED]
                crossover.observe(order_len, live.size)
                if order_len > 2 * live.size + 8:
                    order[: live.size] = live
                    order_len = int(live.size)
                queued_snapshot = tuple(map(jobs.__getitem__, live.tolist()))
                # `live` is a fresh boolean-index copy, never a view of
                # the order array — safe to hold as the selector.
                queue_cols = QueueColumns(get_masters, live, int(live.size))
        if running_snapshot is None:
            running_snapshot = tuple(running_objs.values())
            running_sorted_snapshot = tuple(
                map(running_objs.__getitem__, wt_index.ids())
            )
        drains: tuple[DrainWindow, ...] = ()
        if has_drain_windows:
            drains = tuple(
                d for d in trace.drains if d.announce_time <= now < d.end
            )
        domain_free: tuple[int, ...] = ()
        if has_domains:
            domain_free = tuple(cluster.domain_free_nodes())
        # Fast construction: write the instance dict directly instead
        # of going through the frozen dataclass __init__ (17 guarded
        # object.__setattr__ calls per decision point). The field
        # layout is pinned against the dataclass by the import-time
        # _VIEW_FIELDS check.
        if len(completed_log) != len(completed_ids):
            completed_log = CompletedLog(completed_ids)
        view = SystemView.__new__(SystemView)
        view.__dict__.update({
            "now": now,
            "queued": queued_snapshot,
            "running": running_snapshot,
            "completed_ids": completed_log,
            "free_nodes": cluster.free_nodes,
            "free_memory_gb": cluster.free_memory_gb,
            "total_nodes": cluster.total_nodes,
            "total_memory_gb": cluster.total_memory_gb,
            "pending_arrivals": pending_arrivals,
            "next_arrival_time": next_arrival,
            "next_completion_time": next_completion,
            "blocked_jobs": n_blocked,
            "nodes_offline": (
                cluster.offline_nodes if has_offline_attr else 0
            ),
            "upcoming_drains": drains,
            "remaining_runtimes": (
                dict(remaining) if remaining else _NO_REMAINING
            ),
            "topology": topo,
            "domain_free_nodes": domain_free,
            "_queued_index": None,
            "_running_sorted": running_sorted_snapshot,
            # Zero-copy columnar projection: shared masters, selector
            # gathered at most once per queue change.
            "_columns": None,
        })
        if queue_cols is not None:
            view.__dict__["_columns"] = ViewColumns(queue_cols, view)
        view_cache = view
        # Unchanged queue: carry the previous view's lazily-built id
        # index forward so optimizer-style schedulers don't rebuild an
        # O(queue) dict at every decision point of a stable backlog.
        if (
            reused_queue
            and prev_view is not None
            and prev_view.queued is queued_snapshot
            and prev_view._queued_index is not None
        ):
            view.__dict__["_queued_index"] = prev_view._queued_index
        prev_view = view_cache
        return view_cache

    while True:
        process_events_at(now)

        # Announce-time reactive decision (see the object engine).
        if (
            announce_pending
            and running_objs
            and not n_queued
            and not stopped
            and len(decisions) < decision_budget
        ):
            view = build_view()
            action = scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued_map,
                cluster=cluster,
                all_scheduled=view.all_jobs_scheduled,
                running=running_objs,
            )
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    meta=dict(scheduler.decision_meta()),
                )
            )
            if not result.ok:
                scheduler.on_rejection(action, result.violations, view)
            elif action.kind is ActionKind.PREEMPT:
                kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
            elif action.kind is ActionKind.STOP:
                stopped = True
        announce_pending = False

        # Decision phase: keep querying while jobs are queued and the
        # scheduler keeps placing them (within the same timestep).
        retries = 0
        while n_queued and not stopped:
            if len(decisions) >= decision_budget:
                raise SimulationError(
                    f"decision budget exhausted ({decision_budget}); "
                    f"scheduler {scheduler.name!r} appears stuck"
                )
            view = build_view()
            action = scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued_map,
                cluster=cluster,
                all_scheduled=view.all_jobs_scheduled,
                running=running_objs,
            )
            meta = dict(scheduler.decision_meta())
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    retry_index=retries,
                    meta=meta,
                )
            )
            if not result.ok:
                scheduler.on_rejection(action, result.violations, view)
                retries += 1
                if retries > sim.max_retries:
                    break  # force a delay
                continue

            retries = 0
            if action.kind is ActionKind.DELAY:
                break
            if action.kind is ActionKind.STOP:
                stopped = True
                break
            if action.kind is ActionKind.PREEMPT:
                kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
                continue
            # StartJob / BackfillJob
            i = idx_of[action.job_id]  # type: ignore[index]
            state[i] = _RUNNING
            n_queued -= 1
            queued_snapshot = None
            queue_cols = None
            start_running(i, now)  # invalidates the view cache

        # Closing-Stop query for narrate-stop agents.
        if (
            not n_queued
            and not n_blocked
            and pending_arrivals == 0
            and not stopped
            and not final_stop_asked
            and getattr(scheduler, "emits_stop", False)
        ):
            final_stop_asked = True
            view = build_view()
            action = scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued_map,
                cluster=cluster,
                all_scheduled=True,
            )
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    meta=dict(scheduler.decision_meta()),
                )
            )
            if result.ok and action.kind is ActionKind.STOP:
                stopped = True

        # Termination / time advance.
        if (
            not n_queued
            and not running_objs
            and not n_blocked
            and pending_arrivals == 0
        ):
            break
        if (
            n_blocked
            and not n_queued
            and not running_objs
            and pending_arrivals == 0
        ):
            raise SimulationError(
                f"{n_blocked} jobs blocked on dependencies with "
                "nothing running — dependency graph is inconsistent"
            )
        if stopped and not running_objs and pending_arrivals == 0 and n_queued:
            raise SimulationError("stopped with jobs still queued")
        next_time = cal.peek_time()
        if next_time is None:
            if n_queued and not stopped:
                raise SimulationError(
                    f"deadlock at t={now}: {n_queued} jobs queued, "
                    "no running jobs, no pending arrivals, and the "
                    f"scheduler {scheduler.name!r} keeps delaying"
                )
            break
        if next_time > now:
            view_cache = None  # views carry `now`
            now = next_time

    result = ScheduleResult(
        records=records,
        decisions=decisions,
        total_nodes=cluster.total_nodes,
        total_memory_gb=cluster.total_memory_gb,
        scheduler_name=scheduler.name,
        preemptions=preemptions,
        disrupted=disrupted,
    )
    if disrupted:
        result.extras["disruption_kills"] = dict(n_kills)
        n_domain_events = len(trace.domain_failures) + sum(
            1 for d in trace.drains if d.domain is not None
        )
        if n_domain_events:
            result.extras["domain_events"] = n_domain_events
            result.extras["domain_kills"] = dict(sorted(domain_kills.items()))
    collect = getattr(scheduler, "collect_extras", None)
    if collect is not None:
        result.extras.update(collect())
    return result
