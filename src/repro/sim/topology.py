"""Cluster topology: nodes → racks → switch groups.

The paper's cluster model abstracts topology away (§3.1) — and for the
baseline scheduling comparison that is right. Failures do not respect
that abstraction: real HPC outages take out whole racks (a PDU trips),
or every rack behind one switch (ScalienDB's postmortem in PAPERS.md is
the canonical story of correlated, domain-level faults being what
actually breaks systems). :class:`ClusterTopology` supplies the minimal
hierarchy the disruption subsystem needs to model that — a static
partition of the node index space into contiguous racks, grouped into
contiguous switch groups.

Design constraints:

* **Plain data.** A topology is a frozen dataclass of three ints. It is
  hashable, picklable, and cheap to ship to matrix worker processes;
  the trace a correlated-failure generator builds from it depends only
  on (topology, spec, horizon) — never on which worker runs the cell.
* **The flat default is invisible.** ``ClusterTopology.flat(n)`` is one
  rack spanning the machine; every cluster model defaults to it, and
  every topology-aware code path (domain capacity views, spread
  placement, correlated generators) is gated on ``is_flat`` so existing
  configs and zero-correlation runs take byte-identical code paths.
* **Domains are contiguous node blocks.** ``rack_of`` is integer
  division, domain membership is a ``range`` — no per-node tables, so
  a 100k-node topology costs the same three ints as a 256-node one.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Domain hierarchy levels, outermost last.
DOMAIN_LEVELS: tuple[str, ...] = ("rack", "switch")


@dataclass(frozen=True)
class ClusterTopology:
    """Static node → rack → switch-group hierarchy over ``n_nodes``.

    Nodes ``[r * rack_size, (r+1) * rack_size)`` form rack ``r`` (the
    last rack may be short when ``rack_size`` does not divide
    ``n_nodes``); ``racks_per_switch`` consecutive racks share one
    switch group. Rack and switch-group indices double as *failure
    domains*: a correlated shock or a domain-scoped drain takes a
    contiguous node block inside exactly one of them.
    """

    n_nodes: int
    rack_size: int
    racks_per_switch: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if not 0 < self.rack_size <= self.n_nodes:
            raise ValueError(
                f"rack_size must be in [1, {self.n_nodes}], "
                f"got {self.rack_size}"
            )
        if self.racks_per_switch <= 0:
            raise ValueError(
                f"racks_per_switch must be positive, "
                f"got {self.racks_per_switch}"
            )

    # -- construction ----------------------------------------------------
    @classmethod
    def flat(cls, n_nodes: int) -> "ClusterTopology":
        """The degenerate topology: one rack, one switch group.

        This is every cluster model's default; ``is_flat`` gates all
        topology-aware behaviour off, so a flat cluster is
        indistinguishable from a pre-topology one.
        """
        return cls(n_nodes=n_nodes, rack_size=n_nodes, racks_per_switch=1)

    # -- shape -----------------------------------------------------------
    @property
    def is_flat(self) -> bool:
        """True when the whole machine is one failure domain."""
        return self.rack_size >= self.n_nodes

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.rack_size)

    @property
    def n_switches(self) -> int:
        return -(-self.n_racks // self.racks_per_switch)

    # -- membership ------------------------------------------------------
    def rack_of(self, node: int) -> int:
        """Rack index owning *node*."""
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} outside [0, {self.n_nodes})")
        return node // self.rack_size

    def switch_of(self, node: int) -> int:
        """Switch-group index owning *node*."""
        return self.rack_of(node) // self.racks_per_switch

    def rack_nodes(self, rack: int) -> range:
        """Contiguous node indices of rack *rack*."""
        if not 0 <= rack < self.n_racks:
            raise IndexError(f"rack {rack} outside [0, {self.n_racks})")
        lo = rack * self.rack_size
        return range(lo, min(lo + self.rack_size, self.n_nodes))

    def switch_nodes(self, switch: int) -> range:
        """Contiguous node indices behind switch group *switch*."""
        if not 0 <= switch < self.n_switches:
            raise IndexError(
                f"switch {switch} outside [0, {self.n_switches})"
            )
        lo = switch * self.racks_per_switch * self.rack_size
        hi = (switch + 1) * self.racks_per_switch * self.rack_size
        return range(lo, min(hi, self.n_nodes))

    def n_domains(self, level: str = "rack") -> int:
        """Domain count at *level* (``rack`` or ``switch``)."""
        if level == "rack":
            return self.n_racks
        if level == "switch":
            return self.n_switches
        raise ValueError(
            f"unknown domain level {level!r}; choose from {DOMAIN_LEVELS}"
        )

    def domain_nodes(self, level: str, index: int) -> range:
        """Node range of domain *index* at *level*."""
        if level == "rack":
            return self.rack_nodes(index)
        if level == "switch":
            return self.switch_nodes(index)
        raise ValueError(
            f"unknown domain level {level!r}; choose from {DOMAIN_LEVELS}"
        )

    def domain_label(self, level: str, index: int) -> str:
        """Canonical domain name, e.g. ``rack3`` / ``switch1``."""
        if level not in DOMAIN_LEVELS:
            raise ValueError(
                f"unknown domain level {level!r}; choose from {DOMAIN_LEVELS}"
            )
        return f"{level}{index}"

    def domain_range(self, label: str) -> range:
        """Resolve a ``rackN`` / ``switchN`` label back to its node
        range (inverse of :meth:`domain_label`)."""
        for level in DOMAIN_LEVELS:
            if label.startswith(level) and label[len(level):].isdigit():
                return self.domain_nodes(level, int(label[len(level):]))
        raise ValueError(f"unparseable domain label {label!r}")

    def validate_for(self, n_nodes: int) -> "ClusterTopology":
        """Assert this topology covers exactly *n_nodes* (the shared
        check every consumer — cluster models, spec builders — applies
        before trusting domain arithmetic). Returns self for chaining.
        """
        if self.n_nodes != n_nodes:
            raise ValueError(
                f"topology covers {self.n_nodes} nodes but the "
                f"cluster has {n_nodes}"
            )
        return self

    # -- identity --------------------------------------------------------
    def signature(self) -> str:
        """Compact identity for store keys: ``flat`` for the default
        topology so pre-topology cells keep their cell key."""
        if self.is_flat:
            return "flat"
        sig = f"rack{self.rack_size}"
        if self.racks_per_switch > 1:
            sig += f"x{self.racks_per_switch}"
        return sig


def topology_signature(topology: "ClusterTopology | None") -> str:
    """Cell-key component for an optional topology (``flat`` if None)."""
    if topology is None:
        return "flat"
    return topology.signature()


__all__ = ["DOMAIN_LEVELS", "ClusterTopology", "topology_signature"]
