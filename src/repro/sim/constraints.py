"""Structured constraint validation.

The paper separates *reasoning* from *enforcement* (§2.4): the simulator
validates each proposed action, executes feasible ones, and explains
violations. This module produces structured :class:`Violation` records;
:mod:`repro.core.constraints` renders them into the natural-language
feedback the LLM agent appends to its scratchpad.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sim.actions import Action, ActionKind
from repro.sim.cluster import ClusterModel
from repro.sim.job import Job


class ViolationKind(enum.Enum):
    """Why a proposed action was rejected."""

    UNKNOWN_JOB = "unknown_job"
    NOT_QUEUED = "not_queued"
    NOT_RUNNING = "not_running"
    NOT_YET_SUBMITTED = "not_yet_submitted"
    INSUFFICIENT_NODES = "insufficient_nodes"
    INSUFFICIENT_MEMORY = "insufficient_memory"
    EXCEEDS_CAPACITY = "exceeds_capacity"
    PREMATURE_STOP = "premature_stop"
    MALFORMED_ACTION = "malformed_action"


@dataclass(frozen=True)
class Violation:
    """One reason an action is infeasible, with enough context to
    render an actionable natural-language explanation."""

    kind: ViolationKind
    job_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        core = self.kind.value
        if self.job_id is not None:
            core += f"(job {self.job_id})"
        return f"{core}: {self.detail}" if self.detail else core


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating an action."""

    action: Action
    violations: tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


class ConstraintChecker:
    """Validates scheduler actions against the current system state.

    Enforced constraints (paper §2.1 / §3.3):

    * node capacity — the active set must never request more than
      ``N_total`` nodes;
    * memory capacity — likewise for ``M_total`` GB;
    * job feasibility/eligibility — only queued, already-submitted jobs
      may start; ids must exist;
    * ``Stop`` is only legal once every job has been scheduled.
    """

    def validate(
        self,
        action: Action,
        *,
        queued: dict[int, Job],
        cluster: ClusterModel,
        all_scheduled: bool,
        running: Optional[dict[int, object]] = None,
    ) -> ValidationResult:
        """Validate *action* against the queue and cluster state.

        Parameters
        ----------
        action:
            The proposed action.
        queued:
            Jobs currently eligible to start, keyed by id.
        cluster:
            The cluster model (free/total resources).
        all_scheduled:
            True when no job remains queued or pending-arrival (running
            jobs may still exist; ``Stop`` is legal then).
        running:
            Jobs currently holding resources, keyed by id; required to
            accept a ``PreemptJob`` (callers that never see preemption
            may omit it, in which case every preempt is rejected).
        """
        violations: list[Violation] = []

        if action.kind is ActionKind.DELAY:
            return ValidationResult(action)

        if action.kind is ActionKind.PREEMPT:
            if running is None or action.job_id not in running:
                violations.append(
                    Violation(
                        ViolationKind.NOT_RUNNING,
                        job_id=action.job_id,
                        detail=(
                            f"job {action.job_id} is not running; only "
                            "running jobs can be preempted"
                        ),
                    )
                )
            return ValidationResult(action, tuple(violations))

        if action.kind is ActionKind.STOP:
            if not all_scheduled:
                violations.append(
                    Violation(
                        ViolationKind.PREMATURE_STOP,
                        detail="jobs remain in the queue or are still arriving",
                    )
                )
            return ValidationResult(action, tuple(violations))

        # StartJob / BackfillJob
        job_id = action.job_id
        if job_id is None:
            return ValidationResult(
                action,
                (
                    Violation(
                        ViolationKind.MALFORMED_ACTION,
                        detail=f"{action.kind.value} requires a job_id",
                    ),
                ),
            )

        job = queued.get(job_id)
        if job is None:
            return ValidationResult(
                action,
                (
                    Violation(
                        ViolationKind.NOT_QUEUED,
                        job_id=job_id,
                        detail=(
                            f"job {job_id} is not in the waiting queue "
                            "(unknown, already running, or completed)"
                        ),
                    ),
                ),
            )

        if job.nodes > cluster.total_nodes or (
            job.memory_gb > cluster.total_memory_gb + 1e-9
        ):
            violations.append(
                Violation(
                    ViolationKind.EXCEEDS_CAPACITY,
                    job_id=job_id,
                    detail=(
                        f"requires {job.nodes} nodes / {job.memory_gb:g} GB; "
                        f"cluster capacity is {cluster.total_nodes} nodes / "
                        f"{cluster.total_memory_gb:g} GB"
                    ),
                )
            )
        else:
            if job.nodes > cluster.free_nodes:
                violations.append(
                    Violation(
                        ViolationKind.INSUFFICIENT_NODES,
                        job_id=job_id,
                        detail=(
                            f"requires {job.nodes} nodes; "
                            f"available: {cluster.free_nodes}"
                        ),
                    )
                )
            if job.memory_gb > cluster.free_memory_gb + 1e-9:
                violations.append(
                    Violation(
                        ViolationKind.INSUFFICIENT_MEMORY,
                        job_id=job_id,
                        detail=(
                            f"requires {job.memory_gb:g} GB; "
                            f"available: {cluster.free_memory_gb:g} GB"
                        ),
                    )
                )

        return ValidationResult(action, tuple(violations))
