"""Event queue for the discrete event simulator.

The simulator advances time only at *events* (paper §3.1): job arrivals
and job completions, plus — with a disruption trace attached — node
failures/repairs and maintenance drains. Events at the same timestamp
fire in a pinned kind order (see :class:`EventKind`): capacity is
released before it is removed, disruptions strike before same-instant
arrivals see the cluster, and ties beyond that break by insertion
sequence, giving a fully deterministic replay.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np


class EventKind(enum.IntEnum):
    """Kinds of simulator events; the integer value is the tie-break
    priority at equal timestamps (lower fires first).

    The order encodes the same-instant semantics the disruption
    subsystem depends on: completions and capacity *restorations*
    (repair — single-node then domain-level — and drain end) apply
    first, then capacity *removals* (single-node failure, then
    domain-level correlated failure, then drain start), then
    announcements, and arrivals always observe the fully-disrupted
    cluster. In particular failure-before-arrival is pinned: a job
    arriving at the exact instant a node (or a whole rack) dies queues
    against the shrunken cluster, and a domain failure striking at the
    instant a single node is restored sees that node back in service.

    For events carrying a job (COMPLETION/ARRIVAL) ``Event.job_id`` is
    the job id; for disruption events it indexes the failure,
    domain-failure, or drain entry of the simulator's
    :class:`~repro.sim.disruptions.DisruptionTrace`.
    """

    #: A running job finished; its resources are released.
    COMPLETION = 0
    #: A failed node comes back; capacity is restored.
    NODE_REPAIR = 1
    #: A correlated (rack/switch) failure's node block comes back.
    DOMAIN_REPAIR = 2
    #: A maintenance drain ends; drained nodes return to service.
    DRAIN_END = 3
    #: A node dies; its job (if any) is killed and capacity shrinks.
    NODE_FAILURE = 4
    #: A whole failure domain's node block dies at one instant; every
    #: job on it is killed in pinned (first-slot) order.
    DOMAIN_FAILURE = 5
    #: A maintenance drain begins; nodes leave service (killing
    #: running jobs if the cluster is too full to drain idle ones).
    DRAIN_START = 6
    #: A future drain is announced; recovery-aware schedulers may react.
    DRAIN_ANNOUNCE = 7
    #: A job entered the waiting queue.
    ARRIVAL = 8


@dataclass(frozen=True)
class Event:
    """A scheduled simulator event."""

    time: float
    kind: EventKind
    job_id: int

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        return (self.time, int(self.kind), seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Heap entries carry a monotonically increasing sequence number so
    that equal ``(time, kind)`` pairs pop in insertion order; this makes
    whole simulations reproducible bit-for-bit under a fixed seed.
    """

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _counter: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count()
    )

    def push(self, event: Event) -> None:
        """Insert an event. Times must be finite and non-negative."""
        if not (event.time >= 0.0 and event.time == event.time):
            raise ValueError(f"event time must be finite and >= 0: {event}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, int(event.kind), seq, event))

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        return self._heap[0][3] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time: float) -> list[Event]:
        """Pop every event with ``event.time <= time``, in order."""
        out: list[Event] = []
        while self._heap and self._heap[0][0] <= time:
            out.append(self.pop())
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class ArrayCalendar:
    """Array-backed event calendar for the structure-of-arrays engine.

    Ordering contract is identical to :class:`EventQueue` — events pop
    by ``(time, kind, seq)`` with ``seq`` the global insertion order —
    but the representation avoids per-event object churn entirely:

    * The **static lane** holds every event known before the run starts
      (arrivals, failures/repairs, drains). It is built once from the
      exact push sequence the object engine uses, sorted into flat
      preallocated numpy arrays, and consumed by advancing a cursor —
      zero allocation per pop, O(n log n) once instead of O(n log n)
      heap churn spread over the run.
    * The **dynamic lane** receives events discovered mid-run (job
      completions). It is a primitive-tuple min-heap — no ``Event``
      objects — whose sequence numbers continue after the static
      lane's, so cross-lane ties replay the object engine's insertion
      order exactly.

    Pops return plain ``(time, kind_value, payload)`` triples.
    """

    __slots__ = (
        "_times",
        "_kinds",
        "_payloads",
        "_seqs",
        "_cursor",
        "_n_static",
        "_heap",
        "_next_seq",
        "_sealed",
        "_pending",
        "_head",
        "_last_popped",
    )

    def __init__(self) -> None:
        self._pending: list[tuple[float, int, int]] = []
        self._sealed = False
        self._heap: list[tuple[float, int, int, int]] = []
        self._cursor = 0
        self._n_static = 0
        self._next_seq = 0
        #: Cached (time, kind, seq) of the static head as plain Python
        #: scalars — peek and pop both need it, so converting numpy
        #: scalars once per cursor position (not per call) keeps the
        #: per-event constant factor below the object queue's.
        self._head: Optional[tuple[float, int, int]] = None
        #: (time, kind, seq) of the most recently popped event; the
        #: floor :meth:`extend_static` enforces so a streamed append
        #: can never rewrite the already-consumed past.
        self._last_popped: Optional[tuple[float, int, int]] = None

    @staticmethod
    def _check_time(time: float) -> None:
        if not (time >= 0.0 and time == time):
            raise ValueError(
                f"event time must be finite and >= 0: {time!r}"
            )

    def add_static(self, time: float, kind: EventKind, payload: int) -> None:
        """Append one pre-run event. Call order defines the sequence
        numbers (the tie-break of last resort), exactly like pushing
        into an :class:`EventQueue`."""
        if self._sealed:
            raise RuntimeError("calendar already sealed")
        self._check_time(time)
        self._pending.append((float(time), int(kind), int(payload)))

    def seal(self) -> None:
        """Freeze the static lane: sort it into flat arrays. Dynamic
        pushes are accepted before and after sealing; static adds only
        before."""
        if self._sealed:
            raise RuntimeError("calendar already sealed")
        self._sealed = True
        n = len(self._pending)
        self._n_static = n
        self._next_seq = n
        times = np.empty(n, dtype=np.float64)
        kinds = np.empty(n, dtype=np.int64)
        payloads = np.empty(n, dtype=np.int64)
        for i, (t, k, p) in enumerate(self._pending):
            times[i] = t
            kinds[i] = k
            payloads[i] = p
        self._pending = []
        # Stable sort by (time, kind); seq (the original index) breaks
        # the remaining ties by construction of lexsort's stability.
        order = np.lexsort((kinds, times))
        self._times = times[order]
        self._kinds = kinds[order]
        # Payloads are consumed one scalar at a time in the hot loop —
        # a plain list hands back ready-made Python ints.
        self._payloads = payloads[order].tolist()
        self._seqs = order.astype(np.int64)

    def push(self, time: float, kind: EventKind, payload: int) -> None:
        """Insert a dynamic (mid-run) event."""
        if not self._sealed:
            raise RuntimeError("seal() the static lane before pushing")
        self._check_time(time)
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (float(time), int(kind), seq, int(payload)))

    def extend_static(
        self, events: Iterable[tuple[float, EventKind, int]]
    ) -> None:
        """Merge a batch of pre-run events into an already-**sealed**
        static lane — the streaming-arrival append path.

        Sequence numbers continue from the global counter in iteration
        order, exactly as if the events had been ``add_static``-ed
        before :meth:`seal` after everything already present; a
        calendar grown by any sequence of extends therefore pops the
        identical ``(time, kind, payload)`` stream as one built in a
        single batch, which is what pins a served session's replay
        byte-identical to a batch run. The unconsumed suffix is
        re-merged with one lexsort (O((m+k) log(m+k)) for m remaining
        + k new events) instead of rebuilding the whole lane.

        Raises ``RuntimeError`` before sealing, and ``ValueError`` if a
        new event would sort before an event that already popped — the
        consumed past is immutable.
        """
        if not self._sealed:
            raise RuntimeError("seal() the static lane before extending")
        batch: list[tuple[float, int, int, int]] = []
        floor = self._last_popped
        for time, kind, payload in events:
            self._check_time(time)
            key = (float(time), int(kind))
            if floor is not None and key < floor[:2]:
                raise ValueError(
                    f"cannot extend into the consumed past: event at "
                    f"t={time!r} kind={int(kind)} sorts before the last "
                    f"popped event (t={floor[0]!r} kind={floor[1]})"
                )
            seq = self._next_seq
            self._next_seq = seq + 1
            batch.append((key[0], key[1], seq, int(payload)))
        if not batch:
            return
        m = self._n_static - self._cursor
        k = len(batch)
        times = np.empty(m + k, dtype=np.float64)
        kinds = np.empty(m + k, dtype=np.int64)
        seqs = np.empty(m + k, dtype=np.int64)
        times[:m] = self._times[self._cursor:self._n_static]
        kinds[:m] = self._kinds[self._cursor:self._n_static]
        seqs[:m] = self._seqs[self._cursor:self._n_static]
        payloads = self._payloads[self._cursor:self._n_static]
        for j, (t, kd, sq, p) in enumerate(batch):
            times[m + j] = t
            kinds[m + j] = kd
            seqs[m + j] = sq
            payloads.append(p)
        # Full (time, kind, seq) order: new seqs are globally larger,
        # so ties at equal (time, kind) keep existing events first —
        # the same order one pre-seal build would have produced.
        order = np.lexsort((seqs, kinds, times))
        self._times = times[order]
        self._kinds = kinds[order]
        self._seqs = seqs[order]
        self._payloads = [payloads[i] for i in order.tolist()]
        self._cursor = 0
        self._n_static = m + k
        self._head = None

    def fork(self) -> "ArrayCalendar":
        """Independent copy of a sealed calendar.

        The service's session engine holds one incrementally-extended
        calendar per session and hands a fork to each replay —
        :func:`~repro.sim.engine.run_soa` consumes its calendar
        (cursor advances, completions land in the dynamic lane), so
        the pristine original must survive for the next query.
        """
        if not self._sealed:
            raise RuntimeError("seal() the static lane before forking")
        clone = ArrayCalendar.__new__(ArrayCalendar)
        clone._pending = []
        clone._sealed = True
        clone._heap = list(self._heap)
        clone._cursor = self._cursor
        clone._n_static = self._n_static
        clone._next_seq = self._next_seq
        clone._head = self._head
        clone._last_popped = self._last_popped
        clone._times = self._times.copy()
        clone._kinds = self._kinds.copy()
        clone._payloads = list(self._payloads)
        clone._seqs = self._seqs.copy()
        return clone

    def _static_key(self) -> Optional[tuple[float, int, int]]:
        head = self._head
        if head is None:
            i = self._cursor
            if i >= self._n_static:
                return None
            head = self._head = (
                float(self._times[i]),
                int(self._kinds[i]),
                int(self._seqs[i]),
            )
        return head

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` if empty."""
        s = self._static_key()
        if self._heap:
            d = self._heap[0]
            if s is None or (d[0], d[1], d[2]) < s:
                return d[0]
        if s is None:
            return None
        return s[0]

    def pop(self) -> tuple[float, int, int]:
        """Remove and return the earliest ``(time, kind, payload)``.

        Raises ``IndexError`` if the calendar is empty.
        """
        s = self._static_key()
        if self._heap:
            d = self._heap[0]
            if s is None or (d[0], d[1], d[2]) < s:
                heapq.heappop(self._heap)
                self._last_popped = (d[0], d[1], d[2])
                return (d[0], d[1], d[3])
        if s is None:
            raise IndexError("pop from an empty calendar")
        i = self._cursor
        self._cursor = i + 1
        self._head = None
        self._last_popped = s
        return (s[0], s[1], self._payloads[i])

    def pop_until(self, time: float) -> Iterator[tuple[float, int, int]]:
        """Yield every event with ``event time <= time``, in order.

        A generator rather than a list: the hot loop consumes events
        one at a time and most steps pop only one or two.
        """
        while True:
            t = self.peek_time()
            if t is None or t > time:
                return
            yield self.pop()

    def pop_due(self, time: float) -> Optional[tuple[float, int, int]]:
        """Pop and return the earliest event with ``event time <=
        time``, or ``None`` — the peek + pop of :meth:`pop_until`
        fused into one call.

        The engine's event drain runs this once per event plus one
        ``None`` return per step; the separate peek/pop pair cost three
        ``_static_key`` resolutions and a generator resumption per
        event, which is measurable at one step per simulated event.
        """
        s = self._static_key()
        if self._heap:
            d = self._heap[0]
            if s is None or (d[0], d[1], d[2]) < s:
                if d[0] > time:
                    return None
                heapq.heappop(self._heap)
                self._last_popped = (d[0], d[1], d[2])
                return (d[0], d[1], d[3])
        if s is None or s[0] > time:
            return None
        i = self._cursor
        self._cursor = i + 1
        self._head = None
        self._last_popped = s
        return (s[0], s[1], self._payloads[i])

    def __len__(self) -> int:
        return (self._n_static - self._cursor) + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < self._n_static or bool(self._heap)
