"""Event queue for the discrete event simulator.

The simulator advances time only at *events* (paper §3.1): job arrivals
and job completions, plus — with a disruption trace attached — node
failures/repairs and maintenance drains. Events at the same timestamp
fire in a pinned kind order (see :class:`EventKind`): capacity is
released before it is removed, disruptions strike before same-instant
arrivals see the cluster, and ties beyond that break by insertion
sequence, giving a fully deterministic replay.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional


class EventKind(enum.IntEnum):
    """Kinds of simulator events; the integer value is the tie-break
    priority at equal timestamps (lower fires first).

    The order encodes the same-instant semantics the disruption
    subsystem depends on: completions and capacity *restorations*
    (repair — single-node then domain-level — and drain end) apply
    first, then capacity *removals* (single-node failure, then
    domain-level correlated failure, then drain start), then
    announcements, and arrivals always observe the fully-disrupted
    cluster. In particular failure-before-arrival is pinned: a job
    arriving at the exact instant a node (or a whole rack) dies queues
    against the shrunken cluster, and a domain failure striking at the
    instant a single node is restored sees that node back in service.

    For events carrying a job (COMPLETION/ARRIVAL) ``Event.job_id`` is
    the job id; for disruption events it indexes the failure,
    domain-failure, or drain entry of the simulator's
    :class:`~repro.sim.disruptions.DisruptionTrace`.
    """

    #: A running job finished; its resources are released.
    COMPLETION = 0
    #: A failed node comes back; capacity is restored.
    NODE_REPAIR = 1
    #: A correlated (rack/switch) failure's node block comes back.
    DOMAIN_REPAIR = 2
    #: A maintenance drain ends; drained nodes return to service.
    DRAIN_END = 3
    #: A node dies; its job (if any) is killed and capacity shrinks.
    NODE_FAILURE = 4
    #: A whole failure domain's node block dies at one instant; every
    #: job on it is killed in pinned (first-slot) order.
    DOMAIN_FAILURE = 5
    #: A maintenance drain begins; nodes leave service (killing
    #: running jobs if the cluster is too full to drain idle ones).
    DRAIN_START = 6
    #: A future drain is announced; recovery-aware schedulers may react.
    DRAIN_ANNOUNCE = 7
    #: A job entered the waiting queue.
    ARRIVAL = 8


@dataclass(frozen=True)
class Event:
    """A scheduled simulator event."""

    time: float
    kind: EventKind
    job_id: int

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        return (self.time, int(self.kind), seq)


@dataclass
class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Heap entries carry a monotonically increasing sequence number so
    that equal ``(time, kind)`` pairs pop in insertion order; this makes
    whole simulations reproducible bit-for-bit under a fixed seed.
    """

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _counter: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count()
    )

    def push(self, event: Event) -> None:
        """Insert an event. Times must be finite and non-negative."""
        if not (event.time >= 0.0 and event.time == event.time):
            raise ValueError(f"event time must be finite and >= 0: {event}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, int(event.kind), seq, event))

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or ``None``."""
        return self._heap[0][3] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time: float) -> list[Event]:
        """Pop every event with ``event.time <= time``, in order."""
        out: list[Event] = []
        while self._heap and self._heap[0][0] <= time:
            out.append(self.pop())
        return out

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
