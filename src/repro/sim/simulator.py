"""The discrete event simulation engine.

Implements the environment of paper §3.1: time advances only at job
arrivals and completions; at each step newly arrived jobs join the
waiting queue, finished jobs release resources, and — if any job is
eligible — the scheduler is queried for a decision. Valid actions are
executed; invalid ones are rejected with structured violations and the
scheduler is re-queried (the LLM agent turns those violations into
scratchpad feedback, §2.4) up to a retry limit, after which the
simulator forces a ``Delay``.

The engine is policy-agnostic: FCFS, SJF, the annealing optimizer and
the ReAct LLM agent all implement :class:`SchedulerProtocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.sim.actions import Action
from repro.sim.cluster import ClusterModel, ResourcePool
from repro.sim.constraints import Violation
from repro.sim.disruptions import (
    DisruptionTrace,
    DrainWindow,
    normalize_restart_policy,
)
from repro.sim.job import Job, validate_dependencies, validate_workload
from repro.sim.schedule import ScheduleResult
from repro.sim.topology import ClusterTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.columns import ViewColumns


class SimulationError(RuntimeError):
    """Raised on unrecoverable simulation states (deadlock, runaway)."""


#: Shared empty mapping for undisrupted views' ``remaining_runtimes``.
_NO_REMAINING: dict[int, float] = {}


@dataclass(frozen=True)
class RunningJob:
    """A job currently holding resources.

    ``runtime`` is the *effective* runtime: the job's true duration,
    or its requested walltime when the simulator enforces walltime
    limits and the job would overrun (it gets killed at the limit).
    """

    job: Job
    start_time: float
    runtime: float = -1.0

    def __post_init__(self) -> None:
        if self.runtime < 0:
            object.__setattr__(self, "runtime", float(self.job.duration))

    @property
    def expected_end(self) -> float:
        return self.start_time + self.runtime


class CompletedLog(Sequence[int]):
    """Zero-copy immutable snapshot of the completion log.

    The simulator's completion log is append-only, so a snapshot is
    just the shared underlying list plus its length at snapshot time —
    O(1) to take regardless of how many jobs have completed, while
    earlier snapshots stay valid as the log keeps growing. (The naive
    ``tuple(completed_ids)`` per decision made snapshot cost grow
    linearly with completed jobs, i.e. quadratically over a run.)
    """

    __slots__ = ("_log", "_n")

    def __init__(self, log: list[int], n: Optional[int] = None) -> None:
        self._log = log
        self._n = len(log) if n is None else n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):  # int or slice
        if isinstance(index, slice):
            log = self._log
            return tuple(
                log[i] for i in range(*index.indices(self._n))
            )
        n = self._n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("CompletedLog index out of range")
        return self._log[index]

    def __iter__(self) -> Iterator[int]:
        log = self._log
        for i in range(self._n):
            yield log[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (CompletedLog, tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"CompletedLog({tuple(self)!r})"


@dataclass(frozen=True)
class SystemView:
    """Read-only snapshot handed to schedulers at a decision point.

    This is the machine-readable equivalent of the prompt state block
    in paper §3.4 (current time, available resources, running jobs,
    waiting jobs) plus look-ahead hooks (next event times) that
    event-driven baselines use.

    ``completed_ids`` accepts any integer sequence; the simulator
    passes a :class:`CompletedLog` (an O(1) copy-on-write snapshot of
    its append-only completion log), while hand-built views in tests
    typically pass plain tuples.
    """

    now: float
    queued: tuple[Job, ...]
    running: tuple[RunningJob, ...]
    completed_ids: Sequence[int]
    free_nodes: int
    free_memory_gb: float
    total_nodes: int
    total_memory_gb: float
    pending_arrivals: int
    next_arrival_time: Optional[float]
    next_completion_time: Optional[float]
    #: Jobs submitted but held back by unmet dependencies (the §6
    #: dependency extension); they are not eligible to schedule yet.
    blocked_jobs: int = 0
    #: Nodes currently out of service (failed or draining); already
    #: reflected in ``free_nodes``/``free_memory_gb``, exposed so
    #: recovery-aware policies can tell saturation from outage.
    nodes_offline: int = 0
    #: Announced maintenance windows not yet finished, in start order.
    #: Windows that have already started are still listed until they
    #: end (their capacity is already missing from ``free_nodes``).
    upcoming_drains: tuple[DrainWindow, ...] = ()
    #: Remaining runtime for jobs restarted after a kill (checkpoint
    #: restart); jobs absent from the mapping run their full duration.
    remaining_runtimes: Mapping[int, float] = field(default_factory=dict)
    #: The cluster's node → rack → switch hierarchy, when it has one.
    #: ``None`` (hand-built views) and flat topologies mean "no failure
    #: domains": every topology-aware policy path is a no-op.
    topology: Optional[ClusterTopology] = None
    #: Free (idle, online) node count per rack, aligned with
    #: ``topology.n_racks``; empty for flat/absent topologies — the
    #: engine only pays the per-domain reduction when domains exist.
    domain_free_nodes: tuple[int, ...] = ()
    #: Lazily-built id → job index over ``queued`` (see
    #: :meth:`queued_job`); excluded from init/repr/comparison.
    _queued_index: Optional[dict[int, Job]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Running jobs ordered by walltime-expiry (start + walltime); the
    #: simulator fills this from its incrementally-maintained index so
    #: EASY reservations stop re-sorting per blocked decision. Built
    #: lazily (one sort) for hand-constructed views.
    _running_sorted: Optional[tuple[RunningJob, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazily-built columnar projection of the queue (see
    #: :meth:`columns`); the engine pre-seeds it with the zero-copy
    #: flat-array projection, hand-built views fall back to building
    #: columns from ``queued`` on first use.
    _columns: Optional["ViewColumns"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def all_jobs_scheduled(self) -> bool:
        """True when nothing is queued, nothing will arrive, and no job
        is waiting on dependencies."""
        return (
            not self.queued
            and self.pending_arrivals == 0
            and self.blocked_jobs == 0
        )

    def columns(self) -> "ViewColumns":
        """Columnar (structure-of-arrays) projection of the queue.

        Returns a :class:`~repro.sim.columns.ViewColumns`: numpy
        attribute columns over the queued jobs in queue order, plus
        vectorized feasibility/recovery masks — the batch-query surface
        sort/filter-shaped schedulers consume instead of iterating
        ``Job`` facades. Engine-built views share one set of per-run
        master arrays (zero per-decision copies); hand-built views pay
        one column build on first use and cache it.
        """
        cols = self._columns
        if cols is None:
            from repro.sim.columns import (
                ViewColumns,
                queue_columns_from_jobs,
            )

            cols = ViewColumns(queue_columns_from_jobs(self.queued), self)
            object.__setattr__(self, "_columns", cols)
        return cols

    def queued_job(self, job_id: int) -> Optional[Job]:
        """O(1) lookup of a queued job by id.

        Both the optimizer and the LLM prompt/constraint pipeline call
        this per decision; the index is built once on first use instead
        of scanning the queue each call.
        """
        index = self._queued_index
        if index is None:
            index = {job.job_id: job for job in self.queued}
            object.__setattr__(self, "_queued_index", index)
        return index.get(job_id)

    def can_fit(self, job: Job) -> bool:
        """First-fit feasibility against the aggregate free resources."""
        return (
            job.nodes <= self.free_nodes
            and job.memory_gb <= self.free_memory_gb + 1e-9
        )

    @property
    def has_domains(self) -> bool:
        """True when the cluster has real (non-flat) failure domains
        and this view carries their per-domain free capacity."""
        return (
            self.topology is not None
            and not self.topology.is_flat
            and bool(self.domain_free_nodes)
        )

    def effective_walltime(self, job: Job) -> float:
        """Walltime estimate for *job*'s next attempt: the requested
        walltime, tightened to the known remaining runtime for
        checkpoint-restarted jobs."""
        remaining = self.remaining_runtimes.get(job.job_id)
        if remaining is None:
            return job.walltime
        return min(job.walltime, remaining)

    def running_by_walltime_end(self) -> tuple[RunningJob, ...]:
        """Running jobs ordered by ``start + walltime`` (ties keep
        ``running`` order) — the traversal order of EASY reservations.

        The simulator maintains this index incrementally across
        decisions (insert on start, delete on completion/kill), so for
        engine-built views the call is O(1); hand-built views pay one
        sort on first use and cache it.
        """
        cached = self._running_sorted
        if cached is None:
            cached = tuple(
                sorted(
                    self.running,
                    key=lambda r: r.start_time + r.job.walltime,
                )
            )
            object.__setattr__(self, "_running_sorted", cached)
        return cached

    @property
    def node_memory_share(self) -> float:
        """Even per-node memory share — what one offline/drained node
        withholds under the aggregate cluster model."""
        return self.total_memory_gb / self.total_nodes

    def _peak_drained_nodes(self, start: float, end: float) -> int:
        """Peak *simultaneous* node count taken by announced,
        not-yet-started drains over ``[start, end)``.

        Overlapping windows add up — checking each drain individually
        would declare a job safe that the windows jointly kill.
        Windows already in progress are excluded (their capacity is
        already missing from ``free_nodes``).
        """
        deltas: list[tuple[float, int]] = []
        for d in self.upcoming_drains:
            if d.start <= self.now or not d.overlaps(start, end):
                continue
            deltas.append((max(d.start, start), d.nodes))
            deltas.append((d.end, -d.nodes))
        if not deltas:
            return 0
        deltas.sort()
        level = peak = 0
        for _, delta in deltas:
            level += delta
            peak = max(peak, level)
        return peak

    def _fits_alongside_drains(self, job: Job, start: float) -> bool:
        """Would *job*, started at *start*, fit once every announced
        drain overlapping its walltime window has taken its nodes?"""
        peak = self._peak_drained_nodes(
            start, start + self.effective_walltime(job)
        )
        if peak == 0:
            return True
        return (
            job.nodes <= self.free_nodes - peak
            and job.memory_gb
            <= self.free_memory_gb - peak * self.node_memory_share + 1e-9
        )

    def drain_safe(self, job: Job) -> bool:
        """Conservatively, can *job* be started now without straddling
        announced maintenance drains it might not survive?

        The job must fit in the capacity left at the *peak* of the
        announced-but-not-yet-started drains overlapping
        ``[now, now + walltime)`` (overlapping windows add up; windows
        already in progress are skipped — their capacity is already
        gone from ``free_nodes``). Vacuously True with no drains, so
        drain-aware policies are byte-identical to their legacy
        behaviour on undisrupted runs.
        """
        if not self.upcoming_drains:
            return True
        return self._fits_alongside_drains(job, self.now)

    def earliest_drain_safe_start(self, job: Job) -> float:
        """Earliest ``t >= now`` at which starting *job* would not
        straddle announced drains it might not survive (same
        conservative capacity test as :meth:`drain_safe`). This is the
        natural *reservation* time for a drain-parked job: EASY uses it
        as the shadow so short work can still backfill the parked job's
        resources until then. Returns ``now`` when the job is already
        drain-safe.
        """
        drains = self.upcoming_drains
        if not drains:
            return self.now
        # The safe start is either now or the end of some blocking
        # window; past the last end there are no drains left, so the
        # search always terminates.
        candidates = [self.now] + sorted(
            d.end for d in drains if d.start > self.now and d.end > self.now
        )
        for t in candidates:
            if self._fits_alongside_drains(job, t):
                return t
        return candidates[-1]

    def feasible_jobs(self) -> tuple[Job, ...]:
        """Queued jobs that could start right now."""
        return tuple(j for j in self.queued if self.can_fit(j))

    def user_wait_times(self) -> dict[str, float]:
        """Current accumulated wait per user over queued jobs (used by
        fairness-aware policies)."""
        waits: dict[str, float] = {}
        for job in self.queued:
            waits[job.user] = waits.get(job.user, 0.0) + (
                self.now - job.submit_time
            )
        return waits


@runtime_checkable
class SchedulerProtocol(Protocol):
    """What the engine requires of a scheduling policy."""

    name: str

    def reset(self) -> None:
        """Clear state before a fresh run."""
        ...

    def decide(self, view: SystemView) -> Action:
        """Propose the next action for the current decision point."""
        ...

    def on_rejection(
        self, action: Action, violations: tuple[Violation, ...], view: SystemView
    ) -> None:
        """Notification that *action* was rejected (feedback channel)."""
        ...

    def decision_meta(self) -> dict[str, Any]:
        """Metadata about the most recent decision (thought text,
        simulated latency, …); attached to the decision record."""
        ...


@dataclass
class HPCSimulator:
    """Event-driven simulation of one workload under one scheduler.

    Parameters
    ----------
    jobs:
        The workload. Submit times define arrival events.
    scheduler:
        Any :class:`SchedulerProtocol` implementation.
    cluster:
        Cluster model; defaults to the paper's 256-node / 2048 GB
        aggregate partition.
    max_retries:
        How many consecutive rejected proposals are tolerated at one
        decision point before the simulator forces a ``Delay``.
    max_decisions:
        Hard cap on scheduler queries, guarding against runaway loops.
        Defaults to ``200 * n_jobs + 1000``.
    enforce_walltime:
        Real resource managers kill jobs that exceed their requested
        walltime. When True, a job whose true duration exceeds its
        walltime runs for exactly the walltime and its record is
        marked ``killed`` (the paper's synthetic workloads use perfect
        estimates, so this is off by default). With checkpoint
        restarts the limit applies per attempt.
    disruptions:
        Optional :class:`~repro.sim.disruptions.DisruptionTrace` of
        node failures and maintenance drains to replay. ``None`` or an
        empty trace leaves the engine on the legacy (zero-disruption)
        path, byte-identical to a simulator without the subsystem.
    restart_policy:
        What a killed job keeps: ``resubmit`` (nothing — full rerun),
        ``checkpoint`` (work up to the last multiple of
        ``checkpoint_interval``), or ``preempt_migrate`` (checkpoint
        semantics, plus an implicit checkpoint of every running job at
        each drain announcement, modeling proactive migration).
        Voluntary ``PreemptJob`` actions always suspend cleanly (no
        work lost) regardless of policy.
    checkpoint_interval:
        Seconds between periodic checkpoints; required (positive) for
        the ``checkpoint`` policy, optional for ``preempt_migrate``.
    """

    jobs: list[Job]
    scheduler: SchedulerProtocol
    cluster: ClusterModel = field(default_factory=ResourcePool)
    max_retries: int = 3
    max_decisions: Optional[int] = None
    enforce_walltime: bool = False
    disruptions: Optional[DisruptionTrace] = None
    restart_policy: str = "resubmit"
    checkpoint_interval: Optional[float] = None
    #: Execution mode, NOT part of an experiment's identity: ``"soa"``
    #: (default) runs the structure-of-arrays core in
    #: :mod:`repro.sim.engine`; ``"object"`` runs the original
    #: object-graph loop kept below as the reference implementation.
    #: The two are pinned byte-identical by the regression suite.
    engine: str = "soa"

    def __post_init__(self) -> None:
        self.restart_policy = normalize_restart_policy(self.restart_policy)
        if self.engine not in ("soa", "object"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'soa' or 'object'"
            )
        if self.checkpoint_interval is not None:
            if self.checkpoint_interval <= 0:
                raise ValueError(
                    f"checkpoint_interval must be positive, got "
                    f"{self.checkpoint_interval}"
                )
        elif self.restart_policy == "checkpoint":
            raise ValueError(
                "restart_policy='checkpoint' requires a positive "
                "checkpoint_interval"
            )
        self.jobs = validate_workload(self.jobs)
        validate_dependencies(self.jobs)
        # Fail fast on domain labels the cluster's topology cannot
        # resolve: a bad label must be a construction-time error, not
        # an IndexError deep in the event loop at DRAIN_START time.
        if self.disruptions is not None and self.disruptions.drains:
            topo = getattr(self.cluster, "topology", None)
            for drain in self.disruptions.drains:
                if drain.domain is None or topo is None:
                    continue
                try:
                    topo.domain_range(drain.domain)
                except (ValueError, IndexError) as exc:
                    raise SimulationError(
                        f"drain window {drain.start:g}-{drain.end:g} is "
                        f"scoped to domain {drain.domain!r}, which the "
                        f"cluster topology ({topo.signature()}) cannot "
                        f"resolve: {exc}"
                    ) from exc
        for job in self.jobs:
            if job.nodes > self.cluster.total_nodes or (
                job.memory_gb > self.cluster.total_memory_gb + 1e-9
            ):
                raise SimulationError(
                    f"job {job.job_id} exceeds total cluster capacity "
                    f"({job.nodes} nodes / {job.memory_gb:g} GB vs "
                    f"{self.cluster.total_nodes} / "
                    f"{self.cluster.total_memory_gb:g}); screen the workload "
                    "with repro.sim.job.screen_unschedulable first"
                )

    # -- main loop -------------------------------------------------------
    def run(self) -> ScheduleResult:
        """Execute the full simulation and return the schedule."""
        if self.engine == "soa":
            from repro.sim.engine import run_soa

            return run_soa(self)
        return self._run_object()

    def _run_object(self) -> ScheduleResult:
        """The original object-graph event loop, demoted to the
        test-support module :mod:`repro.sim._object_ref`.

        Retained as the reference implementation the flat-array core
        (:func:`repro.sim.engine.run_soa`) is digest-pinned against;
        every semantic subtlety there (push order, stale-completion
        checks, budget accounting, lazy compaction) is contractual for
        both engines. Never imported on the default ``engine="soa"``
        path.
        """
        from repro.sim._object_ref import run_object

        return run_object(self)


def simulate(
    jobs: Iterable[Job],
    scheduler: SchedulerProtocol,
    *,
    cluster: Optional[ClusterModel] = None,
    max_retries: int = 3,
    max_decisions: Optional[int] = None,
    enforce_walltime: bool = False,
    disruptions: Optional[DisruptionTrace] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    engine: str = "soa",
) -> ScheduleResult:
    """One-call convenience wrapper around :class:`HPCSimulator`."""
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=scheduler,
        cluster=cluster if cluster is not None else ResourcePool(),
        max_retries=max_retries,
        max_decisions=max_decisions,
        enforce_walltime=enforce_walltime,
        disruptions=disruptions,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
    )
    return sim.run()
