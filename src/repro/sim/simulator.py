"""The discrete event simulation engine.

Implements the environment of paper §3.1: time advances only at job
arrivals and completions; at each step newly arrived jobs join the
waiting queue, finished jobs release resources, and — if any job is
eligible — the scheduler is queried for a decision. Valid actions are
executed; invalid ones are rejected with structured violations and the
scheduler is re-queried (the LLM agent turns those violations into
scratchpad feedback, §2.4) up to a retry limit, after which the
simulator forces a ``Delay``.

The engine is policy-agnostic: FCFS, SJF, the annealing optimizer and
the ReAct LLM agent all implement :class:`SchedulerProtocol`.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import (
    Any,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.sim.actions import Action, ActionKind
from repro.sim.cluster import ClusterModel, ResourcePool
from repro.sim.constraints import ConstraintChecker, Violation
from repro.sim.disruptions import (
    DisruptionTrace,
    DrainWindow,
    PreemptionRecord,
    normalize_restart_policy,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job, validate_dependencies, validate_workload
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult
from repro.sim.topology import ClusterTopology


class SimulationError(RuntimeError):
    """Raised on unrecoverable simulation states (deadlock, runaway)."""


#: Shared empty mapping for undisrupted views' ``remaining_runtimes``.
_NO_REMAINING: dict[int, float] = {}


@dataclass(frozen=True)
class RunningJob:
    """A job currently holding resources.

    ``runtime`` is the *effective* runtime: the job's true duration,
    or its requested walltime when the simulator enforces walltime
    limits and the job would overrun (it gets killed at the limit).
    """

    job: Job
    start_time: float
    runtime: float = -1.0

    def __post_init__(self) -> None:
        if self.runtime < 0:
            object.__setattr__(self, "runtime", float(self.job.duration))

    @property
    def expected_end(self) -> float:
        return self.start_time + self.runtime


class CompletedLog(Sequence[int]):
    """Zero-copy immutable snapshot of the completion log.

    The simulator's completion log is append-only, so a snapshot is
    just the shared underlying list plus its length at snapshot time —
    O(1) to take regardless of how many jobs have completed, while
    earlier snapshots stay valid as the log keeps growing. (The naive
    ``tuple(completed_ids)`` per decision made snapshot cost grow
    linearly with completed jobs, i.e. quadratically over a run.)
    """

    __slots__ = ("_log", "_n")

    def __init__(self, log: list[int], n: Optional[int] = None) -> None:
        self._log = log
        self._n = len(log) if n is None else n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):  # int or slice
        if isinstance(index, slice):
            log = self._log
            return tuple(
                log[i] for i in range(*index.indices(self._n))
            )
        n = self._n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("CompletedLog index out of range")
        return self._log[index]

    def __iter__(self) -> Iterator[int]:
        log = self._log
        for i in range(self._n):
            yield log[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (CompletedLog, tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"CompletedLog({tuple(self)!r})"


@dataclass(frozen=True)
class SystemView:
    """Read-only snapshot handed to schedulers at a decision point.

    This is the machine-readable equivalent of the prompt state block
    in paper §3.4 (current time, available resources, running jobs,
    waiting jobs) plus look-ahead hooks (next event times) that
    event-driven baselines use.

    ``completed_ids`` accepts any integer sequence; the simulator
    passes a :class:`CompletedLog` (an O(1) copy-on-write snapshot of
    its append-only completion log), while hand-built views in tests
    typically pass plain tuples.
    """

    now: float
    queued: tuple[Job, ...]
    running: tuple[RunningJob, ...]
    completed_ids: Sequence[int]
    free_nodes: int
    free_memory_gb: float
    total_nodes: int
    total_memory_gb: float
    pending_arrivals: int
    next_arrival_time: Optional[float]
    next_completion_time: Optional[float]
    #: Jobs submitted but held back by unmet dependencies (the §6
    #: dependency extension); they are not eligible to schedule yet.
    blocked_jobs: int = 0
    #: Nodes currently out of service (failed or draining); already
    #: reflected in ``free_nodes``/``free_memory_gb``, exposed so
    #: recovery-aware policies can tell saturation from outage.
    nodes_offline: int = 0
    #: Announced maintenance windows not yet finished, in start order.
    #: Windows that have already started are still listed until they
    #: end (their capacity is already missing from ``free_nodes``).
    upcoming_drains: tuple[DrainWindow, ...] = ()
    #: Remaining runtime for jobs restarted after a kill (checkpoint
    #: restart); jobs absent from the mapping run their full duration.
    remaining_runtimes: Mapping[int, float] = field(default_factory=dict)
    #: The cluster's node → rack → switch hierarchy, when it has one.
    #: ``None`` (hand-built views) and flat topologies mean "no failure
    #: domains": every topology-aware policy path is a no-op.
    topology: Optional[ClusterTopology] = None
    #: Free (idle, online) node count per rack, aligned with
    #: ``topology.n_racks``; empty for flat/absent topologies — the
    #: engine only pays the per-domain reduction when domains exist.
    domain_free_nodes: tuple[int, ...] = ()
    #: Lazily-built id → job index over ``queued`` (see
    #: :meth:`queued_job`); excluded from init/repr/comparison.
    _queued_index: Optional[dict[int, Job]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Running jobs ordered by walltime-expiry (start + walltime); the
    #: simulator fills this from its incrementally-maintained index so
    #: EASY reservations stop re-sorting per blocked decision. Built
    #: lazily (one sort) for hand-constructed views.
    _running_sorted: Optional[tuple[RunningJob, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def all_jobs_scheduled(self) -> bool:
        """True when nothing is queued, nothing will arrive, and no job
        is waiting on dependencies."""
        return (
            not self.queued
            and self.pending_arrivals == 0
            and self.blocked_jobs == 0
        )

    def queued_job(self, job_id: int) -> Optional[Job]:
        """O(1) lookup of a queued job by id.

        Both the optimizer and the LLM prompt/constraint pipeline call
        this per decision; the index is built once on first use instead
        of scanning the queue each call.
        """
        index = self._queued_index
        if index is None:
            index = {job.job_id: job for job in self.queued}
            object.__setattr__(self, "_queued_index", index)
        return index.get(job_id)

    def can_fit(self, job: Job) -> bool:
        """First-fit feasibility against the aggregate free resources."""
        return (
            job.nodes <= self.free_nodes
            and job.memory_gb <= self.free_memory_gb + 1e-9
        )

    @property
    def has_domains(self) -> bool:
        """True when the cluster has real (non-flat) failure domains
        and this view carries their per-domain free capacity."""
        return (
            self.topology is not None
            and not self.topology.is_flat
            and bool(self.domain_free_nodes)
        )

    def effective_walltime(self, job: Job) -> float:
        """Walltime estimate for *job*'s next attempt: the requested
        walltime, tightened to the known remaining runtime for
        checkpoint-restarted jobs."""
        remaining = self.remaining_runtimes.get(job.job_id)
        if remaining is None:
            return job.walltime
        return min(job.walltime, remaining)

    def running_by_walltime_end(self) -> tuple[RunningJob, ...]:
        """Running jobs ordered by ``start + walltime`` (ties keep
        ``running`` order) — the traversal order of EASY reservations.

        The simulator maintains this index incrementally across
        decisions (insert on start, delete on completion/kill), so for
        engine-built views the call is O(1); hand-built views pay one
        sort on first use and cache it.
        """
        cached = self._running_sorted
        if cached is None:
            cached = tuple(
                sorted(
                    self.running,
                    key=lambda r: r.start_time + r.job.walltime,
                )
            )
            object.__setattr__(self, "_running_sorted", cached)
        return cached

    @property
    def node_memory_share(self) -> float:
        """Even per-node memory share — what one offline/drained node
        withholds under the aggregate cluster model."""
        return self.total_memory_gb / self.total_nodes

    def _peak_drained_nodes(self, start: float, end: float) -> int:
        """Peak *simultaneous* node count taken by announced,
        not-yet-started drains over ``[start, end)``.

        Overlapping windows add up — checking each drain individually
        would declare a job safe that the windows jointly kill.
        Windows already in progress are excluded (their capacity is
        already missing from ``free_nodes``).
        """
        deltas: list[tuple[float, int]] = []
        for d in self.upcoming_drains:
            if d.start <= self.now or not d.overlaps(start, end):
                continue
            deltas.append((max(d.start, start), d.nodes))
            deltas.append((d.end, -d.nodes))
        if not deltas:
            return 0
        deltas.sort()
        level = peak = 0
        for _, delta in deltas:
            level += delta
            peak = max(peak, level)
        return peak

    def _fits_alongside_drains(self, job: Job, start: float) -> bool:
        """Would *job*, started at *start*, fit once every announced
        drain overlapping its walltime window has taken its nodes?"""
        peak = self._peak_drained_nodes(
            start, start + self.effective_walltime(job)
        )
        if peak == 0:
            return True
        return (
            job.nodes <= self.free_nodes - peak
            and job.memory_gb
            <= self.free_memory_gb - peak * self.node_memory_share + 1e-9
        )

    def drain_safe(self, job: Job) -> bool:
        """Conservatively, can *job* be started now without straddling
        announced maintenance drains it might not survive?

        The job must fit in the capacity left at the *peak* of the
        announced-but-not-yet-started drains overlapping
        ``[now, now + walltime)`` (overlapping windows add up; windows
        already in progress are skipped — their capacity is already
        gone from ``free_nodes``). Vacuously True with no drains, so
        drain-aware policies are byte-identical to their legacy
        behaviour on undisrupted runs.
        """
        if not self.upcoming_drains:
            return True
        return self._fits_alongside_drains(job, self.now)

    def earliest_drain_safe_start(self, job: Job) -> float:
        """Earliest ``t >= now`` at which starting *job* would not
        straddle announced drains it might not survive (same
        conservative capacity test as :meth:`drain_safe`). This is the
        natural *reservation* time for a drain-parked job: EASY uses it
        as the shadow so short work can still backfill the parked job's
        resources until then. Returns ``now`` when the job is already
        drain-safe.
        """
        drains = self.upcoming_drains
        if not drains:
            return self.now
        # The safe start is either now or the end of some blocking
        # window; past the last end there are no drains left, so the
        # search always terminates.
        candidates = [self.now] + sorted(
            d.end for d in drains if d.start > self.now and d.end > self.now
        )
        for t in candidates:
            if self._fits_alongside_drains(job, t):
                return t
        return candidates[-1]

    def feasible_jobs(self) -> tuple[Job, ...]:
        """Queued jobs that could start right now."""
        return tuple(j for j in self.queued if self.can_fit(j))

    def user_wait_times(self) -> dict[str, float]:
        """Current accumulated wait per user over queued jobs (used by
        fairness-aware policies)."""
        waits: dict[str, float] = {}
        for job in self.queued:
            waits[job.user] = waits.get(job.user, 0.0) + (
                self.now - job.submit_time
            )
        return waits


@runtime_checkable
class SchedulerProtocol(Protocol):
    """What the engine requires of a scheduling policy."""

    name: str

    def reset(self) -> None:
        """Clear state before a fresh run."""
        ...

    def decide(self, view: SystemView) -> Action:
        """Propose the next action for the current decision point."""
        ...

    def on_rejection(
        self, action: Action, violations: tuple[Violation, ...], view: SystemView
    ) -> None:
        """Notification that *action* was rejected (feedback channel)."""
        ...

    def decision_meta(self) -> dict[str, Any]:
        """Metadata about the most recent decision (thought text,
        simulated latency, …); attached to the decision record."""
        ...


@dataclass
class HPCSimulator:
    """Event-driven simulation of one workload under one scheduler.

    Parameters
    ----------
    jobs:
        The workload. Submit times define arrival events.
    scheduler:
        Any :class:`SchedulerProtocol` implementation.
    cluster:
        Cluster model; defaults to the paper's 256-node / 2048 GB
        aggregate partition.
    max_retries:
        How many consecutive rejected proposals are tolerated at one
        decision point before the simulator forces a ``Delay``.
    max_decisions:
        Hard cap on scheduler queries, guarding against runaway loops.
        Defaults to ``200 * n_jobs + 1000``.
    enforce_walltime:
        Real resource managers kill jobs that exceed their requested
        walltime. When True, a job whose true duration exceeds its
        walltime runs for exactly the walltime and its record is
        marked ``killed`` (the paper's synthetic workloads use perfect
        estimates, so this is off by default). With checkpoint
        restarts the limit applies per attempt.
    disruptions:
        Optional :class:`~repro.sim.disruptions.DisruptionTrace` of
        node failures and maintenance drains to replay. ``None`` or an
        empty trace leaves the engine on the legacy (zero-disruption)
        path, byte-identical to a simulator without the subsystem.
    restart_policy:
        What a killed job keeps: ``resubmit`` (nothing — full rerun),
        ``checkpoint`` (work up to the last multiple of
        ``checkpoint_interval``), or ``preempt_migrate`` (checkpoint
        semantics, plus an implicit checkpoint of every running job at
        each drain announcement, modeling proactive migration).
        Voluntary ``PreemptJob`` actions always suspend cleanly (no
        work lost) regardless of policy.
    checkpoint_interval:
        Seconds between periodic checkpoints; required (positive) for
        the ``checkpoint`` policy, optional for ``preempt_migrate``.
    """

    jobs: list[Job]
    scheduler: SchedulerProtocol
    cluster: ClusterModel = field(default_factory=ResourcePool)
    max_retries: int = 3
    max_decisions: Optional[int] = None
    enforce_walltime: bool = False
    disruptions: Optional[DisruptionTrace] = None
    restart_policy: str = "resubmit"
    checkpoint_interval: Optional[float] = None
    #: Execution mode, NOT part of an experiment's identity: ``"soa"``
    #: (default) runs the structure-of-arrays core in
    #: :mod:`repro.sim.engine`; ``"object"`` runs the original
    #: object-graph loop kept below as the reference implementation.
    #: The two are pinned byte-identical by the regression suite.
    engine: str = "soa"

    def __post_init__(self) -> None:
        self.restart_policy = normalize_restart_policy(self.restart_policy)
        if self.engine not in ("soa", "object"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'soa' or 'object'"
            )
        if self.checkpoint_interval is not None:
            if self.checkpoint_interval <= 0:
                raise ValueError(
                    f"checkpoint_interval must be positive, got "
                    f"{self.checkpoint_interval}"
                )
        elif self.restart_policy == "checkpoint":
            raise ValueError(
                "restart_policy='checkpoint' requires a positive "
                "checkpoint_interval"
            )
        self.jobs = validate_workload(self.jobs)
        validate_dependencies(self.jobs)
        # Fail fast on domain labels the cluster's topology cannot
        # resolve: a bad label must be a construction-time error, not
        # an IndexError deep in the event loop at DRAIN_START time.
        if self.disruptions is not None and self.disruptions.drains:
            topo = getattr(self.cluster, "topology", None)
            for drain in self.disruptions.drains:
                if drain.domain is None or topo is None:
                    continue
                try:
                    topo.domain_range(drain.domain)
                except (ValueError, IndexError) as exc:
                    raise SimulationError(
                        f"drain window {drain.start:g}-{drain.end:g} is "
                        f"scoped to domain {drain.domain!r}, which the "
                        f"cluster topology ({topo.signature()}) cannot "
                        f"resolve: {exc}"
                    ) from exc
        for job in self.jobs:
            if job.nodes > self.cluster.total_nodes or (
                job.memory_gb > self.cluster.total_memory_gb + 1e-9
            ):
                raise SimulationError(
                    f"job {job.job_id} exceeds total cluster capacity "
                    f"({job.nodes} nodes / {job.memory_gb:g} GB vs "
                    f"{self.cluster.total_nodes} / "
                    f"{self.cluster.total_memory_gb:g}); screen the workload "
                    "with repro.sim.job.screen_unschedulable first"
                )

    # -- main loop -------------------------------------------------------
    def run(self) -> ScheduleResult:
        """Execute the full simulation and return the schedule."""
        if self.engine == "soa":
            from repro.sim.engine import run_soa

            return run_soa(self)
        return self._run_object()

    def _run_object(self) -> ScheduleResult:
        """The original object-graph event loop.

        Retained as the reference implementation the flat-array core
        (:func:`repro.sim.engine.run_soa`) is digest-pinned against;
        every semantic subtlety below (push order, stale-completion
        checks, budget accounting, lazy compaction) is contractual for
        both engines.
        """
        checker = ConstraintChecker()
        events = EventQueue()
        jobs_by_id = {j.job_id: j for j in self.jobs}
        for job in self.jobs:
            events.push(Event(job.submit_time, EventKind.ARRIVAL, job.job_id))

        # Disruption events. The trace is plain data generated up
        # front, so the event stream is identical for every scheduler
        # and every execution mode. ``job_id`` carries the index into
        # the trace's failure/drain tuples.
        trace = self.disruptions if self.disruptions else None
        disrupted = trace is not None
        if trace is not None:
            for idx, failure in enumerate(trace.failures):
                events.push(
                    Event(failure.time, EventKind.NODE_FAILURE, idx)
                )
                events.push(
                    Event(failure.repair_time, EventKind.NODE_REPAIR, idx)
                )
            for idx, shock in enumerate(trace.domain_failures):
                events.push(
                    Event(shock.time, EventKind.DOMAIN_FAILURE, idx)
                )
                events.push(
                    Event(shock.repair_time, EventKind.DOMAIN_REPAIR, idx)
                )
            for idx, drain in enumerate(trace.drains):
                if drain.announce_time < drain.start:
                    events.push(
                        Event(
                            drain.announce_time,
                            EventKind.DRAIN_ANNOUNCE,
                            idx,
                        )
                    )
                events.push(Event(drain.start, EventKind.DRAIN_START, idx))
                events.push(Event(drain.end, EventKind.DRAIN_END, idx))

        queued: dict[int, Job] = {}
        #: Queue in arrival/unblock order. Placed jobs leave ``queued``
        #: but their ids linger here until the lazy compaction below,
        #: keeping removal O(1) and iteration amortized O(queue size).
        queue_order: list[int] = []
        #: Submit times in arrival order (``self.jobs`` is sorted by
        #: (submit_time, job_id)); arrivals pop from the event heap in
        #: exactly this order, so the next un-arrived job's submit time
        #: is ``arrival_times[n_jobs - pending_arrivals]`` — an O(1)
        #: lookup replacing a full scan over every job per decision.
        arrival_times: list[float] = [j.submit_time for j in self.jobs]
        running: dict[int, RunningJob] = {}
        records: list[JobRecord] = []
        decisions: list[DecisionRecord] = []
        pending_arrivals = len(self.jobs)
        completed_ids: list[int] = []
        completed_set: set[int] = set()
        #: Submitted jobs held back by unmet dependencies (§6 extension).
        blocked: dict[int, Job] = {}
        dependents: dict[int, list[int]] = {}
        for job in self.jobs:
            for dep in job.depends_on:
                dependents.setdefault(dep, []).append(job.job_id)
        stopped = False
        #: The budget guards against runaway schedulers, but disruption
        #: churn is legitimate work: every event is a decision point
        #: and every kill implies at least one extra placement. The
        #: default scales with the trace (and grows per kill, below);
        #: an explicit ``max_decisions`` stays a hard cap.
        decision_budget = (
            self.max_decisions
            if self.max_decisions is not None
            else 200 * len(self.jobs)
            + 1000
            + 20 * (trace.n_events if trace is not None else 0)
        )

        # -- disruption bookkeeping -------------------------------------
        #: Remaining runtime of killed-and-requeued jobs; absent = full
        #: duration. Entries persist until final completion so views
        #: and restart math agree.
        remaining: dict[int, float] = {}
        preemptions: list[PreemptionRecord] = []
        #: job_id -> index into ``preemptions`` awaiting a restart time.
        pending_restart: dict[int, int] = {}
        #: Failure-trace indices whose capacity was actually taken
        #: (a failure striking an already-offline node is a no-op and
        #: its paired repair must be skipped too).
        effective_failures: set[int] = set()
        #: Domain-failure index -> node indices actually taken offline
        #: by that shock (nodes already down when it struck are skipped,
        #: and must not be double-restored at the paired repair).
        domain_offline: dict[int, list[int]] = {}
        #: Node labels currently down due to a failure (single-node or
        #: domain shock). Node-identity clusters detect re-failing a
        #: down node themselves, but the aggregate pool cannot — its
        #: ``mark_failed`` ignores the index and would take a *fresh*
        #: free node for a label that is already offline. Tracking
        #: labels here makes "failing an already-down node is a no-op"
        #: hold uniformly across cluster models.
        failed_down_nodes: set[int] = set()
        #: Involuntary kills attributed to a failure domain label.
        domain_kills: dict[str, int] = {}
        #: Most recent drain announcement (preempt_migrate implicitly
        #: checkpoints every running job at that instant).
        last_announce = -math.inf
        n_kills = {"failure": 0, "drain": 0, "preempt": 0}

        # -- running-set snapshots (copy-on-write) ----------------------
        # ``view.running`` and the walltime-expiry index change only
        # when a job starts, completes, or is killed — not on arrivals
        # or time advances — so both tuples are cached across view
        # rebuilds and invalidated separately from the view itself.
        # The expiry index (EASY's reservation traversal order) is
        # maintained incrementally with bisect instead of re-sorted
        # per blocked decision: entries are ``(start + walltime, seq,
        # job_id)`` where ``seq`` is a monotone placement counter, so
        # ties replay insertion order exactly like a stable sort.
        running_snapshot: Optional[tuple[RunningJob, ...]] = None
        running_sorted_snapshot: Optional[tuple[RunningJob, ...]] = None
        walltime_order: list[tuple[float, int, int]] = []
        place_seq = 0
        run_seq: dict[int, int] = {}

        if hasattr(self.cluster, "reset"):
            self.cluster.reset()
        self.scheduler.reset()

        now = 0.0
        if self.jobs:
            now = min(now, self.jobs[0].submit_time)

        def deps_met(job: Job) -> bool:
            return all(dep in completed_set for dep in job.depends_on)

        #: Decision-point snapshot, reused verbatim across rejection
        #: retries (system state cannot change between them) and rebuilt
        #: only after a mutation. ``completed_ids`` shares the
        #: append-only completion log via CompletedLog, so building a
        #: view costs O(queue) — flat in completed-job count, and flat
        #: in running-job count while the running set is unchanged.
        view_cache: Optional[SystemView] = None

        def invalidate_view() -> None:
            nonlocal view_cache
            view_cache = None

        def invalidate_running() -> None:
            nonlocal view_cache, running_snapshot, running_sorted_snapshot
            view_cache = None
            running_snapshot = None
            running_sorted_snapshot = None

        def start_running(job: Job, start: float) -> None:
            """Allocate *job* and schedule its completion."""
            nonlocal place_seq
            invalidate_running()
            self.cluster.allocate(job)
            full = remaining.get(job.job_id, job.duration)
            runtime = (
                min(full, job.walltime) if self.enforce_walltime else full
            )
            running[job.job_id] = RunningJob(job, start, runtime=runtime)
            insort(
                walltime_order, (start + job.walltime, place_seq, job.job_id)
            )
            run_seq[job.job_id] = place_seq
            place_seq += 1
            if job.job_id in pending_restart:
                preemptions[pending_restart.pop(job.job_id)].restart_time = (
                    start
                )
            events.push(Event(start + runtime, EventKind.COMPLETION, job.job_id))

        def drop_running(job_id: int) -> RunningJob:
            """Remove a job from the running set and the expiry index."""
            invalidate_running()
            run = running.pop(job_id)
            key = (
                run.start_time + run.job.walltime,
                run_seq.pop(job_id),
                job_id,
            )
            del walltime_order[bisect_left(walltime_order, key)]
            self.cluster.release(job_id)
            return run

        def kill_running(
            job_id: int,
            time: float,
            reason: str,
            domain: Optional[str] = None,
        ) -> None:
            """Evict a running job and requeue it under the restart
            policy. ``reason`` "preempt" is the voluntary/graceful path
            (clean suspend: no work lost). ``domain`` attributes the
            kill to a failure domain (correlated shock / scoped drain)
            for blast-radius accounting."""
            nonlocal stopped, final_stop_asked, decision_budget
            if self.max_decisions is None and reason != "preempt":
                # Each trace-driven kill legitimately costs extra
                # decisions (the victim must be re-placed, often after
                # several delays); keep the runaway guard proportional.
                # Voluntary preempts are *scheduler*-controlled and
                # must not extend the budget — a policy looping
                # start/preempt is exactly the runaway the guard
                # exists to catch.
                decision_budget += 8
            run = drop_running(job_id)
            elapsed = time - run.start_time
            prior = remaining.get(job_id, run.job.duration)
            if reason == "preempt":
                saved = elapsed
            elif self.restart_policy == "resubmit":
                saved = 0.0
            else:  # checkpoint / preempt_migrate
                interval = self.checkpoint_interval
                saved = (
                    math.floor(elapsed / interval) * interval
                    if interval
                    else 0.0
                )
                if (
                    self.restart_policy == "preempt_migrate"
                    and last_announce >= run.start_time
                ):
                    saved = max(saved, last_announce - run.start_time)
                saved = min(saved, elapsed)
            remaining[job_id] = prior - saved
            queued[job_id] = run.job
            # The job's entry from its original queueing may still
            # linger in queue_order (placed ids are only compacted
            # lazily); purge it or the requeued job would appear twice
            # in every view's queue.
            if job_id in queue_order:
                queue_order[:] = [j for j in queue_order if j != job_id]
            queue_order.append(job_id)
            # The world changed: a closing Stop no longer covers this
            # job, so scheduling re-opens (emits_stop policies get to
            # re-close once it is placed again).
            stopped = False
            final_stop_asked = False
            n_kills[reason] += 1
            if domain is not None:
                domain_kills[domain] = domain_kills.get(domain, 0) + 1
            pending_restart[job_id] = len(preemptions)
            preemptions.append(
                PreemptionRecord(
                    job_id=job_id,
                    nodes=run.job.nodes,
                    start_time=run.start_time,
                    time=time,
                    reason=reason,
                    work_saved=saved,
                    work_lost=elapsed - saved,
                    domain=domain,
                )
            )
            # The killed job's COMPLETION event is still in the heap;
            # the completion handler drops it as stale (no matching
            # running entry / expected end).

        def apply_drain_start(idx: int) -> None:
            """Take the drain's nodes out of service, idle nodes first,
            preempting running jobs only when too few are idle. A
            domain-scoped drain takes its nodes from that domain's
            block (on clusters with node identity)."""
            drain = trace.drains[idx]
            tag = f"drain:{idx}"
            within: Optional[range] = None
            topo = getattr(self.cluster, "topology", None)
            if drain.domain is not None and topo is not None:
                within = topo.domain_range(drain.domain)
            taken = 0
            target = min(drain.nodes, self.cluster.total_nodes)
            if within is not None:
                target = min(target, len(within))
            while taken < target:
                if self.cluster.drain_take_idle(tag, within):
                    taken += 1
                    continue
                victim = self.cluster.drain_victim(within)
                if victim is None:
                    break  # nothing left to take; partial drain
                kill_running(victim, drain.start, "drain", drain.domain)
            invalidate_view()

        #: Set by DRAIN_ANNOUNCE; grants the scheduler one decision
        #: query at the announcement even with an empty queue.
        announce_pending = False

        def process_events_at(time: float) -> None:
            nonlocal pending_arrivals, last_announce, announce_pending
            for event in events.pop_until(time):
                invalidate_view()
                if event.kind is EventKind.COMPLETION:
                    run = running.get(event.job_id)
                    if run is None or run.expected_end != event.time:
                        # Stale: the attempt this event belonged to was
                        # killed by a failure/drain/preemption.
                        continue
                    drop_running(event.job_id)
                    full = remaining.pop(event.job_id, run.job.duration)
                    records.append(
                        JobRecord(
                            run.job,
                            run.start_time,
                            event.time,
                            killed=run.runtime < full,
                        )
                    )
                    completed_ids.append(event.job_id)
                    completed_set.add(event.job_id)
                    # Release any dependents this completion unblocks.
                    for dep_id in dependents.get(event.job_id, ()):
                        job = blocked.get(dep_id)
                        if job is not None and deps_met(job):
                            del blocked[dep_id]
                            queued[job.job_id] = job
                            queue_order.append(job.job_id)
                elif event.kind is EventKind.ARRIVAL:
                    job = jobs_by_id[event.job_id]
                    pending_arrivals -= 1
                    if deps_met(job):
                        queued[job.job_id] = job
                        queue_order.append(job.job_id)
                    else:
                        blocked[job.job_id] = job
                elif event.kind is EventKind.NODE_FAILURE:
                    failure = trace.failures[event.job_id]
                    # A label a domain shock already downed is a no-op
                    # (its paired repair is skipped too, via
                    # effective_failures): only fresh nodes strike.
                    if failure.node not in failed_down_nodes:
                        victim = self.cluster.slot_victim(failure.node)
                        if victim is not None:
                            kill_running(victim, event.time, "failure")
                        if self.cluster.mark_failed(failure.node):
                            effective_failures.add(event.job_id)
                            failed_down_nodes.add(failure.node)
                elif event.kind is EventKind.NODE_REPAIR:
                    if event.job_id in effective_failures:
                        effective_failures.discard(event.job_id)
                        node = trace.failures[event.job_id].node
                        failed_down_nodes.discard(node)
                        self.cluster.mark_repaired(node)
                elif event.kind is EventKind.DOMAIN_FAILURE:
                    shock = trace.domain_failures[event.job_id]
                    # One event, N nodes, pinned ordering: victims are
                    # resolved over the pre-shock allocation layout in
                    # first-struck-slot order, then evicted together —
                    # a job spanning several struck nodes dies exactly
                    # once, and later victims never shift into earlier
                    # slots mid-event. Labels already down (a prior
                    # single-node failure or overlapping shock) are
                    # skipped entirely, so the aggregate pool never
                    # charges a fresh free node for an already-offline
                    # label.
                    fresh = [
                        node
                        for node in shock.nodes
                        if node not in failed_down_nodes
                    ]
                    victims: list[int] = []
                    seen_victims: set[int] = set()
                    for node in fresh:
                        victim = self.cluster.slot_victim(node)
                        if victim is not None and victim not in seen_victims:
                            seen_victims.add(victim)
                            victims.append(victim)
                    for victim in victims:
                        kill_running(
                            victim, event.time, "failure", shock.domain
                        )
                    taken = [
                        node
                        for node in fresh
                        if self.cluster.mark_failed(node)
                    ]
                    if taken:
                        domain_offline[event.job_id] = taken
                        failed_down_nodes.update(taken)
                elif event.kind is EventKind.DOMAIN_REPAIR:
                    for node in domain_offline.pop(event.job_id, ()):
                        failed_down_nodes.discard(node)
                        self.cluster.mark_repaired(node)
                elif event.kind is EventKind.DRAIN_START:
                    apply_drain_start(event.job_id)
                elif event.kind is EventKind.DRAIN_END:
                    self.cluster.drain_release(f"drain:{event.job_id}")
                else:  # DRAIN_ANNOUNCE
                    last_announce = event.time
                    announce_pending = True
                    # preempt_migrate: implicit checkpoint of all
                    # running work at the announcement (handled lazily
                    # in kill_running via ``last_announce``). The
                    # ``announce_pending`` flag additionally grants one
                    # reactive decision query even when the queue is
                    # empty (see the main loop) — otherwise a fully
                    # busy cluster could never voluntarily preempt
                    # ahead of the window.

        def build_view() -> SystemView:
            nonlocal view_cache, running_snapshot, running_sorted_snapshot
            if view_cache is not None:
                return view_cache
            next_arrival: Optional[float] = None
            next_completion: Optional[float] = None
            if pending_arrivals:
                next_arrival = arrival_times[len(arrival_times) - pending_arrivals]
            if running:
                next_completion = min(r.expected_end for r in running.values())
            if len(queue_order) > 2 * len(queued) + 8:
                queue_order[:] = [jid for jid in queue_order if jid in queued]
            ordered_queue = tuple(queued[jid] for jid in queue_order if jid in queued)
            if running_snapshot is None:
                running_snapshot = tuple(running.values())
                running_sorted_snapshot = tuple(
                    running[jid] for (_, _, jid) in walltime_order
                )
            drains: tuple[DrainWindow, ...] = ()
            if trace is not None and trace.drains:
                drains = tuple(
                    d
                    for d in trace.drains
                    if d.announce_time <= now < d.end
                )
            # Per-domain capacity is computed only when real domains
            # exist: flat-topology (and legacy) runs never pay the
            # per-rack reduction, keeping the hot path identical.
            topo: Optional[ClusterTopology] = getattr(
                self.cluster, "topology", None
            )
            domain_free: tuple[int, ...] = ()
            if topo is not None and not topo.is_flat:
                domain_free = tuple(self.cluster.domain_free_nodes())
            view_cache = SystemView(
                now=now,
                queued=ordered_queue,
                running=running_snapshot,
                completed_ids=CompletedLog(completed_ids),
                free_nodes=self.cluster.free_nodes,
                free_memory_gb=self.cluster.free_memory_gb,
                total_nodes=self.cluster.total_nodes,
                total_memory_gb=self.cluster.total_memory_gb,
                pending_arrivals=pending_arrivals,
                next_arrival_time=next_arrival,
                next_completion_time=next_completion,
                blocked_jobs=len(blocked),
                nodes_offline=getattr(self.cluster, "offline_nodes", 0),
                upcoming_drains=drains,
                # Snapshot copy: views are immutable snapshots, and the
                # live dict mutates on every kill/completion — a
                # retained view must keep reading its own instant.
                # (Empty on undisrupted runs: shared constant, no
                # allocation on the legacy path.)
                remaining_runtimes=(
                    dict(remaining) if remaining else _NO_REMAINING
                ),
                topology=topo,
                domain_free_nodes=domain_free,
            )
            object.__setattr__(
                view_cache, "_running_sorted", running_sorted_snapshot
            )
            return view_cache

        final_stop_asked = False

        while True:
            process_events_at(now)

            # A drain was just announced and nothing is queued: the
            # normal decision phase below would skip the scheduler
            # entirely, so a preempt-migrate policy on a fully busy
            # cluster could never react before the window starts.
            # Grant one query (within the decision budget); an accepted
            # PreemptJob requeues its victim and the regular phase then
            # takes over (letting the policy keep preempting). With
            # jobs queued the regular phase consults the scheduler
            # anyway.
            if (
                announce_pending
                and running
                and not queued
                and not stopped
                and len(decisions) < decision_budget
            ):
                view = build_view()
                action = self.scheduler.decide(view)
                result = checker.validate(
                    action,
                    queued=queued,
                    cluster=self.cluster,
                    all_scheduled=view.all_jobs_scheduled,
                    running=running,
                )
                decisions.append(
                    DecisionRecord(
                        time=now,
                        action=action,
                        accepted=result.ok,
                        violations=result.violations,
                        meta=dict(self.scheduler.decision_meta()),
                    )
                )
                if not result.ok:
                    self.scheduler.on_rejection(
                        action, result.violations, view
                    )
                elif action.kind is ActionKind.PREEMPT:
                    kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
                elif action.kind is ActionKind.STOP:
                    stopped = True
            announce_pending = False

            # Decision phase: keep querying while jobs are queued and the
            # scheduler keeps placing them (all within the same timestep).
            retries = 0
            while queued and not stopped:
                if len(decisions) >= decision_budget:
                    raise SimulationError(
                        f"decision budget exhausted ({decision_budget}); "
                        f"scheduler {self.scheduler.name!r} appears stuck"
                    )
                view = build_view()
                action = self.scheduler.decide(view)
                result = checker.validate(
                    action,
                    queued=queued,
                    cluster=self.cluster,
                    all_scheduled=view.all_jobs_scheduled,
                    running=running,
                )
                meta = dict(self.scheduler.decision_meta())
                decisions.append(
                    DecisionRecord(
                        time=now,
                        action=action,
                        accepted=result.ok,
                        violations=result.violations,
                        retry_index=retries,
                        meta=meta,
                    )
                )
                if not result.ok:
                    self.scheduler.on_rejection(action, result.violations, view)
                    retries += 1
                    if retries > self.max_retries:
                        break  # force a delay
                    continue

                retries = 0
                if action.kind is ActionKind.DELAY:
                    break
                if action.kind is ActionKind.STOP:
                    stopped = True
                    break
                if action.kind is ActionKind.PREEMPT:
                    # Voluntary suspend: clean checkpoint, requeue.
                    kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
                    continue
                # StartJob / BackfillJob
                job = queued.pop(action.job_id)  # type: ignore[arg-type]
                start_running(job, now)

            # Agents that narrate a closing Stop (the paper's ReAct agent
            # emits Stop once every job has been scheduled, possibly while
            # jobs are still running — Fig. 2) get one final query.
            if (
                not queued
                and not blocked
                and pending_arrivals == 0
                and not stopped
                and not final_stop_asked
                and getattr(self.scheduler, "emits_stop", False)
            ):
                final_stop_asked = True
                view = build_view()
                action = self.scheduler.decide(view)
                result = checker.validate(
                    action,
                    queued=queued,
                    cluster=self.cluster,
                    all_scheduled=True,
                )
                decisions.append(
                    DecisionRecord(
                        time=now,
                        action=action,
                        accepted=result.ok,
                        violations=result.violations,
                        meta=dict(self.scheduler.decision_meta()),
                    )
                )
                if result.ok and action.kind is ActionKind.STOP:
                    stopped = True

            # Termination / time advance.
            if (
                not queued
                and not running
                and not blocked
                and pending_arrivals == 0
            ):
                break
            if blocked and not queued and not running and pending_arrivals == 0:
                # Cannot happen with acyclic dependencies: a blocked
                # job's dependency chain always bottoms out in a
                # runnable job. Defensive guard.
                raise SimulationError(
                    f"{len(blocked)} jobs blocked on dependencies with "
                    "nothing running — dependency graph is inconsistent"
                )
            if stopped and not running and pending_arrivals == 0 and queued:
                # Stop accepted only when all_scheduled; defensive.
                raise SimulationError("stopped with jobs still queued")
            next_time = events.peek_time()
            if next_time is None:
                if queued and not stopped:
                    raise SimulationError(
                        f"deadlock at t={now}: {len(queued)} jobs queued, "
                        "no running jobs, no pending arrivals, and the "
                        f"scheduler {self.scheduler.name!r} keeps delaying"
                    )
                break
            if next_time > now:
                invalidate_view()  # views carry `now`
                now = next_time

        result = ScheduleResult(
            records=records,
            decisions=decisions,
            total_nodes=self.cluster.total_nodes,
            total_memory_gb=self.cluster.total_memory_gb,
            scheduler_name=self.scheduler.name,
            preemptions=preemptions,
            disrupted=disrupted,
        )
        if disrupted:
            result.extras["disruption_kills"] = dict(n_kills)
            # Blast-radius bookkeeping only for traces that actually
            # carry domain-level events: zero-correlation runs keep the
            # exact PR-3 extras (and therefore metric columns).
            n_domain_events = len(trace.domain_failures) + sum(
                1 for d in trace.drains if d.domain is not None
            )
            if n_domain_events:
                result.extras["domain_events"] = n_domain_events
                result.extras["domain_kills"] = dict(
                    sorted(domain_kills.items())
                )
        collect = getattr(self.scheduler, "collect_extras", None)
        if collect is not None:
            result.extras.update(collect())
        return result


def simulate(
    jobs: Iterable[Job],
    scheduler: SchedulerProtocol,
    *,
    cluster: Optional[ClusterModel] = None,
    max_retries: int = 3,
    max_decisions: Optional[int] = None,
    enforce_walltime: bool = False,
    disruptions: Optional[DisruptionTrace] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    engine: str = "soa",
) -> ScheduleResult:
    """One-call convenience wrapper around :class:`HPCSimulator`."""
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=scheduler,
        cluster=cluster if cluster is not None else ResourcePool(),
        max_retries=max_retries,
        max_decisions=max_decisions,
        enforce_walltime=enforce_walltime,
        disruptions=disruptions,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
    )
    return sim.run()
