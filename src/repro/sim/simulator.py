"""The discrete event simulation engine.

Implements the environment of paper §3.1: time advances only at job
arrivals and completions; at each step newly arrived jobs join the
waiting queue, finished jobs release resources, and — if any job is
eligible — the scheduler is queried for a decision. Valid actions are
executed; invalid ones are rejected with structured violations and the
scheduler is re-queried (the LLM agent turns those violations into
scratchpad feedback, §2.4) up to a retry limit, after which the
simulator forces a ``Delay``.

The engine is policy-agnostic: FCFS, SJF, the annealing optimizer and
the ReAct LLM agent all implement :class:`SchedulerProtocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.sim.actions import Action, ActionKind, Delay
from repro.sim.cluster import ClusterModel, ResourcePool
from repro.sim.constraints import ConstraintChecker, Violation
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job, validate_dependencies, validate_workload
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult


class SimulationError(RuntimeError):
    """Raised on unrecoverable simulation states (deadlock, runaway)."""


@dataclass(frozen=True)
class RunningJob:
    """A job currently holding resources.

    ``runtime`` is the *effective* runtime: the job's true duration,
    or its requested walltime when the simulator enforces walltime
    limits and the job would overrun (it gets killed at the limit).
    """

    job: Job
    start_time: float
    runtime: float = -1.0

    def __post_init__(self) -> None:
        if self.runtime < 0:
            object.__setattr__(self, "runtime", float(self.job.duration))

    @property
    def expected_end(self) -> float:
        return self.start_time + self.runtime


class CompletedLog(Sequence[int]):
    """Zero-copy immutable snapshot of the completion log.

    The simulator's completion log is append-only, so a snapshot is
    just the shared underlying list plus its length at snapshot time —
    O(1) to take regardless of how many jobs have completed, while
    earlier snapshots stay valid as the log keeps growing. (The naive
    ``tuple(completed_ids)`` per decision made snapshot cost grow
    linearly with completed jobs, i.e. quadratically over a run.)
    """

    __slots__ = ("_log", "_n")

    def __init__(self, log: list[int], n: Optional[int] = None) -> None:
        self._log = log
        self._n = len(log) if n is None else n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):  # int or slice
        if isinstance(index, slice):
            log = self._log
            return tuple(
                log[i] for i in range(*index.indices(self._n))
            )
        n = self._n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("CompletedLog index out of range")
        return self._log[index]

    def __iter__(self) -> Iterator[int]:
        log = self._log
        for i in range(self._n):
            yield log[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (CompletedLog, tuple, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"CompletedLog({tuple(self)!r})"


@dataclass(frozen=True)
class SystemView:
    """Read-only snapshot handed to schedulers at a decision point.

    This is the machine-readable equivalent of the prompt state block
    in paper §3.4 (current time, available resources, running jobs,
    waiting jobs) plus look-ahead hooks (next event times) that
    event-driven baselines use.

    ``completed_ids`` accepts any integer sequence; the simulator
    passes a :class:`CompletedLog` (an O(1) copy-on-write snapshot of
    its append-only completion log), while hand-built views in tests
    typically pass plain tuples.
    """

    now: float
    queued: tuple[Job, ...]
    running: tuple[RunningJob, ...]
    completed_ids: Sequence[int]
    free_nodes: int
    free_memory_gb: float
    total_nodes: int
    total_memory_gb: float
    pending_arrivals: int
    next_arrival_time: Optional[float]
    next_completion_time: Optional[float]
    #: Jobs submitted but held back by unmet dependencies (the §6
    #: dependency extension); they are not eligible to schedule yet.
    blocked_jobs: int = 0
    #: Lazily-built id → job index over ``queued`` (see
    #: :meth:`queued_job`); excluded from init/repr/comparison.
    _queued_index: Optional[dict[int, Job]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def all_jobs_scheduled(self) -> bool:
        """True when nothing is queued, nothing will arrive, and no job
        is waiting on dependencies."""
        return (
            not self.queued
            and self.pending_arrivals == 0
            and self.blocked_jobs == 0
        )

    def queued_job(self, job_id: int) -> Optional[Job]:
        """O(1) lookup of a queued job by id.

        Both the optimizer and the LLM prompt/constraint pipeline call
        this per decision; the index is built once on first use instead
        of scanning the queue each call.
        """
        index = self._queued_index
        if index is None:
            index = {job.job_id: job for job in self.queued}
            object.__setattr__(self, "_queued_index", index)
        return index.get(job_id)

    def can_fit(self, job: Job) -> bool:
        """First-fit feasibility against the aggregate free resources."""
        return (
            job.nodes <= self.free_nodes
            and job.memory_gb <= self.free_memory_gb + 1e-9
        )

    def feasible_jobs(self) -> tuple[Job, ...]:
        """Queued jobs that could start right now."""
        return tuple(j for j in self.queued if self.can_fit(j))

    def user_wait_times(self) -> dict[str, float]:
        """Current accumulated wait per user over queued jobs (used by
        fairness-aware policies)."""
        waits: dict[str, float] = {}
        for job in self.queued:
            waits[job.user] = waits.get(job.user, 0.0) + (
                self.now - job.submit_time
            )
        return waits


@runtime_checkable
class SchedulerProtocol(Protocol):
    """What the engine requires of a scheduling policy."""

    name: str

    def reset(self) -> None:
        """Clear state before a fresh run."""
        ...

    def decide(self, view: SystemView) -> Action:
        """Propose the next action for the current decision point."""
        ...

    def on_rejection(
        self, action: Action, violations: tuple[Violation, ...], view: SystemView
    ) -> None:
        """Notification that *action* was rejected (feedback channel)."""
        ...

    def decision_meta(self) -> dict[str, Any]:
        """Metadata about the most recent decision (thought text,
        simulated latency, …); attached to the decision record."""
        ...


@dataclass
class HPCSimulator:
    """Event-driven simulation of one workload under one scheduler.

    Parameters
    ----------
    jobs:
        The workload. Submit times define arrival events.
    scheduler:
        Any :class:`SchedulerProtocol` implementation.
    cluster:
        Cluster model; defaults to the paper's 256-node / 2048 GB
        aggregate partition.
    max_retries:
        How many consecutive rejected proposals are tolerated at one
        decision point before the simulator forces a ``Delay``.
    max_decisions:
        Hard cap on scheduler queries, guarding against runaway loops.
        Defaults to ``200 * n_jobs + 1000``.
    enforce_walltime:
        Real resource managers kill jobs that exceed their requested
        walltime. When True, a job whose true duration exceeds its
        walltime runs for exactly the walltime and its record is
        marked ``killed`` (the paper's synthetic workloads use perfect
        estimates, so this is off by default).
    """

    jobs: list[Job]
    scheduler: SchedulerProtocol
    cluster: ClusterModel = field(default_factory=ResourcePool)
    max_retries: int = 3
    max_decisions: Optional[int] = None
    enforce_walltime: bool = False

    def __post_init__(self) -> None:
        self.jobs = validate_workload(self.jobs)
        validate_dependencies(self.jobs)
        for job in self.jobs:
            if job.nodes > self.cluster.total_nodes or (
                job.memory_gb > self.cluster.total_memory_gb + 1e-9
            ):
                raise SimulationError(
                    f"job {job.job_id} exceeds total cluster capacity "
                    f"({job.nodes} nodes / {job.memory_gb:g} GB vs "
                    f"{self.cluster.total_nodes} / "
                    f"{self.cluster.total_memory_gb:g}); screen the workload "
                    "with repro.sim.job.screen_unschedulable first"
                )

    # -- main loop -------------------------------------------------------
    def run(self) -> ScheduleResult:
        """Execute the full simulation and return the schedule."""
        checker = ConstraintChecker()
        events = EventQueue()
        jobs_by_id = {j.job_id: j for j in self.jobs}
        for job in self.jobs:
            events.push(Event(job.submit_time, EventKind.ARRIVAL, job.job_id))

        queued: dict[int, Job] = {}
        #: Queue in arrival/unblock order. Placed jobs leave ``queued``
        #: but their ids linger here until the lazy compaction below,
        #: keeping removal O(1) and iteration amortized O(queue size).
        queue_order: list[int] = []
        #: Submit times in arrival order (``self.jobs`` is sorted by
        #: (submit_time, job_id)); arrivals pop from the event heap in
        #: exactly this order, so the next un-arrived job's submit time
        #: is ``arrival_times[n_jobs - pending_arrivals]`` — an O(1)
        #: lookup replacing a full scan over every job per decision.
        arrival_times: list[float] = [j.submit_time for j in self.jobs]
        running: dict[int, RunningJob] = {}
        records: list[JobRecord] = []
        decisions: list[DecisionRecord] = []
        pending_arrivals = len(self.jobs)
        completed_ids: list[int] = []
        completed_set: set[int] = set()
        #: Submitted jobs held back by unmet dependencies (§6 extension).
        blocked: dict[int, Job] = {}
        dependents: dict[int, list[int]] = {}
        for job in self.jobs:
            for dep in job.depends_on:
                dependents.setdefault(dep, []).append(job.job_id)
        stopped = False
        decision_budget = (
            self.max_decisions
            if self.max_decisions is not None
            else 200 * len(self.jobs) + 1000
        )

        if hasattr(self.cluster, "reset"):
            self.cluster.reset()
        self.scheduler.reset()

        now = 0.0
        if self.jobs:
            now = min(now, self.jobs[0].submit_time)

        def deps_met(job: Job) -> bool:
            return all(dep in completed_set for dep in job.depends_on)

        #: Decision-point snapshot, reused verbatim across rejection
        #: retries (system state cannot change between them) and rebuilt
        #: only after a mutation. ``completed_ids`` shares the
        #: append-only completion log via CompletedLog, so building a
        #: view costs O(queue + running) — flat in completed-job count.
        view_cache: Optional[SystemView] = None

        def invalidate_view() -> None:
            nonlocal view_cache
            view_cache = None

        def process_events_at(time: float) -> None:
            nonlocal pending_arrivals
            for event in events.pop_until(time):
                invalidate_view()
                if event.kind is EventKind.COMPLETION:
                    run = running.pop(event.job_id)
                    self.cluster.release(event.job_id)
                    records.append(
                        JobRecord(
                            run.job,
                            run.start_time,
                            event.time,
                            killed=run.runtime < run.job.duration,
                        )
                    )
                    completed_ids.append(event.job_id)
                    completed_set.add(event.job_id)
                    # Release any dependents this completion unblocks.
                    for dep_id in dependents.get(event.job_id, ()):
                        job = blocked.get(dep_id)
                        if job is not None and deps_met(job):
                            del blocked[dep_id]
                            queued[job.job_id] = job
                            queue_order.append(job.job_id)
                else:  # ARRIVAL
                    job = jobs_by_id[event.job_id]
                    pending_arrivals -= 1
                    if deps_met(job):
                        queued[job.job_id] = job
                        queue_order.append(job.job_id)
                    else:
                        blocked[job.job_id] = job

        def build_view() -> SystemView:
            nonlocal view_cache
            if view_cache is not None:
                return view_cache
            next_arrival: Optional[float] = None
            next_completion: Optional[float] = None
            if pending_arrivals:
                next_arrival = arrival_times[len(arrival_times) - pending_arrivals]
            if running:
                next_completion = min(r.expected_end for r in running.values())
            if len(queue_order) > 2 * len(queued) + 8:
                queue_order[:] = [jid for jid in queue_order if jid in queued]
            ordered_queue = tuple(queued[jid] for jid in queue_order if jid in queued)
            view_cache = SystemView(
                now=now,
                queued=ordered_queue,
                running=tuple(running.values()),
                completed_ids=CompletedLog(completed_ids),
                free_nodes=self.cluster.free_nodes,
                free_memory_gb=self.cluster.free_memory_gb,
                total_nodes=self.cluster.total_nodes,
                total_memory_gb=self.cluster.total_memory_gb,
                pending_arrivals=pending_arrivals,
                next_arrival_time=next_arrival,
                next_completion_time=next_completion,
                blocked_jobs=len(blocked),
            )
            return view_cache

        final_stop_asked = False

        while True:
            process_events_at(now)

            # Decision phase: keep querying while jobs are queued and the
            # scheduler keeps placing them (all within the same timestep).
            retries = 0
            while queued and not stopped:
                if len(decisions) >= decision_budget:
                    raise SimulationError(
                        f"decision budget exhausted ({decision_budget}); "
                        f"scheduler {self.scheduler.name!r} appears stuck"
                    )
                view = build_view()
                action = self.scheduler.decide(view)
                result = checker.validate(
                    action,
                    queued=queued,
                    cluster=self.cluster,
                    all_scheduled=view.all_jobs_scheduled,
                )
                meta = dict(self.scheduler.decision_meta())
                decisions.append(
                    DecisionRecord(
                        time=now,
                        action=action,
                        accepted=result.ok,
                        violations=result.violations,
                        retry_index=retries,
                        meta=meta,
                    )
                )
                if not result.ok:
                    self.scheduler.on_rejection(action, result.violations, view)
                    retries += 1
                    if retries > self.max_retries:
                        break  # force a delay
                    continue

                retries = 0
                if action.kind is ActionKind.DELAY:
                    break
                if action.kind is ActionKind.STOP:
                    stopped = True
                    break
                # StartJob / BackfillJob
                invalidate_view()
                job = queued.pop(action.job_id)  # type: ignore[arg-type]
                self.cluster.allocate(job)
                runtime = (
                    min(job.duration, job.walltime)
                    if self.enforce_walltime
                    else job.duration
                )
                running[job.job_id] = RunningJob(job, now, runtime=runtime)
                events.push(
                    Event(now + runtime, EventKind.COMPLETION, job.job_id)
                )

            # Agents that narrate a closing Stop (the paper's ReAct agent
            # emits Stop once every job has been scheduled, possibly while
            # jobs are still running — Fig. 2) get one final query.
            if (
                not queued
                and not blocked
                and pending_arrivals == 0
                and not stopped
                and not final_stop_asked
                and getattr(self.scheduler, "emits_stop", False)
            ):
                final_stop_asked = True
                view = build_view()
                action = self.scheduler.decide(view)
                result = checker.validate(
                    action,
                    queued=queued,
                    cluster=self.cluster,
                    all_scheduled=True,
                )
                decisions.append(
                    DecisionRecord(
                        time=now,
                        action=action,
                        accepted=result.ok,
                        violations=result.violations,
                        meta=dict(self.scheduler.decision_meta()),
                    )
                )
                if result.ok and action.kind is ActionKind.STOP:
                    stopped = True

            # Termination / time advance.
            if (
                not queued
                and not running
                and not blocked
                and pending_arrivals == 0
            ):
                break
            if blocked and not queued and not running and pending_arrivals == 0:
                # Cannot happen with acyclic dependencies: a blocked
                # job's dependency chain always bottoms out in a
                # runnable job. Defensive guard.
                raise SimulationError(
                    f"{len(blocked)} jobs blocked on dependencies with "
                    "nothing running — dependency graph is inconsistent"
                )
            if stopped and not running and pending_arrivals == 0 and queued:
                # Stop accepted only when all_scheduled; defensive.
                raise SimulationError("stopped with jobs still queued")
            next_time = events.peek_time()
            if next_time is None:
                if queued and not stopped:
                    raise SimulationError(
                        f"deadlock at t={now}: {len(queued)} jobs queued, "
                        "no running jobs, no pending arrivals, and the "
                        f"scheduler {self.scheduler.name!r} keeps delaying"
                    )
                break
            if next_time > now:
                invalidate_view()  # views carry `now`
                now = next_time

        result = ScheduleResult(
            records=records,
            decisions=decisions,
            total_nodes=self.cluster.total_nodes,
            total_memory_gb=self.cluster.total_memory_gb,
            scheduler_name=self.scheduler.name,
        )
        collect = getattr(self.scheduler, "collect_extras", None)
        if collect is not None:
            result.extras.update(collect())
        return result


def simulate(
    jobs: Iterable[Job],
    scheduler: SchedulerProtocol,
    *,
    cluster: Optional[ClusterModel] = None,
    max_retries: int = 3,
    max_decisions: Optional[int] = None,
    enforce_walltime: bool = False,
) -> ScheduleResult:
    """One-call convenience wrapper around :class:`HPCSimulator`."""
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=scheduler,
        cluster=cluster if cluster is not None else ResourcePool(),
        max_retries=max_retries,
        max_decisions=max_decisions,
        enforce_walltime=enforce_walltime,
    )
    return sim.run()
