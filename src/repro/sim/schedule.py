"""Schedule results: what a simulation run produces.

A finished run yields one :class:`JobRecord` per job (submit/start/end
times plus the original job), a chronological list of
:class:`DecisionRecord` (every action the scheduler proposed, whether it
was accepted, and any violations), and free-form extras attached by the
scheduler (the LLM agent stores its call/latency records there).

:class:`ScheduleResult` also exposes the numpy-array view the metrics
layer consumes (guide idiom: vectorize the numeric hot path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.sim.actions import Action
from repro.sim.constraints import Violation
from repro.sim.disruptions import PreemptionRecord
from repro.sim.job import Job


@dataclass(frozen=True)
class JobRecord:
    """Execution record of one completed job.

    ``killed`` marks jobs terminated at their walltime limit (only
    possible when the simulator runs with ``enforce_walltime=True`` and
    the true duration exceeded the request).
    """

    job: Job
    start_time: float
    end_time: float
    killed: bool = False

    def __post_init__(self) -> None:
        if self.start_time < self.job.submit_time - 1e-9:
            raise ValueError(
                f"job {self.job.job_id} started at {self.start_time} before "
                f"its submission at {self.job.submit_time}"
            )
        if self.end_time < self.start_time:
            raise ValueError(
                f"job {self.job.job_id} ended before it started"
            )

    @property
    def wait_time(self) -> float:
        """Queued time before execution: start − submit."""
        return self.start_time - self.job.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submission-to-completion latency: end − submit."""
        return self.end_time - self.job.submit_time


@dataclass(frozen=True)
class DecisionRecord:
    """One scheduler decision as seen by the simulator."""

    time: float
    action: Action
    accepted: bool
    violations: tuple[Violation, ...] = ()
    retry_index: int = 0
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ScheduleResult:
    """Everything a simulation run produced.

    Attributes
    ----------
    records:
        One :class:`JobRecord` per completed job, in completion order.
    decisions:
        Every proposed action in chronological order (accepted or not).
    total_nodes / total_memory_gb:
        Cluster capacity the run used (denominators for utilization).
    scheduler_name:
        Name of the scheduling policy that produced the run.
    extras:
        Scheduler-attached artifacts (e.g. LLM call records, annealer
        statistics). Keys are scheduler-specific.
    preemptions:
        One :class:`~repro.sim.disruptions.PreemptionRecord` per kill
        (node failure, drain eviction, or voluntary ``PreemptJob``), in
        chronological order. Empty for undisrupted runs.
    disrupted:
        True when the run executed under a non-empty disruption trace
        (even if no job happened to be killed); gates the extra
        disruption metrics so undisrupted reports stay byte-identical
        to the pre-disruption code.
    """

    records: list[JobRecord]
    decisions: list[DecisionRecord]
    total_nodes: int
    total_memory_gb: float
    scheduler_name: str = ""
    extras: dict[str, Any] = field(default_factory=dict)
    preemptions: list[PreemptionRecord] = field(default_factory=list)
    disrupted: bool = False

    # -- array views ---------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Vectorized view of the schedule for metric computation.

        Returns a dict of equally-sized arrays: ``submit``, ``start``,
        ``end``, ``duration``, ``nodes``, ``memory_gb``, ``wait``,
        ``turnaround`` (float64) and ``user`` (object array of user
        labels), ``job_id`` (int64).
        """
        n = len(self.records)
        out = {
            "submit": np.empty(n),
            "start": np.empty(n),
            "end": np.empty(n),
            "duration": np.empty(n),
            "nodes": np.empty(n),
            "memory_gb": np.empty(n),
            "job_id": np.empty(n, dtype=np.int64),
            "user": np.empty(n, dtype=object),
        }
        for i, rec in enumerate(self.records):
            out["submit"][i] = rec.job.submit_time
            out["start"][i] = rec.start_time
            out["end"][i] = rec.end_time
            # Actual runtime (differs from job.duration for jobs killed
            # at their walltime limit).
            out["duration"][i] = rec.end_time - rec.start_time
            out["nodes"][i] = rec.job.nodes
            out["memory_gb"][i] = rec.job.memory_gb
            out["job_id"][i] = rec.job.job_id
            out["user"][i] = rec.job.user
        out["wait"] = out["start"] - out["submit"]
        out["turnaround"] = out["end"] - out["submit"]
        return out

    # -- convenience ----------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def makespan(self) -> float:
        """Earliest submission to last completion (paper §3.2)."""
        if not self.records:
            return 0.0
        first_submit = min(r.job.submit_time for r in self.records)
        last_end = max(r.end_time for r in self.records)
        return last_end - first_submit

    @property
    def accepted_placements(self) -> list[DecisionRecord]:
        """Accepted StartJob/BackfillJob decisions (the set overhead
        analysis restricts to, paper §3.7.1)."""
        return [
            d for d in self.decisions if d.accepted and d.action.places_job
        ]

    @property
    def rejected_decisions(self) -> list[DecisionRecord]:
        return [d for d in self.decisions if not d.accepted]

    def record_for(self, job_id: int) -> JobRecord:
        """Record of a specific job (raises ``KeyError`` if absent)."""
        for rec in self.records:
            if rec.job.job_id == job_id:
                return rec
        raise KeyError(f"no record for job {job_id}")

    # -- verification ----------------------------------------------------
    def max_concurrent_usage(self) -> tuple[float, float]:
        """Peak simultaneous (nodes, memory) over the whole schedule.

        Computed with an event sweep over start/end points; tests use
        this to assert the capacity invariant independently of the
        cluster model's online accounting.
        """
        if not self.records:
            return (0.0, 0.0)
        points: list[tuple[float, int, float, float]] = []
        for rec in self.records:
            # Ends sort before starts at equal times (half-open intervals).
            points.append((rec.end_time, 0, -rec.job.nodes, -rec.job.memory_gb))
            points.append((rec.start_time, 1, rec.job.nodes, rec.job.memory_gb))
        points.sort(key=lambda p: (p[0], p[1]))
        nodes = mem = 0.0
        peak_nodes = peak_mem = 0.0
        for _, _, dn, dm in points:
            nodes += dn
            mem += dm
            peak_nodes = max(peak_nodes, nodes)
            peak_mem = max(peak_mem, mem)
        return (peak_nodes, peak_mem)

    def verify_capacity(self) -> None:
        """Raise ``AssertionError`` if the schedule ever oversubscribed
        the cluster."""
        peak_nodes, peak_mem = self.max_concurrent_usage()
        assert peak_nodes <= self.total_nodes + 1e-9, (
            f"node capacity violated: peak {peak_nodes} > {self.total_nodes}"
        )
        assert peak_mem <= self.total_memory_gb + 1e-6, (
            f"memory capacity violated: peak {peak_mem} > {self.total_memory_gb}"
        )


def merge_results(results: Iterable[ScheduleResult]) -> list[ScheduleResult]:
    """Materialize an iterable of results (simple convenience used by
    repetition experiments)."""
    return list(results)
