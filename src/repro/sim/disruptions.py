"""Fault & disruption modeling: node failures, repairs, and drains.

The simulator's baseline regime is a perfectly reliable cluster — the
only events are job arrivals and completions. This module supplies the
*disruption axis*: a :class:`DisruptionTrace` is a fully materialized,
validated set of node failures (with repair times) and maintenance
drain windows (with announcement lead) that the simulator turns into
extra events (:class:`~repro.sim.events.EventKind` members
``NODE_FAILURE``/``NODE_REPAIR``/``DRAIN_START``/``DRAIN_END``/
``DRAIN_ANNOUNCE``).

Semantics (see also the README "Faults & disruptions" section):

* A **node failure** strikes one node. The job running on it (in the
  aggregate :class:`~repro.sim.cluster.ResourcePool` model: the job
  holding the failed occupancy slot, allocation order) is killed and
  requeued under the simulator's restart policy; the node is offline —
  shrinking free capacity — until its repair time.
* A **drain** takes ``nodes`` nodes out of service over ``[start,
  end)`` for maintenance. Idle nodes are drained first; if too few are
  idle, running jobs are preempted (most recently started first in the
  aggregate model, highest node index first in the node-level model)
  until the drain is satisfied. Drains are *announced*
  ``announce_lead`` seconds ahead so recovery-aware schedulers can
  avoid placing long jobs across the window.

Reproducibility is part of the contract: traces are plain data
generated from seeds up front (per-node RNG streams spawned from one
``SeedSequence``), so a seeded trace is bit-identical across runs,
across processes, and across serial vs. parallel matrix execution. An
empty trace is falsy and the simulator takes the exact legacy code
path — zero-disruption runs are byte-identical to a simulator without
the subsystem (pinned by ``tests/test_disruption_regression.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sim.job import Job
from repro.sim.topology import ClusterTopology

#: Restart-policy names accepted by the simulator. ``resubmit`` loses
#: all work on a kill; ``checkpoint`` resumes from the last periodic
#: checkpoint; ``preempt_migrate`` additionally checkpoints every
#: running job the moment a drain is announced (so drain victims lose
#: at most the work since the announcement) and pairs with schedulers
#: that proactively re-place work via the ``PreemptJob`` action.
RESTART_POLICIES: tuple[str, ...] = ("resubmit", "checkpoint", "preempt_migrate")


def normalize_restart_policy(name: str) -> str:
    """Canonicalize a restart-policy name (hyphens/underscores)."""
    canon = name.strip().lower().replace("-", "_")
    if canon not in RESTART_POLICIES:
        raise ValueError(
            f"unknown restart policy {name!r}; "
            f"choose from {', '.join(RESTART_POLICIES)}"
        )
    return canon


@dataclass(frozen=True)
class NodeFailure:
    """One node going down at ``time`` and returning at ``repair_time``.

    ``domain`` names the failure domain (e.g. ``rack3``) the node
    belongs to when the trace was generated against a topology; it is
    metadata only — ``None`` for independent per-node processes, so
    pre-topology traces are unchanged.
    """

    time: float
    node: int
    repair_time: float
    domain: Optional[str] = None

    def __post_init__(self) -> None:
        if not (self.time >= 0.0 and self.time == self.time):
            raise ValueError(f"failure time must be finite and >= 0: {self}")
        if self.node < 0:
            raise ValueError(f"failure node must be non-negative: {self}")
        if not self.repair_time > self.time:
            raise ValueError(
                f"repair_time must be after the failure: {self}"
            )


@dataclass(frozen=True)
class DomainFailure:
    """A correlated shock: a contiguous node block dying at one instant.

    One :class:`~repro.sim.events.EventKind.DOMAIN_FAILURE` event kills
    every job touching ``nodes`` — victims are evicted in pinned
    first-slot order within the single event, not as N independent
    per-node failures — and the whole block returns to service together
    at ``repair_time``. ``domain`` is the canonical label of the
    failure domain the shock struck (``rack3``, ``switch1``), carried
    onto the resulting :class:`PreemptionRecord` rows so blast-radius
    metrics can attribute losses per domain.
    """

    time: float
    nodes: tuple[int, ...]
    repair_time: float
    domain: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))
        if not (self.time >= 0.0 and self.time == self.time):
            raise ValueError(f"failure time must be finite and >= 0: {self}")
        if not self.nodes:
            raise ValueError(f"domain failure must strike >= 1 node: {self}")
        if any(n < 0 for n in self.nodes):
            raise ValueError(f"node indices must be non-negative: {self}")
        if list(self.nodes) != sorted(set(self.nodes)):
            raise ValueError(
                f"domain failure nodes must be strictly ascending: {self}"
            )
        if not self.repair_time > self.time:
            raise ValueError(
                f"repair_time must be after the failure: {self}"
            )

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class DrainWindow:
    """A scheduled maintenance window taking ``nodes`` nodes offline.

    ``announce_time`` is when the window becomes visible to schedulers
    (via ``SystemView.upcoming_drains``); it defaults to ``start``
    (no advance notice) and is clamped to 0.

    ``domain`` optionally pins the drain to one failure domain
    (``rack2``): node-identity cluster models then take the drained
    nodes from that domain's block instead of the global idle pool,
    and schedulers still see the window as a single capacity notch of
    ``nodes`` (never N per-node events).
    """

    start: float
    end: float
    nodes: int
    announce_time: float = -1.0
    domain: Optional[str] = None

    def __post_init__(self) -> None:
        if self.announce_time < 0:
            object.__setattr__(self, "announce_time", float(self.start))
        object.__setattr__(
            self, "announce_time", max(0.0, float(self.announce_time))
        )
        if not (self.start >= 0.0 and self.start == self.start):
            raise ValueError(f"drain start must be finite and >= 0: {self}")
        if not self.end > self.start:
            raise ValueError(f"drain must end after it starts: {self}")
        if not math.isfinite(self.end):
            raise ValueError(f"drain end must be finite: {self}")
        if self.nodes <= 0:
            raise ValueError(f"drain must take >= 1 node: {self}")
        if self.announce_time > self.start:
            raise ValueError(f"drain announced after its start: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """True if ``[start, end)`` intersects the drain window."""
        return start < self.end and end > self.start


@dataclass(frozen=True)
class DisruptionTrace:
    """A validated, fully materialized disruption schedule.

    Plain data: building the trace draws every random number up front,
    so the simulator replays it deterministically and two runs with the
    same trace see identical disruptions regardless of scheduler
    behaviour. An empty trace is falsy and leaves the simulator on the
    legacy (zero-disruption) code path.
    """

    failures: tuple[NodeFailure, ...] = ()
    drains: tuple[DrainWindow, ...] = ()
    #: Correlated shocks (rack/switch-level events). Cross-type overlap
    #: with single-node failures is legal — a shock may strike a node
    #: that is already down; the engine treats already-offline nodes as
    #: no-ops with pinned semantics — but two shocks on the same domain
    #: process may not overlap in time on any node.
    domain_failures: tuple[DomainFailure, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.failures, tuple):
            object.__setattr__(self, "failures", tuple(self.failures))
        if not isinstance(self.drains, tuple):
            object.__setattr__(self, "drains", tuple(self.drains))
        if not isinstance(self.domain_failures, tuple):
            object.__setattr__(
                self, "domain_failures", tuple(self.domain_failures)
            )
        # Canonical event order: by time, then node/start for full
        # determinism independent of construction order.
        object.__setattr__(
            self,
            "failures",
            tuple(sorted(self.failures, key=lambda f: (f.time, f.node))),
        )
        object.__setattr__(
            self,
            "drains",
            tuple(sorted(self.drains, key=lambda d: (d.start, d.end))),
        )
        object.__setattr__(
            self,
            "domain_failures",
            tuple(
                sorted(
                    self.domain_failures,
                    key=lambda df: (df.time, df.nodes[0]),
                )
            ),
        )
        # A node must be up to fail: per-node failure intervals may not
        # overlap (generators guarantee this; hand-built traces are
        # validated). Single-node processes and domain shocks are
        # validated independently — overlap *across* the two kinds is
        # tolerated by the engine.
        last_up: dict[int, float] = {}
        for f in self.failures:
            if f.time < last_up.get(f.node, 0.0):
                raise ValueError(
                    f"node {f.node} fails at {f.time:g} before its "
                    f"previous repair at {last_up[f.node]:g}"
                )
            last_up[f.node] = f.repair_time
        domain_up: dict[int, float] = {}
        for df in self.domain_failures:
            for node in df.nodes:
                if df.time < domain_up.get(node, 0.0):
                    raise ValueError(
                        f"domain failure {df.domain or df.nodes[0]} strikes "
                        f"node {node} at {df.time:g} before its previous "
                        f"shock repairs at {domain_up[node]:g}"
                    )
                domain_up[node] = df.repair_time

    def __bool__(self) -> bool:
        return bool(self.failures or self.drains or self.domain_failures)

    @property
    def n_events(self) -> int:
        return (
            len(self.failures)
            + len(self.drains)
            + len(self.domain_failures)
        )

    @property
    def n_correlated_node_failures(self) -> int:
        """Total node-downings delivered by correlated shocks."""
        return sum(df.n_nodes for df in self.domain_failures)


# ---------------------------------------------------------------------------
# Seeded generators
# ---------------------------------------------------------------------------

def exponential_failures(
    *,
    n_nodes: int,
    horizon: float,
    mtbf: float,
    mttr: float,
    seed: int | np.random.SeedSequence = 0,
) -> tuple[NodeFailure, ...]:
    """Per-node Poisson failure processes (exponential up-times).

    Each node runs an independent alternating renewal process: up-time
    ~ Exp(mtbf), down-time ~ Exp(mttr), using its own RNG stream
    spawned from *seed* — so the trace for node *i* never depends on
    how many other nodes exist or failed.
    """
    return _renewal_failures(
        n_nodes=n_nodes, horizon=horizon, mtbf=mtbf, mttr=mttr, seed=seed,
        uptime=lambda rng: rng.exponential(mtbf),
    )


def weibull_failures(
    *,
    n_nodes: int,
    horizon: float,
    mtbf: float,
    mttr: float,
    shape: float = 1.5,
    seed: int | np.random.SeedSequence = 0,
) -> tuple[NodeFailure, ...]:
    """Weibull up-times (shape > 1: wear-out; < 1: infant mortality).

    The scale is chosen so the *mean* up-time equals ``mtbf``.
    """
    if shape <= 0:
        raise ValueError(f"weibull shape must be positive, got {shape}")
    scale = mtbf / math.gamma(1.0 + 1.0 / shape)
    return _renewal_failures(
        n_nodes=n_nodes, horizon=horizon, mtbf=mtbf, mttr=mttr, seed=seed,
        uptime=lambda rng: scale * rng.weibull(shape),
    )


def _renewal_failures(
    *,
    n_nodes: int,
    horizon: float,
    mtbf: float,
    mttr: float,
    seed: int | np.random.SeedSequence,
    uptime,
) -> tuple[NodeFailure, ...]:
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if mtbf <= 0 or mttr <= 0:
        raise ValueError(f"mtbf and mttr must be positive ({mtbf}, {mttr})")
    if not horizon > 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    base = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    failures: list[NodeFailure] = []
    for node, child in enumerate(base.spawn(n_nodes)):
        rng = np.random.default_rng(child)
        t = float(uptime(rng))
        while t < horizon:
            down = max(float(rng.exponential(mttr)), 1e-6)
            failures.append(NodeFailure(t, node, t + down))
            t += down + float(uptime(rng))
    return tuple(sorted(failures, key=lambda f: (f.time, f.node)))


def correlated_failures(
    *,
    topology: "ClusterTopology",
    horizon: float,
    domain_mtbf: float,
    mttr: float,
    correlation: float = 1.0,
    level: str = "rack",
    seed: int | np.random.SeedSequence = 0,
) -> tuple[DomainFailure, ...]:
    """Per-domain shock processes: correlated whole-block failures.

    Every domain at *level* (rack or switch group) runs an independent
    alternating renewal process — shock inter-arrival ~ Exp(domain_mtbf),
    down-time ~ Exp(mttr) — on its own RNG stream spawned from *seed*,
    so adding racks never perturbs the shocks an existing rack draws.
    Each shock fails one contiguous node block inside the domain:
    ``max(1, round(correlation * domain_size))`` nodes at an offset
    drawn uniformly within the domain (``correlation = 1`` takes the
    whole domain; small values approximate a shared-PDU partial
    outage). All randomness is drawn up front — the trace is plain
    data, bit-identical across runs, processes, and serial vs.
    parallel matrix execution.
    """
    if domain_mtbf <= 0 or mttr <= 0:
        raise ValueError(
            f"domain_mtbf and mttr must be positive ({domain_mtbf}, {mttr})"
        )
    if not 0.0 < correlation <= 1.0:
        raise ValueError(
            f"correlation must be in (0, 1], got {correlation}"
        )
    if not horizon > 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    n_domains = topology.n_domains(level)
    base = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    shocks: list[DomainFailure] = []
    for domain, child in enumerate(base.spawn(n_domains)):
        rng = np.random.default_rng(child)
        nodes = topology.domain_nodes(level, domain)
        size = len(nodes)
        block = max(1, round(correlation * size))
        label = topology.domain_label(level, domain)
        t = float(rng.exponential(domain_mtbf))
        while t < horizon:
            down = max(float(rng.exponential(mttr)), 1e-6)
            offset = int(rng.integers(0, size - block + 1))
            struck = tuple(
                range(nodes.start + offset, nodes.start + offset + block)
            )
            shocks.append(
                DomainFailure(
                    time=t,
                    nodes=struck,
                    repair_time=t + down,
                    domain=label,
                )
            )
            t += down + float(rng.exponential(domain_mtbf))
    return tuple(sorted(shocks, key=lambda df: (df.time, df.nodes[0])))


def periodic_drains(
    *,
    first_start: float,
    every: float,
    duration: float,
    nodes: int,
    horizon: float,
    announce_lead: float = 0.0,
    domain: Optional[str] = None,
) -> tuple[DrainWindow, ...]:
    """Deterministic maintenance windows: every ``every`` seconds from
    ``first_start`` until ``horizon``, each taking ``nodes`` nodes for
    ``duration`` seconds and announced ``announce_lead`` ahead.
    *domain* optionally pins every window to one failure domain."""
    if every <= 0 or duration <= 0:
        raise ValueError("drain period and duration must be positive")
    if announce_lead < 0:
        raise ValueError("announce_lead must be non-negative")
    drains: list[DrainWindow] = []
    start = float(first_start)
    while start < horizon:
        drains.append(
            DrainWindow(
                start=start,
                end=start + duration,
                nodes=nodes,
                announce_time=max(0.0, start - announce_lead),
                domain=domain,
            )
        )
        start += every
    return tuple(drains)


def estimate_horizon(jobs: Sequence[Job], total_nodes: int) -> float:
    """Conservative upper estimate of a workload's completion time.

    Used to bound generated disruption traces: last arrival, plus twice
    the aggregate work spread over the whole cluster (schedulers are
    never less than 50% efficient on feasible workloads), plus the
    longest single job. Deterministic in the workload alone. Events
    past the actual last completion simply never fire.
    """
    if not jobs:
        return 1.0
    last_submit = max(j.submit_time for j in jobs)
    work = sum(j.node_seconds for j in jobs)
    longest = max(j.duration for j in jobs)
    return last_submit + 2.0 * work / max(total_nodes, 1) + longest + 1.0


# ---------------------------------------------------------------------------
# Sweepable specs & presets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DisruptionSpec:
    """Declarative disruption configuration for experiment sweeps.

    A spec is the picklable, hashable identity that travels through
    the matrix engine and the artifact store; :meth:`build` turns it
    into a concrete :class:`DisruptionTrace` for a given cluster size
    and time horizon. The all-defaults spec means "no disruptions".
    """

    #: Mean time between failures per node (seconds); None disables
    #: failures.
    mtbf: Optional[float] = None
    #: Mean time to repair a failed node (seconds).
    mttr: float = 900.0
    #: ``exponential`` or ``weibull`` up-time distribution.
    failure_model: str = "exponential"
    weibull_shape: float = 1.5
    #: Period between maintenance drains (seconds); None disables drains.
    drain_every: Optional[float] = None
    drain_duration: float = 3600.0
    drain_nodes: int = 0
    drain_lead: float = 1800.0
    #: Offset of the first drain window.
    drain_first: float = 7200.0
    #: Mean time between correlated shocks *per failure domain*
    #: (seconds); None disables correlated failures. Repairs reuse
    #: ``mttr``. Requires a (non-flat, for meaningful domains) cluster
    #: topology at :meth:`build` time; against a flat topology the
    #: single domain is the whole machine.
    rack_mtbf: Optional[float] = None
    #: Fraction of the struck domain each shock takes down, in (0, 1]
    #: (1.0 = the whole rack/switch group dies as one block).
    correlation: float = 1.0
    #: Hierarchy level the shock process runs at: ``rack`` or
    #: ``switch``.
    correlation_level: str = "rack"
    #: Seed for the failure RNG streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_model not in ("exponential", "weibull"):
            raise ValueError(
                f"unknown failure model {self.failure_model!r}"
            )
        # Validate eagerly so bad values fail at spec construction
        # (where the CLI's friendly-error path catches them), not
        # later inside build() on a worker process.
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr}")
        if self.weibull_shape <= 0:
            raise ValueError(
                f"weibull_shape must be positive, got {self.weibull_shape}"
            )
        if self.rack_mtbf is not None and self.rack_mtbf <= 0:
            raise ValueError(
                f"rack_mtbf must be positive, got {self.rack_mtbf}"
            )
        if not 0.0 < self.correlation <= 1.0:
            raise ValueError(
                f"correlation must be in (0, 1], got {self.correlation}"
            )
        if self.correlation_level not in ("rack", "switch"):
            raise ValueError(
                f"correlation_level must be 'rack' or 'switch', "
                f"got {self.correlation_level!r}"
            )
        if self.drain_every is not None:
            if self.drain_nodes <= 0:
                raise ValueError("drain_every requires drain_nodes >= 1")
            if self.drain_every <= 0:
                raise ValueError(
                    f"drain_every must be positive, got {self.drain_every}"
                )
            if self.drain_duration <= 0:
                raise ValueError(
                    f"drain_duration must be positive, got "
                    f"{self.drain_duration}"
                )
            if self.drain_lead < 0:
                raise ValueError(
                    f"drain_lead must be non-negative, got {self.drain_lead}"
                )
            if self.drain_first < 0:
                raise ValueError(
                    f"drain_first must be non-negative, got "
                    f"{self.drain_first}"
                )

    def __bool__(self) -> bool:
        return (
            self.mtbf is not None
            or self.drain_every is not None
            or self.rack_mtbf is not None
        )

    def build(
        self,
        *,
        n_nodes: int,
        horizon: float,
        topology: Optional[ClusterTopology] = None,
    ) -> DisruptionTrace:
        """Materialize the trace for a cluster of *n_nodes* over
        ``[0, horizon)``.

        *topology* drives the correlated (``rack_mtbf``) shock process;
        it defaults to the flat topology, under which the single domain
        is the whole machine. Uncorrelated specs ignore it entirely, so
        pre-topology call sites build identical traces.
        """
        failures: tuple[NodeFailure, ...] = ()
        if self.mtbf is not None:
            if self.failure_model == "weibull":
                failures = weibull_failures(
                    n_nodes=n_nodes, horizon=horizon, mtbf=self.mtbf,
                    mttr=self.mttr, shape=self.weibull_shape, seed=self.seed,
                )
            else:
                failures = exponential_failures(
                    n_nodes=n_nodes, horizon=horizon, mtbf=self.mtbf,
                    mttr=self.mttr, seed=self.seed,
                )
        domain_failures: tuple[DomainFailure, ...] = ()
        if self.rack_mtbf is not None:
            topo = (
                topology.validate_for(n_nodes)
                if topology is not None
                else ClusterTopology.flat(n_nodes)
            )
            domain_failures = correlated_failures(
                topology=topo,
                horizon=horizon,
                domain_mtbf=self.rack_mtbf,
                mttr=self.mttr,
                correlation=self.correlation,
                level=self.correlation_level,
                # Offset stream: a spec with both per-node and
                # correlated processes must not feed the same seed to
                # both generators (their draws would be correlated).
                seed=np.random.SeedSequence((self.seed, 1)),
            )
        drains: tuple[DrainWindow, ...] = ()
        if self.drain_every is not None:
            drains = periodic_drains(
                first_start=self.drain_first,
                every=self.drain_every,
                duration=self.drain_duration,
                nodes=self.drain_nodes,
                horizon=horizon,
                announce_lead=self.drain_lead,
            )
        return DisruptionTrace(
            failures=failures,
            drains=drains,
            domain_failures=domain_failures,
        )

    def signature(self) -> str:
        """Canonical compact identity string ("none" when empty).

        Uncorrelated specs keep the exact pre-topology format, so
        existing store cell keys (and ``--resume`` coverage) survive
        the schema bump untouched.
        """
        if not self:
            return "none"
        parts: list[str] = []
        if self.mtbf is not None:
            parts.append(f"mtbf={self.mtbf:g}")
            parts.append(f"mttr={self.mttr:g}")
            if self.failure_model != "exponential":
                parts.append(
                    f"model={self.failure_model}:{self.weibull_shape:g}"
                )
        if self.rack_mtbf is not None:
            parts.append(f"rack_mtbf={self.rack_mtbf:g}")
            if self.mtbf is None:
                parts.append(f"mttr={self.mttr:g}")
            parts.append(f"corr={self.correlation:g}")
            if self.correlation_level != "rack":
                parts.append(f"level={self.correlation_level}")
        if self.drain_every is not None:
            parts.append(
                f"drain={self.drain_nodes}x{self.drain_duration:g}"
                f"@{self.drain_first:g}+{self.drain_every:g}"
                f"~{self.drain_lead:g}"
            )
        parts.append(f"dseed={self.seed}")
        return ",".join(parts)

    def as_dict(self) -> dict:
        """JSON-serializable form for the artifact store."""
        out: dict = {"signature": self.signature()}
        if self.mtbf is not None:
            out.update(
                mtbf=self.mtbf, mttr=self.mttr,
                failure_model=self.failure_model,
            )
            if self.failure_model == "weibull":
                out["weibull_shape"] = self.weibull_shape
        if self.rack_mtbf is not None:
            out.update(
                rack_mtbf=self.rack_mtbf,
                correlation=self.correlation,
                correlation_level=self.correlation_level,
            )
            out.setdefault("mttr", self.mttr)
        if self.drain_every is not None:
            out.update(
                drain_every=self.drain_every,
                drain_duration=self.drain_duration,
                drain_nodes=self.drain_nodes,
                drain_lead=self.drain_lead,
                drain_first=self.drain_first,
            )
        out["seed"] = self.seed
        return out


def disruption_signature(
    spec: Optional[DisruptionSpec],
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
) -> str:
    """Full disruption identity of an experiment cell: trace config
    plus recovery semantics. "none" for undisrupted cells, so legacy
    store lines and keys stay comparable."""
    if spec is None or not spec:
        return "none"
    policy = normalize_restart_policy(restart_policy)
    sig = spec.signature()
    sig += f",policy={policy}"
    # The interval only shapes the simulation under checkpointing
    # policies; appending it for resubmit would split physically
    # identical cells into distinct identities (breaking --resume and
    # report grouping).
    if checkpoint_interval is not None and policy != "resubmit":
        sig += f",ckpt={checkpoint_interval:g}"
    return sig


#: Named disruption regimes for CLI/sweep convenience. Calibrated for
#: the paper's 256-node partition and scenario timescales (hundreds to
#: tens of thousands of seconds).
DISRUPTION_PRESETS: dict[str, DisruptionSpec] = {
    "none": DisruptionSpec(),
    #: Occasional single-node failures, quick repairs.
    "flaky": DisruptionSpec(mtbf=200_000.0, mttr=1_200.0),
    #: Rolling maintenance: 32 nodes for an hour, twice a day,
    #: announced 30 minutes ahead.
    "maintenance": DisruptionSpec(
        drain_every=43_200.0, drain_duration=3_600.0, drain_nodes=32,
        drain_lead=1_800.0, drain_first=7_200.0,
    ),
    #: Failures and drains together, aggressive rates — the stress
    #: regime for recovery-aware scheduling studies.
    "hostile": DisruptionSpec(
        mtbf=50_000.0, mttr=2_400.0,
        drain_every=28_800.0, drain_duration=5_400.0, drain_nodes=64,
        drain_lead=3_600.0, drain_first=3_600.0,
    ),
    #: Correlated rack shocks: whole racks die together at an
    #: aggressive per-rack rate, plus background single-node churn.
    #: Pair with a non-flat topology (e.g. --rack-size 32) — this is
    #: the regime where domain-spread placement separates policies.
    "rack_storm": DisruptionSpec(
        mtbf=400_000.0, mttr=1_800.0,
        rack_mtbf=30_000.0, correlation=1.0,
    ),
    #: Rarer, wider blast: a whole switch group (several racks) drops
    #: at once — the largest single-event work loss the blast-radius
    #: metrics track. Pair with --rack-size/--racks-per-switch.
    "switch_outage": DisruptionSpec(
        rack_mtbf=120_000.0, mttr=3_600.0,
        correlation=1.0, correlation_level="switch",
    ),
}


def get_disruption_preset(name: str) -> DisruptionSpec:
    """Look up a preset by name with a helpful error."""
    try:
        return DISRUPTION_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown disruption preset {name!r}; available: "
            f"{', '.join(DISRUPTION_PRESETS)}"
        ) from None


# ---------------------------------------------------------------------------
# Run bookkeeping
# ---------------------------------------------------------------------------

@dataclass
class PreemptionRecord:
    """One involuntary kill (failure/drain) or voluntary preemption.

    ``work_saved`` is the checkpointed node-time the job keeps (per
    node: seconds of progress preserved); ``work_lost`` is what must be
    redone. ``restart_time`` is filled in when the job next starts —
    ``None`` means it was still queued when the run ended (impossible
    in a completed simulation) — and ``requeue latency`` is
    ``restart_time - time``.
    """

    job_id: int
    nodes: int
    start_time: float
    time: float
    reason: str  # "failure" | "drain" | "preempt"
    work_saved: float
    work_lost: float
    restart_time: Optional[float] = None
    #: Failure-domain label (``rack3``) when the kill came from a
    #: correlated shock or a domain-scoped drain; ``None`` for
    #: independent node failures and voluntary preemptions. Blast-radius
    #: metrics group on (time, reason, domain) to attribute losses.
    domain: Optional[str] = None

    @property
    def requeue_latency(self) -> Optional[float]:
        if self.restart_time is None:
            return None
        return self.restart_time - self.time

    @property
    def lost_node_seconds(self) -> float:
        return self.nodes * self.work_lost


__all__ = [
    "DISRUPTION_PRESETS",
    "DisruptionSpec",
    "DisruptionTrace",
    "DomainFailure",
    "DrainWindow",
    "NodeFailure",
    "PreemptionRecord",
    "RESTART_POLICIES",
    "correlated_failures",
    "disruption_signature",
    "estimate_horizon",
    "exponential_failures",
    "get_disruption_preset",
    "normalize_restart_policy",
    "periodic_drains",
    "weibull_failures",
]
