"""The original object-graph event loop — the reference engine.

Demoted out of the shipping module (PR 10): the flat-array core in
:mod:`repro.sim.engine` has carried the hot path since PR 6, with three
PRs of drift-free differential history pinning the two engines
byte-identical across every scheduler family and disruption regime.
The object loop remains the executable specification those digests were
generated against — ``HPCSimulator(engine="object")`` still routes
here, the differential suites still replay it — but it is test-support
code now: excluded from the coverage floor, never imported on the
``engine="soa"`` path, and frozen except for contract-level fixes that
must land in both engines.

Every semantic subtlety below (event push order, stale-completion
checks, decision-budget accounting, lazy queue compaction) is
contractual for both engines; see :mod:`repro.sim.engine`'s module
docstring for the byte-identity statement.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Optional

from repro.sim.actions import ActionKind
from repro.sim.constraints import ConstraintChecker
from repro.sim.disruptions import DrainWindow, PreemptionRecord
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult
from repro.sim.simulator import (
    _NO_REMAINING,
    CompletedLog,
    RunningJob,
    SimulationError,
    SystemView,
)
from repro.sim.topology import ClusterTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import HPCSimulator


def run_object(sim: "HPCSimulator") -> ScheduleResult:
    """Execute *sim* on the object-graph reference loop.

    Line-for-line the pre-PR-10 ``HPCSimulator._run_object`` method
    body with ``self`` renamed to ``sim`` — the digests pinned against
    that method pin this function transitively.
    """
    checker = ConstraintChecker()
    events = EventQueue()
    jobs_by_id = {j.job_id: j for j in sim.jobs}
    for job in sim.jobs:
        events.push(Event(job.submit_time, EventKind.ARRIVAL, job.job_id))

    # Disruption events. The trace is plain data generated up
    # front, so the event stream is identical for every scheduler
    # and every execution mode. ``job_id`` carries the index into
    # the trace's failure/drain tuples.
    trace = sim.disruptions if sim.disruptions else None
    disrupted = trace is not None
    if trace is not None:
        for idx, failure in enumerate(trace.failures):
            events.push(
                Event(failure.time, EventKind.NODE_FAILURE, idx)
            )
            events.push(
                Event(failure.repair_time, EventKind.NODE_REPAIR, idx)
            )
        for idx, shock in enumerate(trace.domain_failures):
            events.push(
                Event(shock.time, EventKind.DOMAIN_FAILURE, idx)
            )
            events.push(
                Event(shock.repair_time, EventKind.DOMAIN_REPAIR, idx)
            )
        for idx, drain in enumerate(trace.drains):
            if drain.announce_time < drain.start:
                events.push(
                    Event(
                        drain.announce_time,
                        EventKind.DRAIN_ANNOUNCE,
                        idx,
                    )
                )
            events.push(Event(drain.start, EventKind.DRAIN_START, idx))
            events.push(Event(drain.end, EventKind.DRAIN_END, idx))

    queued: dict[int, Job] = {}
    #: Queue in arrival/unblock order. Placed jobs leave ``queued``
    #: but their ids linger here until the lazy compaction below,
    #: keeping removal O(1) and iteration amortized O(queue size).
    queue_order: list[int] = []
    #: Submit times in arrival order (``sim.jobs`` is sorted by
    #: (submit_time, job_id)); arrivals pop from the event heap in
    #: exactly this order, so the next un-arrived job's submit time
    #: is ``arrival_times[n_jobs - pending_arrivals]`` — an O(1)
    #: lookup replacing a full scan over every job per decision.
    arrival_times: list[float] = [j.submit_time for j in sim.jobs]
    running: dict[int, RunningJob] = {}
    records: list[JobRecord] = []
    decisions: list[DecisionRecord] = []
    pending_arrivals = len(sim.jobs)
    completed_ids: list[int] = []
    completed_set: set[int] = set()
    #: Submitted jobs held back by unmet dependencies (§6 extension).
    blocked: dict[int, Job] = {}
    dependents: dict[int, list[int]] = {}
    for job in sim.jobs:
        for dep in job.depends_on:
            dependents.setdefault(dep, []).append(job.job_id)
    stopped = False
    #: The budget guards against runaway schedulers, but disruption
    #: churn is legitimate work: every event is a decision point
    #: and every kill implies at least one extra placement. The
    #: default scales with the trace (and grows per kill, below);
    #: an explicit ``max_decisions`` stays a hard cap.
    decision_budget = (
        sim.max_decisions
        if sim.max_decisions is not None
        else 200 * len(sim.jobs)
        + 1000
        + 20 * (trace.n_events if trace is not None else 0)
    )

    # -- disruption bookkeeping -------------------------------------
    #: Remaining runtime of killed-and-requeued jobs; absent = full
    #: duration. Entries persist until final completion so views
    #: and restart math agree.
    remaining: dict[int, float] = {}
    preemptions: list[PreemptionRecord] = []
    #: job_id -> index into ``preemptions`` awaiting a restart time.
    pending_restart: dict[int, int] = {}
    #: Failure-trace indices whose capacity was actually taken
    #: (a failure striking an already-offline node is a no-op and
    #: its paired repair must be skipped too).
    effective_failures: set[int] = set()
    #: Domain-failure index -> node indices actually taken offline
    #: by that shock (nodes already down when it struck are skipped,
    #: and must not be double-restored at the paired repair).
    domain_offline: dict[int, list[int]] = {}
    #: Node labels currently down due to a failure (single-node or
    #: domain shock). Node-identity clusters detect re-failing a
    #: down node themselves, but the aggregate pool cannot — its
    #: ``mark_failed`` ignores the index and would take a *fresh*
    #: free node for a label that is already offline. Tracking
    #: labels here makes "failing an already-down node is a no-op"
    #: hold uniformly across cluster models.
    failed_down_nodes: set[int] = set()
    #: Involuntary kills attributed to a failure domain label.
    domain_kills: dict[str, int] = {}
    #: Most recent drain announcement (preempt_migrate implicitly
    #: checkpoints every running job at that instant).
    last_announce = -math.inf
    n_kills = {"failure": 0, "drain": 0, "preempt": 0}

    # -- running-set snapshots (copy-on-write) ----------------------
    # ``view.running`` and the walltime-expiry index change only
    # when a job starts, completes, or is killed — not on arrivals
    # or time advances — so both tuples are cached across view
    # rebuilds and invalidated separately from the view itsim.
    # The expiry index (EASY's reservation traversal order) is
    # maintained incrementally with bisect instead of re-sorted
    # per blocked decision: entries are ``(start + walltime, seq,
    # job_id)`` where ``seq`` is a monotone placement counter, so
    # ties replay insertion order exactly like a stable sort.
    running_snapshot: Optional[tuple[RunningJob, ...]] = None
    running_sorted_snapshot: Optional[tuple[RunningJob, ...]] = None
    walltime_order: list[tuple[float, int, int]] = []
    place_seq = 0
    run_seq: dict[int, int] = {}

    if hasattr(sim.cluster, "reset"):
        sim.cluster.reset()
    sim.scheduler.reset()

    now = 0.0
    if sim.jobs:
        now = min(now, sim.jobs[0].submit_time)

    def deps_met(job: Job) -> bool:
        return all(dep in completed_set for dep in job.depends_on)

    #: Decision-point snapshot, reused verbatim across rejection
    #: retries (system state cannot change between them) and rebuilt
    #: only after a mutation. ``completed_ids`` shares the
    #: append-only completion log via CompletedLog, so building a
    #: view costs O(queue) — flat in completed-job count, and flat
    #: in running-job count while the running set is unchanged.
    view_cache: Optional[SystemView] = None

    def invalidate_view() -> None:
        nonlocal view_cache
        view_cache = None

    def invalidate_running() -> None:
        nonlocal view_cache, running_snapshot, running_sorted_snapshot
        view_cache = None
        running_snapshot = None
        running_sorted_snapshot = None

    def start_running(job: Job, start: float) -> None:
        """Allocate *job* and schedule its completion."""
        nonlocal place_seq
        invalidate_running()
        sim.cluster.allocate(job)
        full = remaining.get(job.job_id, job.duration)
        runtime = (
            min(full, job.walltime) if sim.enforce_walltime else full
        )
        running[job.job_id] = RunningJob(job, start, runtime=runtime)
        insort(
            walltime_order, (start + job.walltime, place_seq, job.job_id)
        )
        run_seq[job.job_id] = place_seq
        place_seq += 1
        if job.job_id in pending_restart:
            preemptions[pending_restart.pop(job.job_id)].restart_time = (
                start
            )
        events.push(Event(start + runtime, EventKind.COMPLETION, job.job_id))

    def drop_running(job_id: int) -> RunningJob:
        """Remove a job from the running set and the expiry index."""
        invalidate_running()
        run = running.pop(job_id)
        key = (
            run.start_time + run.job.walltime,
            run_seq.pop(job_id),
            job_id,
        )
        del walltime_order[bisect_left(walltime_order, key)]
        sim.cluster.release(job_id)
        return run

    def kill_running(
        job_id: int,
        time: float,
        reason: str,
        domain: Optional[str] = None,
    ) -> None:
        """Evict a running job and requeue it under the restart
        policy. ``reason`` "preempt" is the voluntary/graceful path
        (clean suspend: no work lost). ``domain`` attributes the
        kill to a failure domain (correlated shock / scoped drain)
        for blast-radius accounting."""
        nonlocal stopped, final_stop_asked, decision_budget
        if sim.max_decisions is None and reason != "preempt":
            # Each trace-driven kill legitimately costs extra
            # decisions (the victim must be re-placed, often after
            # several delays); keep the runaway guard proportional.
            # Voluntary preempts are *scheduler*-controlled and
            # must not extend the budget — a policy looping
            # start/preempt is exactly the runaway the guard
            # exists to catch.
            decision_budget += 8
        run = drop_running(job_id)
        elapsed = time - run.start_time
        prior = remaining.get(job_id, run.job.duration)
        if reason == "preempt":
            saved = elapsed
        elif sim.restart_policy == "resubmit":
            saved = 0.0
        else:  # checkpoint / preempt_migrate
            interval = sim.checkpoint_interval
            saved = (
                math.floor(elapsed / interval) * interval
                if interval
                else 0.0
            )
            if (
                sim.restart_policy == "preempt_migrate"
                and last_announce >= run.start_time
            ):
                saved = max(saved, last_announce - run.start_time)
            saved = min(saved, elapsed)
        remaining[job_id] = prior - saved
        queued[job_id] = run.job
        # The job's entry from its original queueing may still
        # linger in queue_order (placed ids are only compacted
        # lazily); purge it or the requeued job would appear twice
        # in every view's queue.
        if job_id in queue_order:
            queue_order[:] = [j for j in queue_order if j != job_id]
        queue_order.append(job_id)
        # The world changed: a closing Stop no longer covers this
        # job, so scheduling re-opens (emits_stop policies get to
        # re-close once it is placed again).
        stopped = False
        final_stop_asked = False
        n_kills[reason] += 1
        if domain is not None:
            domain_kills[domain] = domain_kills.get(domain, 0) + 1
        pending_restart[job_id] = len(preemptions)
        preemptions.append(
            PreemptionRecord(
                job_id=job_id,
                nodes=run.job.nodes,
                start_time=run.start_time,
                time=time,
                reason=reason,
                work_saved=saved,
                work_lost=elapsed - saved,
                domain=domain,
            )
        )
        # The killed job's COMPLETION event is still in the heap;
        # the completion handler drops it as stale (no matching
        # running entry / expected end).

    def apply_drain_start(idx: int) -> None:
        """Take the drain's nodes out of service, idle nodes first,
        preempting running jobs only when too few are idle. A
        domain-scoped drain takes its nodes from that domain's
        block (on clusters with node identity)."""
        drain = trace.drains[idx]
        tag = f"drain:{idx}"
        within: Optional[range] = None
        topo = getattr(sim.cluster, "topology", None)
        if drain.domain is not None and topo is not None:
            within = topo.domain_range(drain.domain)
        taken = 0
        target = min(drain.nodes, sim.cluster.total_nodes)
        if within is not None:
            target = min(target, len(within))
        while taken < target:
            if sim.cluster.drain_take_idle(tag, within):
                taken += 1
                continue
            victim = sim.cluster.drain_victim(within)
            if victim is None:
                break  # nothing left to take; partial drain
            kill_running(victim, drain.start, "drain", drain.domain)
        invalidate_view()

    #: Set by DRAIN_ANNOUNCE; grants the scheduler one decision
    #: query at the announcement even with an empty queue.
    announce_pending = False

    def process_events_at(time: float) -> None:
        nonlocal pending_arrivals, last_announce, announce_pending
        for event in events.pop_until(time):
            invalidate_view()
            if event.kind is EventKind.COMPLETION:
                run = running.get(event.job_id)
                if run is None or run.expected_end != event.time:
                    # Stale: the attempt this event belonged to was
                    # killed by a failure/drain/preemption.
                    continue
                drop_running(event.job_id)
                full = remaining.pop(event.job_id, run.job.duration)
                records.append(
                    JobRecord(
                        run.job,
                        run.start_time,
                        event.time,
                        killed=run.runtime < full,
                    )
                )
                completed_ids.append(event.job_id)
                completed_set.add(event.job_id)
                # Release any dependents this completion unblocks.
                for dep_id in dependents.get(event.job_id, ()):
                    job = blocked.get(dep_id)
                    if job is not None and deps_met(job):
                        del blocked[dep_id]
                        queued[job.job_id] = job
                        queue_order.append(job.job_id)
            elif event.kind is EventKind.ARRIVAL:
                job = jobs_by_id[event.job_id]
                pending_arrivals -= 1
                if deps_met(job):
                    queued[job.job_id] = job
                    queue_order.append(job.job_id)
                else:
                    blocked[job.job_id] = job
            elif event.kind is EventKind.NODE_FAILURE:
                failure = trace.failures[event.job_id]
                # A label a domain shock already downed is a no-op
                # (its paired repair is skipped too, via
                # effective_failures): only fresh nodes strike.
                if failure.node not in failed_down_nodes:
                    victim = sim.cluster.slot_victim(failure.node)
                    if victim is not None:
                        kill_running(victim, event.time, "failure")
                    if sim.cluster.mark_failed(failure.node):
                        effective_failures.add(event.job_id)
                        failed_down_nodes.add(failure.node)
            elif event.kind is EventKind.NODE_REPAIR:
                if event.job_id in effective_failures:
                    effective_failures.discard(event.job_id)
                    node = trace.failures[event.job_id].node
                    failed_down_nodes.discard(node)
                    sim.cluster.mark_repaired(node)
            elif event.kind is EventKind.DOMAIN_FAILURE:
                shock = trace.domain_failures[event.job_id]
                # One event, N nodes, pinned ordering: victims are
                # resolved over the pre-shock allocation layout in
                # first-struck-slot order, then evicted together —
                # a job spanning several struck nodes dies exactly
                # once, and later victims never shift into earlier
                # slots mid-event. Labels already down (a prior
                # single-node failure or overlapping shock) are
                # skipped entirely, so the aggregate pool never
                # charges a fresh free node for an already-offline
                # label.
                fresh = [
                    node
                    for node in shock.nodes
                    if node not in failed_down_nodes
                ]
                victims: list[int] = []
                seen_victims: set[int] = set()
                for node in fresh:
                    victim = sim.cluster.slot_victim(node)
                    if victim is not None and victim not in seen_victims:
                        seen_victims.add(victim)
                        victims.append(victim)
                for victim in victims:
                    kill_running(
                        victim, event.time, "failure", shock.domain
                    )
                taken = [
                    node
                    for node in fresh
                    if sim.cluster.mark_failed(node)
                ]
                if taken:
                    domain_offline[event.job_id] = taken
                    failed_down_nodes.update(taken)
            elif event.kind is EventKind.DOMAIN_REPAIR:
                for node in domain_offline.pop(event.job_id, ()):
                    failed_down_nodes.discard(node)
                    sim.cluster.mark_repaired(node)
            elif event.kind is EventKind.DRAIN_START:
                apply_drain_start(event.job_id)
            elif event.kind is EventKind.DRAIN_END:
                sim.cluster.drain_release(f"drain:{event.job_id}")
            else:  # DRAIN_ANNOUNCE
                last_announce = event.time
                announce_pending = True
                # preempt_migrate: implicit checkpoint of all
                # running work at the announcement (handled lazily
                # in kill_running via ``last_announce``). The
                # ``announce_pending`` flag additionally grants one
                # reactive decision query even when the queue is
                # empty (see the main loop) — otherwise a fully
                # busy cluster could never voluntarily preempt
                # ahead of the window.

    def build_view() -> SystemView:
        nonlocal view_cache, running_snapshot, running_sorted_snapshot
        if view_cache is not None:
            return view_cache
        next_arrival: Optional[float] = None
        next_completion: Optional[float] = None
        if pending_arrivals:
            next_arrival = arrival_times[len(arrival_times) - pending_arrivals]
        if running:
            next_completion = min(r.expected_end for r in running.values())
        if len(queue_order) > 2 * len(queued) + 8:
            queue_order[:] = [jid for jid in queue_order if jid in queued]
        ordered_queue = tuple(queued[jid] for jid in queue_order if jid in queued)
        if running_snapshot is None:
            running_snapshot = tuple(running.values())
            running_sorted_snapshot = tuple(
                running[jid] for (_, _, jid) in walltime_order
            )
        drains: tuple[DrainWindow, ...] = ()
        if trace is not None and trace.drains:
            drains = tuple(
                d
                for d in trace.drains
                if d.announce_time <= now < d.end
            )
        # Per-domain capacity is computed only when real domains
        # exist: flat-topology (and legacy) runs never pay the
        # per-rack reduction, keeping the hot path identical.
        topo: Optional[ClusterTopology] = getattr(
            sim.cluster, "topology", None
        )
        domain_free: tuple[int, ...] = ()
        if topo is not None and not topo.is_flat:
            domain_free = tuple(sim.cluster.domain_free_nodes())
        view_cache = SystemView(
            now=now,
            queued=ordered_queue,
            running=running_snapshot,
            completed_ids=CompletedLog(completed_ids),
            free_nodes=sim.cluster.free_nodes,
            free_memory_gb=sim.cluster.free_memory_gb,
            total_nodes=sim.cluster.total_nodes,
            total_memory_gb=sim.cluster.total_memory_gb,
            pending_arrivals=pending_arrivals,
            next_arrival_time=next_arrival,
            next_completion_time=next_completion,
            blocked_jobs=len(blocked),
            nodes_offline=getattr(sim.cluster, "offline_nodes", 0),
            upcoming_drains=drains,
            # Snapshot copy: views are immutable snapshots, and the
            # live dict mutates on every kill/completion — a
            # retained view must keep reading its own instant.
            # (Empty on undisrupted runs: shared constant, no
            # allocation on the legacy path.)
            remaining_runtimes=(
                dict(remaining) if remaining else _NO_REMAINING
            ),
            topology=topo,
            domain_free_nodes=domain_free,
        )
        object.__setattr__(
            view_cache, "_running_sorted", running_sorted_snapshot
        )
        return view_cache

    final_stop_asked = False

    while True:
        process_events_at(now)

        # A drain was just announced and nothing is queued: the
        # normal decision phase below would skip the scheduler
        # entirely, so a preempt-migrate policy on a fully busy
        # cluster could never react before the window starts.
        # Grant one query (within the decision budget); an accepted
        # PreemptJob requeues its victim and the regular phase then
        # takes over (letting the policy keep preempting). With
        # jobs queued the regular phase consults the scheduler
        # anyway.
        if (
            announce_pending
            and running
            and not queued
            and not stopped
            and len(decisions) < decision_budget
        ):
            view = build_view()
            action = sim.scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued,
                cluster=sim.cluster,
                all_scheduled=view.all_jobs_scheduled,
                running=running,
            )
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    meta=dict(sim.scheduler.decision_meta()),
                )
            )
            if not result.ok:
                sim.scheduler.on_rejection(
                    action, result.violations, view
                )
            elif action.kind is ActionKind.PREEMPT:
                kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
            elif action.kind is ActionKind.STOP:
                stopped = True
        announce_pending = False

        # Decision phase: keep querying while jobs are queued and the
        # scheduler keeps placing them (all within the same timestep).
        retries = 0
        while queued and not stopped:
            if len(decisions) >= decision_budget:
                raise SimulationError(
                    f"decision budget exhausted ({decision_budget}); "
                    f"scheduler {sim.scheduler.name!r} appears stuck"
                )
            view = build_view()
            action = sim.scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued,
                cluster=sim.cluster,
                all_scheduled=view.all_jobs_scheduled,
                running=running,
            )
            meta = dict(sim.scheduler.decision_meta())
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    retry_index=retries,
                    meta=meta,
                )
            )
            if not result.ok:
                sim.scheduler.on_rejection(action, result.violations, view)
                retries += 1
                if retries > sim.max_retries:
                    break  # force a delay
                continue

            retries = 0
            if action.kind is ActionKind.DELAY:
                break
            if action.kind is ActionKind.STOP:
                stopped = True
                break
            if action.kind is ActionKind.PREEMPT:
                # Voluntary suspend: clean checkpoint, requeue.
                kill_running(action.job_id, now, "preempt")  # type: ignore[arg-type]
                continue
            # StartJob / BackfillJob
            job = queued.pop(action.job_id)  # type: ignore[arg-type]
            start_running(job, now)

        # Agents that narrate a closing Stop (the paper's ReAct agent
        # emits Stop once every job has been scheduled, possibly while
        # jobs are still running — Fig. 2) get one final query.
        if (
            not queued
            and not blocked
            and pending_arrivals == 0
            and not stopped
            and not final_stop_asked
            and getattr(sim.scheduler, "emits_stop", False)
        ):
            final_stop_asked = True
            view = build_view()
            action = sim.scheduler.decide(view)
            result = checker.validate(
                action,
                queued=queued,
                cluster=sim.cluster,
                all_scheduled=True,
            )
            decisions.append(
                DecisionRecord(
                    time=now,
                    action=action,
                    accepted=result.ok,
                    violations=result.violations,
                    meta=dict(sim.scheduler.decision_meta()),
                )
            )
            if result.ok and action.kind is ActionKind.STOP:
                stopped = True

        # Termination / time advance.
        if (
            not queued
            and not running
            and not blocked
            and pending_arrivals == 0
        ):
            break
        if blocked and not queued and not running and pending_arrivals == 0:
            # Cannot happen with acyclic dependencies: a blocked
            # job's dependency chain always bottoms out in a
            # runnable job. Defensive guard.
            raise SimulationError(
                f"{len(blocked)} jobs blocked on dependencies with "
                "nothing running — dependency graph is inconsistent"
            )
        if stopped and not running and pending_arrivals == 0 and queued:
            # Stop accepted only when all_scheduled; defensive.
            raise SimulationError("stopped with jobs still queued")
        next_time = events.peek_time()
        if next_time is None:
            if queued and not stopped:
                raise SimulationError(
                    f"deadlock at t={now}: {len(queued)} jobs queued, "
                    "no running jobs, no pending arrivals, and the "
                    f"scheduler {sim.scheduler.name!r} keeps delaying"
                )
            break
        if next_time > now:
            invalidate_view()  # views carry `now`
            now = next_time

    result = ScheduleResult(
        records=records,
        decisions=decisions,
        total_nodes=sim.cluster.total_nodes,
        total_memory_gb=sim.cluster.total_memory_gb,
        scheduler_name=sim.scheduler.name,
        preemptions=preemptions,
        disrupted=disrupted,
    )
    if disrupted:
        result.extras["disruption_kills"] = dict(n_kills)
        # Blast-radius bookkeeping only for traces that actually
        # carry domain-level events: zero-correlation runs keep the
        # exact PR-3 extras (and therefore metric columns).
        n_domain_events = len(trace.domain_failures) + sum(
            1 for d in trace.drains if d.domain is not None
        )
        if n_domain_events:
            result.extras["domain_events"] = n_domain_events
            result.extras["domain_kills"] = dict(
                sorted(domain_kills.items())
            )
    collect = getattr(sim.scheduler, "collect_extras", None)
    if collect is not None:
        result.extras.update(collect())
    return result
