"""Job model for the HPC simulator.

A job in the paper (§2.1, §3.3) is characterized by a submit time, a
duration ``d_j`` (the true runtime), a requested node count ``n_j`` and a
memory requirement ``m_j`` in GB, plus user metadata used for the
per-user fairness objective. We additionally carry ``walltime`` — the
*requested* runtime estimate — because backfilling baselines (EASY) and
real traces (Polaris) distinguish requested from actual runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    #: Known to the workload but not yet submitted (arrival event pending).
    PENDING = "pending"
    #: Submitted and waiting in the queue.
    QUEUED = "queued"
    #: Resources allocated; executing non-preemptively.
    RUNNING = "running"
    #: Finished; resources released.
    COMPLETED = "completed"


@dataclass(frozen=True)
class Job:
    """An immutable HPC job description.

    Parameters
    ----------
    job_id:
        Unique integer identifier within a workload.
    submit_time:
        Arrival time in seconds from workload start. The paper's static
        experiments (§3.3) submit everything at ``t = 0``; the scenario
        workloads (§3.1) use Poisson arrivals.
    duration:
        True runtime ``d_j`` in seconds, used by the simulator to
        schedule the completion event.
    nodes:
        Requested node count ``n_j``.
    memory_gb:
        Requested memory ``m_j`` in GB (aggregate across the job).
    walltime:
        Requested runtime estimate in seconds. Defaults to ``duration``
        (perfect estimates), which matches the paper's synthetic
        scenarios; trace-driven workloads may set it larger.
    user / group / name:
        Metadata used for per-user fairness and reporting.
    """

    job_id: int
    submit_time: float
    duration: float
    nodes: int
    memory_gb: float
    walltime: float = field(default=-1.0)
    user: str = "user_0"
    group: str = "group_0"
    name: str = ""
    #: Ids of jobs that must *complete* before this one becomes
    #: eligible to schedule (the paper's §6 future-work constraint;
    #: see :func:`validate_dependencies`). Empty for independent jobs.
    depends_on: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.walltime < 0:
            object.__setattr__(self, "walltime", float(self.duration))
        if self.job_id < 0:
            raise ValueError(f"job_id must be non-negative, got {self.job_id}")
        if self.submit_time < 0:
            raise ValueError(
                f"submit_time must be non-negative, got {self.submit_time}"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.nodes <= 0:
            raise ValueError(f"nodes must be positive, got {self.nodes}")
        if self.memory_gb < 0:
            raise ValueError(
                f"memory_gb must be non-negative, got {self.memory_gb}"
            )
        if not isinstance(self.depends_on, tuple):
            object.__setattr__(self, "depends_on", tuple(self.depends_on))
        if self.job_id in self.depends_on:
            raise ValueError(f"job {self.job_id} cannot depend on itself")

    def with_submit_time(self, submit_time: float) -> "Job":
        """Return a copy with a different submit time (used by arrival
        process rewriting and the all-at-zero experimental mode)."""
        return replace(self, submit_time=float(submit_time))

    def scaled(self, duration_factor: float = 1.0) -> "Job":
        """Return a copy with duration (and walltime) scaled — handy for
        sensitivity sweeps."""
        return replace(
            self,
            duration=self.duration * duration_factor,
            walltime=self.walltime * duration_factor,
        )

    @property
    def node_seconds(self) -> float:
        """Node-seconds of work, the numerator of node utilization."""
        return self.nodes * self.duration

    @property
    def memory_gb_seconds(self) -> float:
        """GB-seconds of memory occupancy."""
        return self.memory_gb * self.duration

    def describe(self) -> str:
        """One-line human-readable description used in prompts."""
        return (
            f"Job {self.job_id}: {self.nodes} nodes, "
            f"{self.memory_gb:g} GB, walltime={self.walltime:g}s, "
            f"user={self.user}"
        )


def validate_workload(jobs: Iterable[Job]) -> list[Job]:
    """Validate a collection of jobs as a coherent workload.

    Ensures job ids are unique. Returns the jobs sorted by
    ``(submit_time, job_id)``, the canonical workload ordering.

    Raises
    ------
    ValueError
        If two jobs share an id.
    """
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    seen: set[int] = set()
    for job in ordered:
        if job.job_id in seen:
            raise ValueError(f"duplicate job_id {job.job_id} in workload")
        seen.add(job.job_id)
    return ordered


def validate_dependencies(jobs: Iterable[Job]) -> None:
    """Validate the dependency structure of a workload.

    Every ``depends_on`` id must exist in the workload, and the
    dependency graph must be acyclic (a cycle would deadlock any
    non-preemptive scheduler). Raises ``ValueError`` otherwise.
    """
    by_id = {j.job_id: j for j in jobs}
    for job in by_id.values():
        for dep in job.depends_on:
            if dep not in by_id:
                raise ValueError(
                    f"job {job.job_id} depends on unknown job {dep}"
                )
    # Iterative three-colour DFS for cycle detection.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {jid: WHITE for jid in by_id}
    for root in by_id:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, idx = stack[-1]
            deps = by_id[node].depends_on
            if idx < len(deps):
                stack[-1] = (node, idx + 1)
                child = deps[idx]
                if colour[child] == GREY:
                    raise ValueError(
                        f"dependency cycle involving jobs {node} and {child}"
                    )
                if colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()


def screen_unschedulable(
    jobs: Iterable[Job], total_nodes: int, total_memory_gb: float
) -> tuple[list[Job], list[Job]]:
    """Split jobs into (schedulable, unschedulable) for a given cluster.

    A job whose request exceeds the *total* cluster capacity can never
    start; admitting one would deadlock any non-preemptive scheduler.
    The paper's generator never produces such jobs; traces might.
    """
    ok: list[Job] = []
    bad: list[Job] = []
    for job in jobs:
        if job.nodes > total_nodes or job.memory_gb > total_memory_gb:
            bad.append(job)
        else:
            ok.append(job)
    return ok, bad
