"""ASCII Gantt rendering of schedules.

A quick visual audit of what a scheduler actually did — convoy effects,
backfilled gaps and packing quality are all visible at a glance in the
terminal, which is as close to the paper's schedule illustrations as a
text interface gets.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.schedule import ScheduleResult


def render_gantt(
    result: ScheduleResult,
    *,
    width: int = 72,
    max_jobs: Optional[int] = 40,
    char: str = "█",
) -> str:
    """Render one row per job: submit→start as dots (queued), start→end
    as blocks (running), annotated with node counts.

    Parameters
    ----------
    width:
        Character width of the timeline.
    max_jobs:
        Truncate to the first *max_jobs* rows by start time
        (``None`` = everything).
    """
    if not result.records:
        return "(empty schedule)"
    records = sorted(result.records, key=lambda r: (r.start_time, r.job.job_id))
    if max_jobs is not None:
        omitted = max(0, len(records) - max_jobs)
        records = records[:max_jobs]
    else:
        omitted = 0

    t0 = min(r.job.submit_time for r in records)
    t1 = max(r.end_time for r in records)
    span = max(t1 - t0, 1e-9)

    def col(t: float) -> int:
        return int(round((t - t0) / span * (width - 1)))

    id_w = max(len(str(r.job.job_id)) for r in records)
    lines = [
        f"timeline: t={t0:g}s .. t={t1:g}s "
        f"({span:g}s across {width} cols; '.' queued, '{char}' running)"
    ]
    for rec in records:
        row = [" "] * width
        submit_col = col(rec.job.submit_time)
        start_col = col(rec.start_time)
        end_col = max(col(rec.end_time), start_col + 1)
        for i in range(submit_col, start_col):
            row[i] = "."
        for i in range(start_col, min(end_col, width)):
            row[i] = char
        lines.append(
            f"job {rec.job.job_id:>{id_w}} |{''.join(row)}| "
            f"{rec.job.nodes}n"
        )
    if omitted:
        lines.append(f"... {omitted} more jobs not shown")
    return "\n".join(lines)


def utilization_sparkline(
    result: ScheduleResult, *, width: int = 72
) -> str:
    """One-line node-utilization timeline using eighth-block glyphs."""
    if not result.records:
        return "(empty schedule)"
    t0 = min(r.job.submit_time for r in result.records)
    t1 = max(r.end_time for r in result.records)
    span = max(t1 - t0, 1e-9)
    buckets = [0.0] * width
    for rec in result.records:
        a = (rec.start_time - t0) / span * width
        b = (rec.end_time - t0) / span * width
        lo, hi = int(a), min(int(b) + 1, width)
        for i in range(lo, hi):
            cell_a, cell_b = i, i + 1
            overlap = max(0.0, min(b, cell_b) - max(a, cell_a))
            buckets[i] += overlap * rec.job.nodes
    glyphs = " ▁▂▃▄▅▆▇█"
    cap = float(result.total_nodes)
    chars = []
    for value in buckets:
        frac = min(value / cap, 1.0)
        chars.append(glyphs[int(round(frac * (len(glyphs) - 1)))])
    return "util |" + "".join(chars) + "|"
