"""Workload characterization.

Summaries of a job list's demand structure — the quantities that
predict how much room a scheduler has to differentiate (the paper's
flat scenarios are exactly the low-offered-load ones). Used by tests,
reports and for sanity-checking generated scenarios against their
specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.job import Job
from repro.workloads.generator import workload_heterogeneity


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate characterization of one workload instance."""

    n_jobs: int
    n_users: int
    duration_mean_s: float
    duration_cv: float
    nodes_mean: float
    nodes_max: int
    memory_mean_gb: float
    total_node_seconds: float
    arrival_span_s: float
    #: Offered load: node-seconds of demand per node-second of capacity
    #: over the arrival span. > 1 means the queue must grow.
    offered_load: float
    heterogeneity: float
    #: Fraction of jobs requesting more than half the partition.
    large_job_fraction: float

    def summary(self) -> str:
        return (
            f"{self.n_jobs} jobs / {self.n_users} users; "
            f"duration {self.duration_mean_s:.0f}s (CV {self.duration_cv:.2f}); "
            f"nodes mean {self.nodes_mean:.1f} max {self.nodes_max}; "
            f"offered load {self.offered_load:.2f}; "
            f"heterogeneity {self.heterogeneity:.2f}"
        )


def characterize(
    jobs: Sequence[Job],
    *,
    total_nodes: int = 256,
) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for *jobs* against a partition of
    *total_nodes* (paper default 256)."""
    if not jobs:
        return WorkloadStats(
            n_jobs=0, n_users=0, duration_mean_s=0.0, duration_cv=0.0,
            nodes_mean=0.0, nodes_max=0, memory_mean_gb=0.0,
            total_node_seconds=0.0, arrival_span_s=0.0, offered_load=0.0,
            heterogeneity=0.0, large_job_fraction=0.0,
        )
    durations = np.array([j.duration for j in jobs])
    nodes = np.array([j.nodes for j in jobs])
    memory = np.array([j.memory_gb for j in jobs])
    submits = np.array([j.submit_time for j in jobs])
    node_seconds = float((nodes * durations).sum())
    span = float(submits.max() - submits.min())
    # Demand pressure over the window work keeps arriving. For the
    # all-at-zero case use the minimal-makespan window instead.
    window = span if span > 0 else node_seconds / total_nodes
    offered = node_seconds / (total_nodes * window) if window > 0 else 0.0
    mean_d = float(durations.mean())
    return WorkloadStats(
        n_jobs=len(jobs),
        n_users=len({j.user for j in jobs}),
        duration_mean_s=mean_d,
        duration_cv=float(durations.std() / mean_d) if mean_d > 0 else 0.0,
        nodes_mean=float(nodes.mean()),
        nodes_max=int(nodes.max()),
        memory_mean_gb=float(memory.mean()),
        total_node_seconds=node_seconds,
        arrival_span_s=span,
        offered_load=offered,
        heterogeneity=workload_heterogeneity(list(jobs)),
        large_job_fraction=float((nodes > total_nodes / 2).mean()),
    )
