"""Statistical comparison of schedulers across workload seeds.

The paper's §4 robustness study repeats one workload; this utility
answers the complementary question — does a scheduler's advantage hold
*across workload draws*? It runs two policies over N seeded instances
of a scenario and reports per-metric mean paired differences with a
Wilcoxon signed-rank test (scipy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.normalize import LOWER_BETTER
from repro.metrics.objectives import METRIC_NAMES


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing two schedulers on one metric."""

    metric: str
    mean_a: float
    mean_b: float
    mean_diff: float
    #: Wilcoxon signed-rank p-value (NaN when all differences are 0).
    p_value: float
    n_seeds: int

    @property
    def direction(self) -> str:
        """'a', 'b' or 'tie' — which scheduler is better on this metric
        (orientation-aware)."""
        if self.mean_diff == 0.0:
            return "tie"
        a_better = self.mean_diff < 0
        if self.metric in LOWER_BETTER:
            return "a" if a_better else "b"
        return "b" if a_better else "a"


def compare_schedulers(
    scenario: str,
    n_jobs: int,
    scheduler_a: str,
    scheduler_b: str,
    *,
    n_seeds: int = 10,
    metrics: Sequence[str] = METRIC_NAMES,
    scheduler_seed: int = 0,
) -> dict[str, PairedComparison]:
    """Paired comparison of two schedulers over *n_seeds* workload draws.

    Both schedulers run on identical instances per seed (paired design).
    Returns one :class:`PairedComparison` per metric;
    ``mean_diff = mean(a) − mean(b)``.
    """
    from scipy import stats

    # Imported lazily: repro.experiments builds on repro.analysis, so a
    # top-level import here would be circular.
    from repro.experiments.runner import run_single

    if n_seeds < 2:
        raise ValueError("n_seeds must be at least 2")
    values_a: dict[str, list[float]] = {m: [] for m in metrics}
    values_b: dict[str, list[float]] = {m: [] for m in metrics}
    for seed in range(n_seeds):
        run_a = run_single(
            scenario, n_jobs, scheduler_a,
            workload_seed=seed, scheduler_seed=scheduler_seed,
        )
        run_b = run_single(
            scenario, n_jobs, scheduler_b,
            workload_seed=seed, scheduler_seed=scheduler_seed,
        )
        for metric in metrics:
            values_a[metric].append(run_a.values[metric])
            values_b[metric].append(run_b.values[metric])

    out: dict[str, PairedComparison] = {}
    for metric in metrics:
        a = np.array(values_a[metric])
        b = np.array(values_b[metric])
        diffs = a - b
        if np.allclose(diffs, 0.0):
            p = float("nan")
        else:
            p = float(stats.wilcoxon(a, b, zero_method="zsplit").pvalue)
        out[metric] = PairedComparison(
            metric=metric,
            mean_a=float(a.mean()),
            mean_b=float(b.mean()),
            mean_diff=float(diffs.mean()),
            p_value=p,
            n_seeds=n_seeds,
        )
    return out


def render_comparison(
    comparisons: dict[str, PairedComparison],
    label_a: str,
    label_b: str,
) -> str:
    """ASCII table of a :func:`compare_schedulers` result."""
    lines = [
        f"{'metric':22s} {label_a[:12]:>12s} {label_b[:12]:>12s} "
        f"{'diff':>10s} {'p':>8s} {'better':>8s}"
    ]
    for comp in comparisons.values():
        p_text = "—" if np.isnan(comp.p_value) else f"{comp.p_value:.4f}"
        better = {"a": label_a, "b": label_b, "tie": "tie"}[comp.direction]
        lines.append(
            f"{comp.metric:22s} {comp.mean_a:>12.4g} {comp.mean_b:>12.4g} "
            f"{comp.mean_diff:>10.4g} {p_text:>8s} {better[:8]:>8s}"
        )
    return "\n".join(lines)
