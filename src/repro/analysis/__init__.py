"""Statistical analysis utilities for experiment results."""

from repro.analysis.gantt import render_gantt, utilization_sparkline
from repro.analysis.significance import (
    PairedComparison,
    compare_schedulers,
    render_comparison,
)
from repro.analysis.stats import (
    BoxStats,
    LatencySummary,
    box_stats,
    summarize_latencies,
)
from repro.analysis.workload_stats import WorkloadStats, characterize

__all__ = [
    "BoxStats",
    "LatencySummary",
    "PairedComparison",
    "WorkloadStats",
    "box_stats",
    "characterize",
    "compare_schedulers",
    "render_comparison",
    "render_gantt",
    "summarize_latencies",
    "utilization_sparkline",
]
