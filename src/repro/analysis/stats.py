"""Distribution summaries: box-plot statistics and latency profiles.

Figure 7 presents box plots of normalized metrics over repeated runs;
Figures 5/6 present per-call latency distributions. These helpers
compute the matching numeric summaries (we render ASCII, not pixels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary with Tukey whiskers and outliers."""

    n: int
    median: float
    q1: float
    q3: float
    whisker_lo: float
    whisker_hi: float
    outliers: tuple[float, ...]
    mean: float
    std: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"median={self.median:.4g} IQR=[{self.q1:.4g}, {self.q3:.4g}] "
            f"whiskers=[{self.whisker_lo:.4g}, {self.whisker_hi:.4g}] "
            f"outliers={len(self.outliers)}"
        )


def box_stats(values: Sequence[float]) -> BoxStats:
    """Tukey box-plot statistics of *values*.

    Whiskers extend to the most extreme data point within 1.5·IQR of
    the quartiles; anything beyond is an outlier.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("box_stats requires at least one value")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    whisker_lo = float(inside.min()) if inside.size else float(arr.min())
    whisker_hi = float(inside.max()) if inside.size else float(arr.max())
    outliers = tuple(
        float(v) for v in np.sort(arr[(arr < lo_fence) | (arr > hi_fence)])
    )
    return BoxStats(
        n=int(arr.size),
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        whisker_lo=whisker_lo,
        whisker_hi=whisker_hi,
        outliers=outliers,
        mean=float(arr.mean()),
        std=float(arr.std()),
    )


@dataclass(frozen=True)
class LatencySummary:
    """Per-call latency distribution summary (Figs. 5/6 right panels)."""

    n_calls: int
    total_s: float
    mean_s: float
    median_s: float
    p90_s: float
    p99_s: float
    max_s: float
    std_s: float
    #: Calls slower than 100 s — the paper calls these out explicitly
    #: for O4-Mini on Heterogeneous Mix.
    over_100s: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"n={self.n_calls} total={self.total_s:.1f}s "
            f"median={self.median_s:.2f}s p90={self.p90_s:.2f}s "
            f"p99={self.p99_s:.2f}s max={self.max_s:.2f}s "
            f">100s: {self.over_100s}"
        )


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarize a list of per-call latencies (seconds)."""
    arr = np.asarray(list(latencies), dtype=float)
    if arr.size == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    p50, p90, p99 = np.percentile(arr, [50, 90, 99])
    return LatencySummary(
        n_calls=int(arr.size),
        total_s=float(arr.sum()),
        mean_s=float(arr.mean()),
        median_s=float(p50),
        p90_s=float(p90),
        p99_s=float(p99),
        max_s=float(arr.max()),
        std_s=float(arr.std()),
        over_100s=int((arr > 100.0).sum()),
    )
