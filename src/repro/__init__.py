"""repro — reproduction of "Evaluating the Efficacy of LLM-Based
Reasoning for Multiobjective HPC Job Scheduling" (SC 2025).

Quickstart
----------
>>> from repro import generate_workload, create_scheduler, simulate, compute_metrics
>>> jobs = generate_workload("heterogeneous_mix", n_jobs=60, seed=0)
>>> result = simulate(jobs, create_scheduler("claude-3.7-sim", seed=0))
>>> report = compute_metrics(result)

Subpackages
-----------
``repro.sim``
    Discrete event HPC cluster simulator.
``repro.workloads``
    The paper's seven workload scenarios + Polaris trace substitute.
``repro.schedulers``
    FCFS, SJF, EASY backfilling, the OR-Tools-substitute optimizer.
``repro.core``
    The ReAct LLM scheduling agent (prompting, scratchpad, constraint
    feedback, simulated reasoning backends).
``repro.metrics``
    The seven evaluation objectives and FCFS normalization.
``repro.experiments``
    Per-figure reproduction drivers and the CLI.
``repro.analysis``
    Distribution/box-plot statistics utilities.
"""

from repro.core import create_llm_scheduler
from repro.metrics import compute_metrics, normalize_to_baseline
from repro.schedulers import available_schedulers, create_scheduler
from repro.sim.disruptions import (
    DISRUPTION_PRESETS,
    DisruptionSpec,
    DisruptionTrace,
)
from repro.sim.simulator import HPCSimulator, simulate
from repro.workloads import generate_workload

__version__ = "1.0.0"

__all__ = [
    "DISRUPTION_PRESETS",
    "DisruptionSpec",
    "DisruptionTrace",
    "HPCSimulator",
    "available_schedulers",
    "compute_metrics",
    "create_llm_scheduler",
    "create_scheduler",
    "generate_workload",
    "normalize_to_baseline",
    "simulate",
    "__version__",
]
