"""Command-line interface: ``repro-sched``.

Subcommands regenerate each paper figure's data as an ASCII table, run
ad-hoc single simulations, and list registered scenarios/schedulers::

    repro-sched fig3                 # six-scenario comparison
    repro-sched fig4 --sizes 10 40 100
    repro-sched fig5 | fig6 | fig7 | fig8
    repro-sched fig2                 # reasoning traces
    repro-sched run --scenario long_job_dominant --scheduler claude-3.7-sim -n 60
    repro-sched matrix --scenarios adversarial resource_sparse --sizes 20 40 \
        --workers 4 --out runs.jsonl --resume
    repro-sched report --store runs.jsonl
    repro-sched store doctor runs.jsonl
    repro-sched list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import figures, report
from repro.experiments.parallel import expand_cells, run_matrix_parallel
from repro.experiments.runner import DEFAULT_SCHEDULERS, run_single
from repro.experiments.store import FailedCell
from repro.experiments.storage import open_store
from repro.metrics.normalize import normalize_to_baseline
from repro.schedulers.registry import available_schedulers
from repro.sim.disruptions import (
    DISRUPTION_PRESETS,
    RESTART_POLICIES,
    DisruptionSpec,
    get_disruption_preset,
)
from repro.sim.topology import ClusterTopology
from repro.workloads.scenarios import CLUSTER_NODES, SCENARIOS


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="workload seed")
    p.add_argument(
        "--scheduler-seed", type=int, default=0, help="scheduler RNG seed"
    )


def _add_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine",
        choices=["soa", "object"],
        default="soa",
        help=(
            "simulator execution mode: the flat-array core (soa, "
            "default) or the object-graph reference loop — the engines "
            "are digest-pinned byte-identical, so this never changes "
            "results, only speed"
        ),
    )


def _add_disruption_args(p: argparse.ArgumentParser) -> None:
    """Disruption/recovery flags shared by ``run`` and ``matrix``."""
    g = p.add_argument_group("disruptions")
    g.add_argument(
        "--disruptions",
        metavar="PRESET",
        default=None,
        choices=sorted(DISRUPTION_PRESETS),
        help=(
            "named disruption regime "
            f"({', '.join(sorted(DISRUPTION_PRESETS))}); individual "
            "--mtbf/--drain-* flags override preset fields"
        ),
    )
    g.add_argument(
        "--mtbf", type=float, default=None,
        help="per-node mean time between failures (seconds)",
    )
    g.add_argument(
        "--mttr", type=float, default=None,
        help="mean time to repair a failed node (seconds; default 900)",
    )
    g.add_argument(
        "--failure-model", choices=["exponential", "weibull"], default=None,
        help="node up-time distribution (default exponential)",
    )
    g.add_argument(
        "--drain-every", type=float, default=None,
        help="period between maintenance drains (seconds)",
    )
    g.add_argument(
        "--drain-nodes", type=int, default=None,
        help="nodes taken per drain window",
    )
    g.add_argument(
        "--drain-duration", type=float, default=None,
        help="drain window length (seconds; default 3600)",
    )
    g.add_argument(
        "--drain-lead", type=float, default=None,
        help="announcement lead before each drain (seconds; default 1800)",
    )
    g.add_argument(
        "--drain-first", type=float, default=None,
        help=(
            "offset of the first drain window (seconds; default 7200 — "
            "lower it for short workloads or no window will fit the "
            "horizon)"
        ),
    )
    g.add_argument(
        "--rack-mtbf", type=float, default=None,
        help=(
            "mean time between correlated shocks per failure domain "
            "(seconds); enables whole-block rack/switch failures"
        ),
    )
    g.add_argument(
        "--correlation", type=float, default=None,
        help=(
            "fraction of the struck domain each shock kills, in (0, 1] "
            "(default 1.0: the whole rack/switch group)"
        ),
    )
    g.add_argument(
        "--correlation-level", choices=["rack", "switch"], default=None,
        help="hierarchy level the shock process runs at (default rack)",
    )
    g.add_argument(
        "--disruption-seed", type=int, default=None,
        help="seed for the failure RNG streams (default 0)",
    )
    t = p.add_argument_group("topology")
    t.add_argument(
        "--rack-size", type=int, default=None,
        help=(
            f"nodes per rack over the {CLUSTER_NODES}-node partition "
            "(default: flat — no failure domains)"
        ),
    )
    t.add_argument(
        "--racks-per-switch", type=int, default=None,
        help="racks per switch group (default 1; requires --rack-size)",
    )
    g.add_argument(
        "--restart-policy",
        choices=[p.replace("_", "-") for p in RESTART_POLICIES],
        default="resubmit",
        help="what killed jobs keep (default resubmit: nothing)",
    )
    g.add_argument(
        "--checkpoint-interval", type=float, default=None,
        help=(
            "seconds between periodic checkpoints (required for "
            "--restart-policy checkpoint)"
        ),
    )


def _add_anneal_window(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--anneal-window",
        type=int,
        default=None,
        metavar="W",
        help=(
            "windowed replanning for the annealing optimizer: search "
            "only the first W positions of the priority order and "
            "freeze the tail, bounding per-move packing work at large "
            "queues (min 2; applies to window-aware schedulers only "
            "and suffixes their recorded name with @wW)"
        ),
    )


class DisruptionArgsError(ValueError):
    """Invalid disruption flag combination (reported as a friendly
    CLI error, not a traceback)."""


def _check_anneal_window(args) -> None:
    """Friendly validation for ``--anneal-window`` (the config would
    reject it anyway, but deep inside a worker process)."""
    if args.anneal_window is not None and args.anneal_window < 2:
        raise DisruptionArgsError("--anneal-window must be at least 2")


def _check_fault_args(args) -> None:
    """Friendly validation for the fault-tolerance flags."""
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        raise DisruptionArgsError("--cell-timeout must be positive")
    if args.max_retries < 0:
        raise DisruptionArgsError("--max-retries must be >= 0")
    if args.retry_backoff is not None and args.retry_backoff < 0:
        raise DisruptionArgsError("--retry-backoff must be >= 0")
    if args.cell_timeout is not None and args.workers == 1:
        raise DisruptionArgsError(
            "--cell-timeout needs --workers >= 2: an inline sweep "
            "cannot preempt its own process"
        )


def _build_disruption_spec(args) -> Optional[DisruptionSpec]:
    """Combine a preset with flag overrides; None when undisrupted.

    Raises :class:`DisruptionArgsError` on invalid combinations
    (e.g. ``--drain-every`` without ``--drain-nodes``, or
    ``--restart-policy checkpoint`` without ``--checkpoint-interval``).
    """
    if (
        args.restart_policy.replace("-", "_") == "checkpoint"
        and args.checkpoint_interval is None
    ):
        raise DisruptionArgsError(
            "--restart-policy checkpoint requires --checkpoint-interval"
        )
    if args.checkpoint_interval is not None and args.checkpoint_interval <= 0:
        raise DisruptionArgsError("--checkpoint-interval must be positive")
    base = (
        get_disruption_preset(args.disruptions)
        if args.disruptions
        else DisruptionSpec()
    )
    overrides = {}
    if args.mtbf is not None:
        overrides["mtbf"] = args.mtbf
    if args.mttr is not None:
        overrides["mttr"] = args.mttr
    if args.failure_model is not None:
        overrides["failure_model"] = args.failure_model
    if args.drain_every is not None:
        overrides["drain_every"] = args.drain_every
    if args.drain_nodes is not None:
        overrides["drain_nodes"] = args.drain_nodes
    if args.drain_duration is not None:
        overrides["drain_duration"] = args.drain_duration
    if args.drain_lead is not None:
        overrides["drain_lead"] = args.drain_lead
    if args.drain_first is not None:
        overrides["drain_first"] = args.drain_first
    if args.rack_mtbf is not None:
        overrides["rack_mtbf"] = args.rack_mtbf
    if args.correlation is not None:
        overrides["correlation"] = args.correlation
    if args.correlation_level is not None:
        overrides["correlation_level"] = args.correlation_level
    if args.disruption_seed is not None:
        overrides["seed"] = args.disruption_seed
    if overrides:
        import dataclasses

        try:
            base = dataclasses.replace(base, **overrides)
        except ValueError as exc:
            raise DisruptionArgsError(str(exc)) from exc
    if (
        (args.correlation is not None or args.correlation_level is not None)
        and base.rack_mtbf is None
    ):
        raise DisruptionArgsError(
            "--correlation/--correlation-level need --rack-mtbf (or a "
            "correlated preset) to have any effect"
        )
    return base if base else None


def _build_topology(args) -> Optional[ClusterTopology]:
    """Topology flags → :class:`ClusterTopology` over the paper's
    partition; ``None`` (flat) when no flag was given."""
    if args.rack_size is None:
        if args.racks_per_switch is not None:
            raise DisruptionArgsError(
                "--racks-per-switch requires --rack-size"
            )
        return None
    try:
        return ClusterTopology(
            n_nodes=CLUSTER_NODES,
            rack_size=args.rack_size,
            racks_per_switch=(
                1
                if args.racks_per_switch is None
                else args.racks_per_switch
            ),
        )
    except ValueError as exc:
        raise DisruptionArgsError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduction harness for 'Evaluating the Efficacy of "
            "LLM-Based Reasoning for Multiobjective HPC Job Scheduling'"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("fig2", help="representative reasoning traces")
    p2.add_argument("--model", default="claude-3.7-sim")
    p2.add_argument("--n-jobs", type=int, default=20)
    _add_common(p2)

    p3 = sub.add_parser("fig3", help="six scenarios × 60 jobs")
    p3.add_argument("--n-jobs", type=int, default=60)
    _add_common(p3)

    p4 = sub.add_parser("fig4", help="scalability on heterogeneous mix")
    p4.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 40, 60, 80, 100]
    )
    _add_common(p4)

    p5 = sub.add_parser("fig5", help="overhead per scenario (60 jobs)")
    p5.add_argument("--n-jobs", type=int, default=60)
    _add_common(p5)

    p6 = sub.add_parser("fig6", help="overhead scaling with queue size")
    p6.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 20, 40, 60, 80, 100]
    )
    _add_common(p6)

    p7 = sub.add_parser("fig7", help="robustness over repetitions")
    p7.add_argument("--n-jobs", type=int, default=100)
    p7.add_argument("--repeats", type=int, default=5)
    _add_common(p7)

    p8 = sub.add_parser("fig8", help="Polaris trace evaluation")
    p8.add_argument("--n-jobs", type=int, default=100)
    p8.add_argument("--trace-seed", type=int, default=2024)
    _add_common(p8)

    pr = sub.add_parser("run", help="one scenario × scheduler simulation")
    pr.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    pr.add_argument("--scheduler", required=True)
    pr.add_argument("-n", "--n-jobs", type=int, default=60)
    pr.add_argument(
        "--arrival-mode", choices=["scenario", "zero"], default="scenario"
    )
    pr.add_argument(
        "--enforce-walltime",
        action="store_true",
        help="kill jobs at their requested walltime (trace realism)",
    )
    pr.add_argument(
        "--max-decisions",
        type=int,
        default=None,
        help="hard cap on scheduler queries (default: 200·n_jobs + 1000)",
    )
    _add_anneal_window(pr)
    _add_engine(pr)
    _add_common(pr)
    _add_disruption_args(pr)

    pm = sub.add_parser(
        "matrix",
        help="parallel scenarios × sizes × schedulers × seeds sweep",
    )
    pm.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        help="scenario names to sweep (required unless --retry-failed)",
    )
    pm.add_argument(
        "--sizes", type=int, nargs="+",
        help="queue sizes to sweep (required unless --retry-failed)",
    )
    pm.add_argument(
        "--retry-failed",
        metavar="STORE",
        default=None,
        help=(
            "instead of expanding a matrix, re-run exactly the "
            "quarantined cells recorded in STORE.failures (written by "
            "--on-cell-failure quarantine); cells that now succeed "
            "stream into STORE and are pruned from the sidecar"
        ),
    )
    pm.add_argument(
        "--schedulers",
        nargs="+",
        default=list(DEFAULT_SCHEDULERS),
        help="scheduler names (default: the paper's comparison set)",
    )
    pm.add_argument(
        "--seeds", type=int, nargs="+", default=[0], help="workload seeds"
    )
    pm.add_argument(
        "--scheduler-seeds",
        type=int,
        nargs="+",
        default=[0],
        help="scheduler RNG seeds (repetition sweeps)",
    )
    pm.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process pool size (default: all cores; 1 = inline)",
    )
    pm.add_argument(
        "--out",
        default=None,
        help=(
            "artifact store path (JSONL file or sharded directory); "
            "each run streams in on completion"
        ),
    )
    pm.add_argument(
        "--store-format",
        choices=["jsonl", "sharded"],
        default=None,
        help=(
            "layout for a store created at --out: one JSONL file "
            "(default) or a cell-key-hash sharded directory — pooled "
            "workers then write their own shards concurrently and "
            "keyed report queries parse one shard, not the archive. "
            "An existing store's on-disk layout always wins."
        ),
    )
    pm.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard count when creating a sharded store (default 16; "
            "fixed at creation — needs --store-format sharded)"
        ),
    )
    pm.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already persisted in --out",
    )
    pm.add_argument(
        "--arrival-mode", choices=["scenario", "zero"], default="scenario"
    )
    f = pm.add_argument_group("fault tolerance")
    f.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget: a cell still running after "
            "this long has its (hung) worker killed and is retried "
            "against a rebuilt pool (default: no timeout; needs "
            "--workers >= 2 — an inline sweep cannot preempt itself)"
        ),
    )
    f.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "retries per cell beyond its first attempt before the "
            "--on-cell-failure policy applies; crashes, timeouts and "
            "dead workers all count (default 2). Distinct from the "
            "simulator's in-run scheduler-rejection retries."
        ),
    )
    f.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the deterministic exponential backoff between "
            "retries of one cell (default 0.1)"
        ),
    )
    f.add_argument(
        "--on-cell-failure",
        choices=["abort", "quarantine"],
        default="abort",
        help=(
            "what to do with a cell that exhausts its retries: abort "
            "the sweep (default, exit 1) or quarantine it as a "
            "structured record in <out>.failures, finish every other "
            "cell, and exit 3 with a failure summary"
        ),
    )
    _add_anneal_window(pm)
    _add_engine(pm)
    _add_disruption_args(pm)

    ps = sub.add_parser(
        "report", help="render normalized metrics from an artifact store"
    )
    ps.add_argument(
        "--store", required=True,
        help="path written by matrix --out (JSONL file or sharded dir)",
    )
    ps.add_argument(
        "--where",
        action="append",
        default=None,
        metavar="FIELD=VALUE",
        help=(
            "identity filter, repeatable (e.g. --where "
            "scenario=adversarial --where n_jobs=60); pushed down to "
            "the store backend — a fully-pinned key is answered from "
            "one shard on a sharded store, never a full scan"
        ),
    )

    pst = sub.add_parser(
        "store",
        help=(
            "artifact-store maintenance (doctor: salvage; migrate: "
            "convert layouts; digest: content identity)"
        ),
    )
    store_sub = pst.add_subparsers(dest="store_command", required=True)
    pdoc = store_sub.add_parser(
        "doctor",
        help="salvage every parseable line from a corrupted store",
        description=(
            "Repair an artifact store in place: every parseable "
            "line is kept byte-for-byte, every unparseable line moves "
            "to <store>.quarantine prefixed with its original line "
            "number, and the report says which cells were lost (they "
            "simply re-run under matrix --resume). On a sharded store "
            "the same treatment runs per shard, plus a missing or "
            "unreadable MANIFEST.json is rebuilt from the shard files. "
            "Rewrites are atomic; a healthy store is left untouched."
        ),
    )
    pdoc.add_argument(
        "path", help="store written by matrix --out (file or sharded dir)"
    )
    pdoc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be quarantined without writing anything",
    )
    pdoc.add_argument(
        "--dedupe",
        action="store_true",
        help=(
            "also compact superseded duplicate-key lines: each cell "
            "keeps only its winning (last-written) line, byte-for-byte, "
            "at its first-appearance position — what load() resolves "
            "is unchanged, the file just stops carrying dead data"
        ),
    )
    pmig = store_sub.add_parser(
        "migrate",
        help="convert a store between JSONL and sharded layouts",
        description=(
            "Loss-free layout conversion: a JSONL file splits into a "
            "fresh sharded directory (lines verbatim, routed by cell-"
            "key hash, original order recorded in a sidecar); a "
            "sharded store merges back into one JSONL file — byte-"
            "identical to the original when the order sidecar still "
            "matches, load()-identical otherwise. v1-v3 lines cross "
            "untouched. The direction is inferred from the source "
            "layout; the destination must not already exist."
        ),
    )
    pmig.add_argument("src", help="existing store (file or sharded dir)")
    pmig.add_argument("dest", help="fresh path for the converted store")
    pmig.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count when splitting to sharded (default 16)",
    )
    pdig = store_sub.add_parser(
        "digest",
        help="print the store's layout-independent content digest",
        description=(
            "SHA-256 over the canonically-ordered run set — equal for "
            "two stores exactly when load() resolves the same runs, "
            "regardless of layout, line order, or superseded "
            "duplicates. The CI storage gate compares this across "
            "serial-JSONL and parallel-sharded sweeps."
        ),
    )
    pdig.add_argument("path", help="store (file or sharded dir)")

    pb = sub.add_parser(
        "bench",
        help="performance benchmarks (replanning, decision snapshots)",
        description=(
            "Measure the scheduling hot paths and emit a machine-"
            "readable report: replanning-event latency (incremental "
            "vs naive packer), per-decision snapshot cost vs "
            "completed-job count, end-to-end decision latency, and "
            "serial sweep wall-clock. With --baseline, metrics that "
            "regressed more than --threshold are reported as warnings "
            "(exit status stays 0 — timing is advisory)."
        ),
    )
    pb.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes/repeats (the CI profile)",
    )
    pb.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable report here (e.g. BENCH_PR2.json)",
    )
    pb.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed BENCH_*.json to diff against",
    )
    pb.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression tolerance vs --baseline (default 0.25)",
    )
    pb.add_argument(
        "--dimensionless",
        action="store_true",
        help=(
            "compare only dimensionless metrics (speedups and ratios) "
            "vs --baseline — robust to CI runner hardware changes"
        ),
    )
    pb.add_argument(
        "--sections",
        nargs="+",
        metavar="SECTION",
        default=None,
        help=(
            "run only these bench sections (e.g. 'scaling'); default: "
            "all of them"
        ),
    )
    pb.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit non-zero when --baseline comparison finds "
            "regressions (the blocking CI gate; without it timing "
            "stays advisory)"
        ),
    )

    pv = sub.add_parser(
        "serve",
        help="run the scheduling daemon (JSON-lines over a socket)",
        description=(
            "Start the long-lived scheduling service: clients open "
            "isolated sessions, stream job arrivals in, and pull "
            "schedules/metrics back over a JSON-lines protocol; sweep "
            "cells (run_cell) are answered from a CellKey result cache "
            "backed by --store, simulating only on a genuine miss. "
            "Served schedules are byte-identical to batch simulate() "
            "for the same inputs. Stop with SIGINT/SIGTERM or a "
            "client 'shutdown' request; in-flight requests drain "
            "first."
        ),
    )
    bind = pv.add_mutually_exclusive_group(required=True)
    bind.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="bind a unix domain socket at PATH",
    )
    bind.add_argument(
        "--host",
        default=None,
        help="bind TCP on this interface (with --port)",
    )
    pv.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: ephemeral, printed at startup)",
    )
    pv.add_argument(
        "--store",
        default=None,
        help=(
            "artifact store backing the cell result cache (JSONL file "
            "or sharded dir); cells already persisted are served "
            "without simulating, new cells are appended (shareable "
            "with matrix --out)"
        ),
    )
    pv.add_argument(
        "--store-format",
        choices=["jsonl", "sharded"],
        default=None,
        help=(
            "layout for a store created at --store (an existing "
            "store's on-disk layout always wins)"
        ),
    )
    pv.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for run_cell (default: all cores)",
    )
    pv.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="in-memory LRU capacity, in cells (default 4096)",
    )

    pc = sub.add_parser(
        "compare",
        help="paired cross-seed comparison of two schedulers (Wilcoxon)",
    )
    pc.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    pc.add_argument("--a", required=True, help="first scheduler")
    pc.add_argument("--b", required=True, help="second scheduler")
    pc.add_argument("-n", "--n-jobs", type=int, default=40)
    pc.add_argument("--seeds", type=int, default=8)

    sub.add_parser("list", help="list scenarios and schedulers")
    return parser


def _matrix_retry_failed(args) -> int:
    """``matrix --retry-failed STORE``: re-run the quarantined cells.

    The cell list comes from ``STORE.failures`` (the sidecar written
    by ``--on-cell-failure quarantine``), rebuilt exactly from each
    record's stored config — same seeds, same disruptions, same
    topology, so a recovered cell's line is byte-identical to what the
    original sweep would have written. Cells that now succeed stream
    into STORE and are pruned from the sidecar; cells that fail again
    stay quarantined (their sidecar record refreshed) and the exit
    status is 3, mirroring the quarantine sweep itself.
    """
    from repro.experiments.parallel import (
        DEFAULT_RETRY_BACKOFF_S,
        MatrixCell,
        run_cells,
    )
    from repro.experiments.store import FailureSidecar

    store = open_store(args.retry_failed)
    sidecar = FailureSidecar.for_store(store)
    if not sidecar.path.exists():
        print(f"nothing to retry: no failure sidecar at {sidecar.path}")
        return 0
    try:
        records = sidecar.load()
    except ValueError as exc:
        print(f"error: unreadable sidecar {sidecar.path}: {exc}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"nothing to retry: {sidecar.path} is empty")
        return 0
    unretriable = [r for r in records if r.config is None]
    if unretriable:
        print(
            f"error: {len(unretriable)} record(s) in {sidecar.path} "
            "predate the config-carrying sidecar format (schema v1) "
            "and cannot be rebuilt; re-run the original matrix "
            "command with --resume instead",
            file=sys.stderr,
        )
        return 2
    cells: list[MatrixCell] = []
    seen = set()
    for rec in records:
        try:
            cell = MatrixCell.from_config(rec.config)
        except ValueError as exc:
            print(
                f"error: bad config in {sidecar.path} for "
                f"{rec.label}: {exc}",
                file=sys.stderr,
            )
            return 2
        if cell.key not in seen:
            seen.add(cell.key)
            cells.append(cell)
    print(f"retrying {len(cells)} quarantined cell(s) from {sidecar.path}")

    def progress(cell, completed, total):
        print(
            f"[{completed}/{total}] {cell.scenario} n={cell.n_jobs} "
            f"{cell.scheduler} wseed={cell.workload_seed} "
            f"sseed={cell.scheduler_seed}",
            flush=True,
        )

    failures: list[FailedCell] = []
    try:
        run_cells(
            cells,
            workers=args.workers,
            store=store,
            resume=True,
            progress=progress,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
            retry_backoff_s=(
                DEFAULT_RETRY_BACKOFF_S
                if args.retry_backoff is None
                else args.retry_backoff
            ),
            on_cell_failure="quarantine",
            failures=failures,
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — completed retries are persisted in "
            f"{store.path}; run --retry-failed again to finish",
            file=sys.stderr,
        )
        return 130
    # Prune recovered cells; compact duplicate records (the re-failed
    # cells just appended a refreshed line each) down to last-wins.
    done = store.completed_keys()
    recovered_keys = {c.key for c in cells if c.key in done}
    sidecar.prune(recovered_keys)
    remaining = sidecar.load() if sidecar.path.exists() else []
    last = {r.key: r for r in remaining}
    if len(last) != len(remaining):
        import os as _os

        tmp = sidecar.path.with_name(sidecar.path.name + ".compact.tmp")
        tmp.write_text(
            "".join(r.to_json() + "\n" for r in last.values()),
            encoding="utf-8",
        )
        _os.replace(tmp, sidecar.path)
    print(
        f"recovered {len(recovered_keys)}/{len(cells)} cell(s) into "
        f"{store.path}"
    )
    if failures:
        print(
            f"{len(failures)} cell(s) still failing (sidecar kept):",
            file=sys.stderr,
        )
        for fc in failures:
            print(
                f"  {fc.label}: {fc.kind} x{fc.attempts} — "
                f"{fc.error_type}: {fc.message}",
                file=sys.stderr,
            )
        return 3
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("Scenarios:")
        for name, spec in SCENARIOS.items():
            print(f"  {name:20s} {spec.description}")
        print("Schedulers:")
        for name in available_schedulers():
            print(f"  {name}")
        print("Disruption presets:")
        for name, dspec in DISRUPTION_PRESETS.items():
            print(f"  {name:20s} {dspec.signature()}")
        return 0

    if args.command == "fig2":
        samples = figures.figure2(
            model=args.model, n_jobs=args.n_jobs, seed=args.seed
        )
        for sample in samples:
            print(sample.render())
            print()
        return 0

    if args.command == "fig3":
        data = figures.figure3(
            n_jobs=args.n_jobs,
            workload_seed=args.seed,
            scheduler_seed=args.scheduler_seed,
        )
        print(report.render_figure3(data))
        return 0

    if args.command == "fig4":
        data = figures.figure4(
            sizes=args.sizes,
            workload_seed=args.seed,
            scheduler_seed=args.scheduler_seed,
        )
        print(report.render_figure4(data))
        return 0

    if args.command == "fig5":
        data = figures.figure5(
            n_jobs=args.n_jobs,
            workload_seed=args.seed,
            scheduler_seed=args.scheduler_seed,
        )
        print(
            report.render_overhead_table(
                data,
                key_label="scenario",
                title="Figure 5 — overhead per scenario (60 jobs)",
            )
        )
        return 0

    if args.command == "fig6":
        data = figures.figure6(
            sizes=args.sizes,
            workload_seed=args.seed,
            scheduler_seed=args.scheduler_seed,
        )
        print(
            report.render_overhead_table(
                data,
                key_label="n_jobs",
                title="Figure 6 — overhead scaling (heterogeneous mix)",
            )
        )
        return 0

    if args.command == "fig7":
        data = figures.figure7(
            n_jobs=args.n_jobs,
            n_repeats=args.repeats,
            workload_seed=args.seed,
        )
        print(report.render_figure7(data))
        return 0

    if args.command == "fig8":
        data = figures.figure8(
            n_jobs=args.n_jobs,
            trace_seed=args.trace_seed,
            scheduler_seed=args.scheduler_seed,
        )
        print(report.render_figure8(data))
        return 0

    if args.command == "matrix":
        from repro.experiments.parallel import (
            DEFAULT_RETRY_BACKOFF_S,
            CellFailedError,
        )

        if args.retry_failed is not None:
            if args.scenarios or args.sizes or args.resume or args.out:
                print(
                    "error: --retry-failed takes the cell list from the "
                    "failure sidecar; it cannot be combined with "
                    "--scenarios/--sizes/--out/--resume",
                    file=sys.stderr,
                )
                return 2
            try:
                _check_fault_args(args)
            except DisruptionArgsError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            return _matrix_retry_failed(args)
        if not args.scenarios or not args.sizes:
            print(
                "error: --scenarios and --sizes are required "
                "(or use --retry-failed STORE)",
                file=sys.stderr,
            )
            return 2
        if args.resume and not args.out:
            print("error: --resume requires --out", file=sys.stderr)
            return 2
        if args.shards is not None and args.store_format != "sharded":
            print(
                "error: --shards needs --store-format sharded",
                file=sys.stderr,
            )
            return 2
        store = None
        if args.out:
            try:
                store = open_store(
                    args.out,
                    format=args.store_format,
                    n_shards=args.shards,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        try:
            disruption_spec = _build_disruption_spec(args)
            topology = _build_topology(args)
            _check_anneal_window(args)
            _check_fault_args(args)
        except DisruptionArgsError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        restart_policy = args.restart_policy.replace("-", "_")

        def progress(cell, completed, total):
            print(
                f"[{completed}/{total}] {cell.scenario} n={cell.n_jobs} "
                f"{cell.scheduler} wseed={cell.workload_seed} "
                f"sseed={cell.scheduler_seed}",
                flush=True,
            )

        failures: list[FailedCell] = []
        try:
            runs = run_matrix_parallel(
                args.scenarios,
                args.sizes,
                args.schedulers,
                workload_seeds=args.seeds,
                scheduler_seeds=args.scheduler_seeds,
                arrival_mode=args.arrival_mode,
                disruptions=disruption_spec,
                restart_policy=restart_policy,
                checkpoint_interval=args.checkpoint_interval,
                topology=topology,
                anneal_window=args.anneal_window,
                engine=args.engine,
                workers=args.workers,
                store=store,
                resume=args.resume,
                progress=progress,
                cell_timeout=args.cell_timeout,
                max_retries=args.max_retries,
                retry_backoff_s=(
                    DEFAULT_RETRY_BACKOFF_S
                    if args.retry_backoff is None
                    else args.retry_backoff
                ),
                on_cell_failure=args.on_cell_failure,
                failures=failures,
            )
        except KeyboardInterrupt as exc:
            detail = f" ({exc})" if str(exc) else ""
            if store is not None:
                print(
                    f"\ninterrupted{detail} — "
                    f"{len(store.completed_keys())} cells persisted in "
                    f"{args.out}; re-run with --resume to finish the "
                    "rest",
                    file=sys.stderr,
                )
            else:
                print(
                    f"\ninterrupted{detail} (no --out store; nothing "
                    "persisted)",
                    file=sys.stderr,
                )
            return 130
        except CellFailedError as exc:
            print(f"\nerror: sweep aborted — {exc}", file=sys.stderr)
            if store is not None:
                print(
                    f"{len(store.completed_keys())} cells persisted in "
                    f"{args.out}; fix the failure and re-run with "
                    "--resume (or use --on-cell-failure quarantine to "
                    "finish around it)",
                    file=sys.stderr,
                )
            return 1
        cells = expand_cells(
            args.scenarios,
            args.sizes,
            args.schedulers,
            workload_seeds=args.seeds,
            scheduler_seeds=args.scheduler_seeds,
            arrival_mode=args.arrival_mode,
            disruptions=disruption_spec,
            restart_policy=restart_policy,
            checkpoint_interval=args.checkpoint_interval,
            topology=topology,
            anneal_window=args.anneal_window,
        )
        if args.resume:
            print(f"resumed: {len(cells) - len(runs)} cells already in "
                  f"{args.out}, {len(runs)} executed")
        # Report this invocation's matrix: fresh results win, persisted
        # runs fill in resumed cells, and unrelated sweeps sharing the
        # store file stay out of the output. Tolerate corrupt lines
        # here — the sweep itself succeeded; damage on disk is surfaced
        # loudly by --resume and repaired by `store doctor`.
        source = list(runs)
        if store is not None:
            fresh = {r.key for r in runs}
            wanted = {c.key for c in cells}
            # Keyed backend query: only the wanted cells come back (on
            # a sharded store, only their shards are even parsed).
            source += list(
                store.iter_runs(
                    keys=wanted - fresh, on_corrupt="quarantine"
                )
            )
        if source:
            print(report.render_matrix_blocks(figures.matrix_blocks(source)))
        if failures:
            print(
                f"\n{len(failures)} cell(s) quarantined after exhausting "
                "retries (every other cell completed):",
                file=sys.stderr,
            )
            for fc in failures:
                print(
                    f"  {fc.label}: {fc.kind} x{fc.attempts} — "
                    f"{fc.error_type}: {fc.message}",
                    file=sys.stderr,
                )
            if store is not None:
                print(
                    f"details in {store.sidecar_path}; the quarantined "
                    "cells are not persisted and will re-run under "
                    "--resume",
                    file=sys.stderr,
                )
            return 3
        return 0

    if args.command == "bench":
        import os

        from repro.experiments import bench

        try:
            report_dict = bench.run_bench(
                quick=args.quick,
                sections=args.sections,
                progress=lambda msg: print(f"... {msg}", file=sys.stderr),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(bench.render_report(report_dict))
        if args.json:
            bench.write_report(report_dict, args.json)
            print(f"\nwrote {args.json}", file=sys.stderr)
        if args.baseline:
            baseline = bench.load_report(args.baseline)
            regressions = bench.compare_to_baseline(
                report_dict,
                baseline,
                threshold=args.threshold,
                dimensionless_only=args.dimensionless,
            )
            gha = bool(os.environ.get("GITHUB_ACTIONS"))
            if regressions:
                severity = "error" if args.strict else "warning"
                print(
                    f"\n{len(regressions)} metric(s) regressed "
                    f">{args.threshold * 100:.0f}% vs {args.baseline}:"
                )
                for reg in regressions:
                    line = reg.describe()
                    print(f"  {severity.upper()}: {line}")
                    if gha:
                        print(
                            f"::{severity} title=bench regression::{line}"
                        )
                if args.strict:
                    return 1
            else:
                print(
                    f"\nno regressions >{args.threshold * 100:.0f}% "
                    f"vs {args.baseline}"
                )
        return 0

    if args.command == "store":
        from repro.experiments.storage import (
            DEFAULT_SHARDS,
            detect_format,
            migrate_to_jsonl,
            migrate_to_sharded,
            store_digest,
        )

        if args.store_command == "doctor":
            if not Path(args.path).exists():
                print(f"error: no store at {args.path}", file=sys.stderr)
                return 2
            store = open_store(args.path)
            doc = store.doctor(dry_run=args.dry_run, dedupe=args.dedupe)
            print(doc.summary())
            return 0 if doc.clean else 1

        if args.store_command == "migrate":
            try:
                src_format = detect_format(args.src)
                if src_format == "sharded":
                    if args.shards is not None:
                        print(
                            "error: --shards applies when splitting "
                            "jsonl -> sharded, not merging back",
                            file=sys.stderr,
                        )
                        return 2
                    rep = migrate_to_jsonl(args.src, args.dest)
                else:
                    rep = migrate_to_sharded(
                        args.src,
                        args.dest,
                        n_shards=(
                            args.shards
                            if args.shards is not None
                            else DEFAULT_SHARDS
                        ),
                    )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(rep.summary())
            return 0

        assert args.store_command == "digest"
        if not Path(args.path).exists():
            print(f"error: no store at {args.path}", file=sys.stderr)
            return 2
        try:
            print(store_digest(open_store(args.path)))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "report":
        where = None
        if args.where:
            where = {}
            for item in args.where:
                field, sep, value = item.partition("=")
                if not sep or not field:
                    print(
                        f"error: bad --where {item!r} (expected "
                        "FIELD=VALUE)",
                        file=sys.stderr,
                    )
                    return 2
                where[field] = value
        try:
            blocks = figures.store_blocks(
                open_store(args.store), where=where
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not blocks:
            print(f"no runs in {args.store}", file=sys.stderr)
            return 1
        if where:
            print(f"== {report.describe_where(where)}\n")
        print(report.render_matrix_blocks(blocks))
        return 0

    if args.command == "run":
        try:
            disruption_spec = _build_disruption_spec(args)
            topology = _build_topology(args)
            _check_anneal_window(args)
        except DisruptionArgsError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        restart_policy = args.restart_policy.replace("-", "_")
        run = run_single(
            args.scenario,
            args.n_jobs,
            args.scheduler,
            workload_seed=args.seed,
            scheduler_seed=args.scheduler_seed,
            arrival_mode=args.arrival_mode,
            enforce_walltime=args.enforce_walltime,
            max_decisions=args.max_decisions,
            topology=topology,
            disruptions=disruption_spec,
            restart_policy=restart_policy,
            checkpoint_interval=args.checkpoint_interval,
            anneal_window=args.anneal_window,
            engine=args.engine,
        )
        base = run_single(
            args.scenario,
            args.n_jobs,
            "fcfs",
            workload_seed=args.seed,
            arrival_mode=args.arrival_mode,
            enforce_walltime=args.enforce_walltime,
            topology=topology,
            disruptions=disruption_spec,
            restart_policy=restart_policy,
            checkpoint_interval=args.checkpoint_interval,
        )
        block = {
            "fcfs": normalize_to_baseline(base.values, base.values),
            run.scheduler: normalize_to_baseline(run.values, base.values),
        }
        print(
            report.render_normalized_block(
                block,
                f"{args.scenario}, {args.n_jobs} jobs, {run.scheduler}",
            )
        )
        if run.disruption_sig != "none":
            kills = run.result.extras.get("disruption_kills", {})
            print(
                f"\ndisruptions [{run.disruption_sig}]: "
                f"{len(run.result.preemptions)} preemptions "
                f"(failures={kills.get('failure', 0)}, "
                f"drains={kills.get('drain', 0)}, "
                f"voluntary={kills.get('preempt', 0)})"
            )
            domain_kills = run.result.extras.get("domain_kills")
            if domain_kills:
                per_domain = ", ".join(
                    f"{dom}={n}" for dom, n in domain_kills.items()
                )
                print(
                    f"blast radius [{run.topology_sig}]: kills by "
                    f"domain: {per_domain}"
                )
        if run.overhead is not None:
            print(f"\nLLM overhead: {run.overhead.latency}")
            print(f"total elapsed (accepted placements): "
                  f"{run.overhead.elapsed_s:.1f}s over "
                  f"{run.overhead.n_calls} calls")
        return 0

    if args.command == "serve":
        import asyncio

        from repro.service.server import run_server

        if args.host is None and args.port:
            print(
                "error: --port needs --host (or use --socket PATH)",
                file=sys.stderr,
            )
            return 2

        def ready(server) -> None:
            print(
                f"repro-sched daemon listening on {server.address}",
                flush=True,
            )

        try:
            asyncio.run(
                run_server(
                    socket_path=args.socket,
                    host=args.host,
                    port=args.port,
                    store_path=args.store,
                    store_format=args.store_format,
                    workers=args.workers,
                    cache_size=args.cache_size,
                    ready=ready,
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - signal race
            pass
        print("daemon stopped", flush=True)
        return 0

    if args.command == "compare":
        from repro.analysis.significance import (
            compare_schedulers,
            render_comparison,
        )

        comps = compare_schedulers(
            args.scenario,
            args.n_jobs,
            args.a,
            args.b,
            n_seeds=args.seeds,
        )
        print(
            f"== {args.scenario}, {args.n_jobs} jobs, "
            f"{args.seeds} workload seeds (paired)"
        )
        print(render_comparison(comps, args.a, args.b))
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
