"""Performance benchmark harness: ``repro-sched bench``.

Emits a machine-readable ``BENCH_*.json`` tracking the perf trajectory
of the three hot paths this project optimizes:

* **replan_event** — wall-clock of one full annealing replanning event
  at several queue sizes, measured twice per size: with the incremental
  prefix-pack kernel and with the retained naive reference packer
  (:mod:`repro.schedulers.packing_reference`). Both traversals follow
  the identical seeded RNG trajectory, so the reported ``speedup`` is
  an apples-to-apples before/after of the same search.
* **decision_snapshot** — per-decision simulator overhead as jobs
  complete. The workload uses spread arrivals so the queue stays small
  while the completion log grows; a quadratic snapshot path shows up as
  last-quartile decisions costing more than first-quartile ones
  (``growth_ratio`` ≫ 1), a zero-copy path stays flat (≈ 1).
* **per_decision** / **sweep** — end-to-end per-decision latency for
  representative (scenario, scheduler) cells and total wall-clock of a
  small serial matrix, the figure-sweep proxy.
* **disruption** — a failure-heavy 2000-job run (checkpoint restarts)
  next to the identical undisrupted run: absolute per-decision
  latencies plus the dimensionless ``overhead_ratio`` (disrupted ÷
  clean per-decision cost), tracking what requeue churn costs the
  engine.
* **correlated** — a 2000-job run under whole-rack shocks on a 32-node
  rack topology next to its undisrupted twin: what domain-event
  handling (block kills, per-domain capacity views, spread gating)
  costs per decision, plus the cell's blast radius.
* **scaling** — the flat-array engine's replay cost at 10k/50k/100k
  jobs (µs per arrival/completion event under a steady-state FCFS
  workload, where bookkeeping — not decisions — dominates), the
  SoA-vs-object engine speedup on a backlogged cell, and month-long
  SWF-round-tripped trace replays (``workloads/swf.py`` → simulate) as
  routine cells. ``growth_ratio`` (µs/event at N ÷ at the smallest
  cell) is the flat-to-sublinear scaling acceptance number.
* **storage** — keyed-query cost on a synthetic 100k-cell archive,
  measured cold (fresh store object, no parsed-file cache) against
  both layouts: the single-file JSONL store (a full-file parse per
  cold query) and the sharded store (a single-shard parse via the
  key-hash route). ``query_speedup`` (JSONL ÷ sharded cold-query
  wall) is the acceptance number for the sharded store's point-query
  claim; migration wall-clock rides along.

Regression tracking: :func:`compare_to_baseline` diffs a fresh report
against a committed baseline (e.g. ``BENCH_PR2.json``) and returns the
metrics that regressed beyond a threshold. CI runs this non-blocking
(warning annotations only) because shared-runner timing jitters.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.experiments.runner import run_matrix, run_single
from repro.schedulers.optimizer import AnnealingConfig, AnnealingOptimizer
from repro.sim.simulator import RunningJob, SystemView
from repro.workloads.generator import generate_workload

SCHEMA_VERSION = 1

#: Metrics where smaller is better, matched by key suffix.
_LOWER_IS_BETTER_SUFFIXES = (
    "_ms",
    "_us",
    "_s",
    "us_per_decision",
    "us_per_event",
    "_ratio",
    "_per_move",
)
#: Metrics where larger is better.
_HIGHER_IS_BETTER_SUFFIXES = ("speedup",)

#: Dimensionless metrics (pure ratios / work counts of same-run
#: quantities): these stay comparable across runner generations,
#: unlike absolute wall-clock.
_DIMENSIONLESS_SUFFIXES = ("speedup", "_ratio", "_per_move")


@dataclass
class BenchConfig:
    """Knobs for one bench invocation.

    ``quick`` is the CI profile (< 1 min). The committed
    ``BENCH_*.json`` baseline is generated from the *full* profile
    (since PR 6, so it records the 50k/100k scaling cells and the
    month-long SWF replay); metric keys are qualified by their cell
    sizes, so comparing reports of different profiles silently checks
    only the cells both actually measured — quick CI runs gate on the
    shared full-size acceptance cells: the 100-job replanning event,
    the 2000-job snapshot-cost growth ratio, and the 2000-job
    engine-comparison cell.
    """

    replan_sizes: tuple[int, ...] = (25, 50, 100)
    replan_repeats: int = 3
    replan_running: int = 12
    snapshot_jobs: int = 2000
    per_decision_cells: tuple[tuple[str, str, int], ...] = (
        ("heterogeneous_mix", "fcfs", 400),
        ("heterogeneous_mix", "fcfs_backfill", 400),
        ("heterogeneous_mix", "ortools_like", 100),
    )
    sweep_scenarios: tuple[str, ...] = ("heterogeneous_mix", "adversarial")
    sweep_sizes: tuple[int, ...] = (20, 40)
    sweep_schedulers: tuple[str, ...] = ("fcfs", "sjf", "ortools_like")
    #: Failure-heavy disruption cell: (scenario, scheduler, n_jobs).
    disruption_cell: tuple[str, str, int] = (
        "checkpoint_stress", "fcfs_backfill", 2000,
    )
    disruption_mtbf: float = 40_000.0
    disruption_mttr: float = 1_200.0
    disruption_checkpoint: float = 900.0
    #: Correlated-failure cell: (scenario, scheduler, n_jobs) run on a
    #: rack topology with whole-rack shocks vs its undisrupted twin.
    correlated_cell: tuple[str, str, int] = (
        "rack_storm", "fcfs_backfill", 2000,
    )
    correlated_rack_size: int = 32
    correlated_rack_mtbf: float = 60_000.0
    correlated_mttr: float = 1_800.0
    correlated_checkpoint: float = 900.0
    #: Windowed-planning cells: ``(queue_size, iterations)`` replan
    #: latency measurements (full vs ``planning_window`` at the *same*
    #: iteration budget — the budget shrinks with queue size because
    #: the full-search side packs an O(queue) suffix per iteration),
    #: plus quality cells (queue sizes, default online budget) for the
    #: windowed-vs-full final-objective ratio.
    planning_window: int = 32
    planning_latency_cells: tuple[tuple[int, int], ...] = (
        (1000, 80), (5000, 32), (10000, 24),
    )
    #: Quality is tracked at the paper's maximum queue scale, where
    #: full search is affordable *and* well-converged; below ~2W jobs
    #: the window spans most of the order and the comparison measures
    #: iteration-budget scaling instead of the windowing trade-off.
    planning_quality_cells: tuple[int, ...] = (100,)
    planning_running: int = 12
    #: Engine-scaling cells: job counts replayed end-to-end on the
    #: flat-array engine under a steady-state scenario (bounded queue
    #: depth — the regime where per-event bookkeeping, the quantity
    #: this section tracks, dominates; a saturated backlog would
    #: instead measure the O(queue) view tuple every facade must
    #: materialize).
    scaling_scenario: str = "homogeneous_short"
    scaling_sizes: tuple[int, ...] = (10_000, 50_000, 100_000)
    scaling_scheduler: str = "fcfs"
    #: Engine-comparison cell: SoA vs object wall on one *backlogged*
    #: workload. Deliberately not a scaling cell: with a bounded queue
    #: the engines are within noise of each other (the object loop has
    #: no O(queue) work to lose), so the speedup there gates nothing.
    #: A saturated queue is the regime the flat-array core targets —
    #: cached queue snapshots vs an O(queue) rebuild per decision —
    #: and yields a stable, structurally-meaningful ratio.
    engine_compare_scenario: str = "heterogeneous_mix"
    engine_compare_jobs: int = 2_000
    #: SWF replay cells: ``(n_jobs, days)`` — the workload's arrivals
    #: are stretched over *days*, round-tripped through the SWF trace
    #: format, and replayed. The small cell runs in both profiles (so
    #: CI compares it against the committed baseline); the month-long
    #: 40k cell is full-profile-only.
    swf_replay_cells: tuple[tuple[int, float], ...] = (
        (2_000, 2.0), (40_000, 30.0),
    )
    #: Columnar-decision cells: steady-state end-to-end replays run
    #: twice — the scheduler's columnar kernel vs its forced
    #: ``use_columns=False`` facade twin — reporting µs/event,
    #: µs/decision, and the dimensionless ``columnar_speedup``.
    decisions_scenario: str = "homogeneous_short"
    decisions_scheduler: str = "sjf_firstfit"
    decisions_sizes: tuple[int, ...] = (2_000, 10_000, 100_000)
    #: Replays alternate columnar/facade and keep per-side minima:
    #: a single back-to-back pair would charge process warm-up to
    #: whichever side ran first (~20% on the 10k cell, larger than
    #: the effect being measured).
    decisions_replay_repeats: int = 5
    #: Decision-kernel microbench: one backlogged decision point per
    #: queue depth (head blocked, so sort/filter kernels do full-queue
    #: work), ``decide()`` timed on both kernels with per-run master
    #: columns prebuilt — the engine's steady-state accounting.
    decisions_kernel_schedulers: tuple[str, ...] = (
        "sjf_firstfit", "fcfs_backfill",
    )
    decisions_kernel_depths: tuple[int, ...] = (64, 512, 4096)
    decisions_kernel_repeats: int = 15
    #: Storage cell: synthetic archive size and shard count for the
    #: cold keyed-query comparison (JSONL full-file parse vs sharded
    #: single-shard parse). The archive is built directly from
    #: serialized lines — the section measures the read path, not
    #: fsync-per-append write amplification.
    storage_cells: int = 100_000
    storage_shards: int = 64
    storage_queries: int = 5
    seed: int = 0

    @classmethod
    def quick(cls) -> "BenchConfig":
        return cls(
            replan_sizes=(25, 100),
            replan_repeats=2,
            snapshot_jobs=2000,
            per_decision_cells=(
                ("heterogeneous_mix", "fcfs", 200),
                ("heterogeneous_mix", "ortools_like", 60),
            ),
            sweep_sizes=(20,),
            # The disruption cell stays at full size in the quick/CI
            # profile: it is this PR's acceptance-tracking measurement
            # and completes in seconds. Likewise the 5k-job windowed
            # planning cell (the PR-5 acceptance measurement); only
            # the 10k cell is full-profile-only.
            planning_latency_cells=((1000, 80), (5000, 32)),
            planning_quality_cells=(100,),
            # The 10k scaling cell and the engine-comparison cell are
            # the PR-6 acceptance-tracking measurements and run in a
            # few seconds; 50k/100k and the month-long SWF replay are
            # full-profile-only.
            scaling_sizes=(10_000,),
            swf_replay_cells=((2_000, 2.0),),
            # The 10k decisions cell is the PR-10 acceptance-tracking
            # measurement (columnar vs facade at steady state) and runs
            # in seconds; the 100k replay is full-profile-only. The
            # kernel microbench is cheap and keeps every depth.
            decisions_sizes=(2_000, 10_000),
            # The storage cell keeps its full 100k size in the quick
            # profile: it is the PR-9 acceptance-tracking measurement
            # (cold keyed query on a 100k-cell archive) and the cell
            # key embeds the size, so shrinking it would silently
            # decouple CI from the committed baseline.
        )


# ---------------------------------------------------------------------------
# replan_event: one annealing replanning event, incremental vs naive
# ---------------------------------------------------------------------------

def _replan_view(n_jobs: int, n_running: int, seed: int) -> SystemView:
    """A synthetic decision point: *n_jobs* queued now, *n_running*
    jobs already holding resources with staggered expected releases."""
    jobs = generate_workload(
        "heterogeneous_mix", n_jobs + n_running, seed=seed,
        arrival_mode="zero",
    )
    queued = tuple(jobs[:n_jobs])
    running = tuple(
        RunningJob(job, start_time=-10.0 * (i + 1))
        for i, job in enumerate(jobs[n_jobs:])
    )
    used_nodes = sum(r.job.nodes for r in running)
    used_mem = sum(r.job.memory_gb for r in running)
    total_nodes, total_mem = 256, 2048.0
    return SystemView(
        now=0.0,
        queued=queued,
        running=running,
        completed_ids=(),
        free_nodes=max(total_nodes - used_nodes, 1),
        free_memory_gb=max(total_mem - used_mem, 1.0),
        total_nodes=total_nodes,
        total_memory_gb=total_mem,
        pending_arrivals=0,
        next_arrival_time=None,
        next_completion_time=min(r.expected_end for r in running)
        if running
        else None,
    )


def _time_replan(
    view: SystemView,
    *,
    use_incremental: bool,
    seed: int,
    config: Optional[AnnealingConfig] = None,
) -> tuple[float, AnnealingOptimizer]:
    sched = AnnealingOptimizer(
        seed=seed,
        config=config or AnnealingConfig(),
        use_incremental=use_incremental,
    )
    sched.reset()
    t0 = time.perf_counter()
    sched._replan(view)
    return time.perf_counter() - t0, sched


def bench_replan_event(cfg: BenchConfig) -> list[dict[str, Any]]:
    rows = []
    for n in cfg.replan_sizes:
        view = _replan_view(n, cfg.replan_running, cfg.seed)
        inc = min(
            _time_replan(view, use_incremental=True, seed=cfg.seed)[0]
            for _ in range(cfg.replan_repeats)
        )
        naive = min(
            _time_replan(view, use_incremental=False, seed=cfg.seed)[0]
            for _ in range(cfg.replan_repeats)
        )
        rows.append(
            {
                "queue_size": n,
                "incremental_ms": round(inc * 1e3, 3),
                "naive_ms": round(naive * 1e3, 3),
                "speedup": round(naive / inc, 2) if inc > 0 else float("inf"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# planning: windowed replanning vs full annealing at equal budget
# ---------------------------------------------------------------------------

def bench_planning(cfg: BenchConfig) -> dict[str, Any]:
    """Windowed-planning kernel: latency and quality vs full search.

    *Latency* cells replay one replanning event at 1k/5k/10k-job queue
    sizes twice — full annealing and ``window=W`` — under the **same
    iteration budget**, reporting wall-clock, total packed jobs, and
    packed-jobs-per-accepted-move (the quantity the window bounds).
    *Quality* cells run both searches at the default online budget on
    tracked queue sizes where full search is affordable, reporting the
    dimensionless ``quality_ratio`` (windowed ÷ full final objective;
    1.0 = parity, lower is better).
    """
    latency_rows = []
    for n, iterations in cfg.planning_latency_cells:
        view = _replan_view(n, cfg.planning_running, cfg.seed)
        budget = AnnealingConfig(
            base_iterations=iterations,
            per_job_iterations=0,
            max_iterations=iterations,
        )
        windowed_cfg = AnnealingConfig(
            base_iterations=iterations,
            per_job_iterations=0,
            max_iterations=iterations,
            window=cfg.planning_window,
        )
        full_s, full_sched = _time_replan(
            view, use_incremental=True, seed=cfg.seed, config=budget
        )
        win_s, win_sched = _time_replan(
            view, use_incremental=True, seed=cfg.seed, config=windowed_cfg
        )
        full_stat = full_sched._stats[-1]
        win_stat = win_sched._stats[-1]
        latency_rows.append(
            {
                "queue_size": n,
                "iterations": iterations,
                "window": cfg.planning_window,
                "full_ms": round(full_s * 1e3, 3),
                "windowed_ms": round(win_s * 1e3, 3),
                "replan_speedup": round(full_s / win_s, 2)
                if win_s > 0
                else float("inf"),
                "full_packed_jobs": full_stat.jobs_packed,
                "windowed_packed_jobs": win_stat.jobs_packed,
                "full_packed_per_move": round(
                    full_stat.jobs_packed / max(full_stat.accepted_moves, 1),
                    1,
                ),
                "windowed_packed_per_move": round(
                    win_stat.jobs_packed / max(win_stat.accepted_moves, 1),
                    1,
                ),
            }
        )
    quality_rows = []
    for n in cfg.planning_quality_cells:
        view = _replan_view(n, cfg.planning_running, cfg.seed)
        _, full_sched = _time_replan(
            view, use_incremental=True, seed=cfg.seed
        )
        _, win_sched = _time_replan(
            view,
            use_incremental=True,
            seed=cfg.seed,
            config=AnnealingConfig(window=cfg.planning_window),
        )
        full_obj = full_sched._stats[-1].final_objective
        win_obj = win_sched._stats[-1].final_objective
        quality_rows.append(
            {
                "queue_size": n,
                "window": cfg.planning_window,
                "full_objective": round(full_obj, 3),
                "windowed_objective": round(win_obj, 3),
                "quality_ratio": round(win_obj / full_obj, 4)
                if full_obj
                else 1.0,
            }
        )
    return {"latency": latency_rows, "quality": quality_rows}


# ---------------------------------------------------------------------------
# decision_snapshot: per-decision overhead vs completed-job count
# ---------------------------------------------------------------------------

class _TimestampingScheduler:
    """Wraps a scheduler, recording (completed_count, perf_counter) at
    every decide() — the deltas measure the full simulator decision
    loop including snapshot construction."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name
        self.samples: list[tuple[int, float]] = []

    def reset(self) -> None:
        self._inner.reset()
        self.samples = []

    def decide(self, view):
        self.samples.append((len(view.completed_ids), time.perf_counter()))
        return self._inner.decide(view)

    def on_rejection(self, action, violations, view) -> None:
        self._inner.on_rejection(action, violations, view)

    def decision_meta(self) -> dict[str, Any]:
        return self._inner.decision_meta()


def bench_decision_snapshot(cfg: BenchConfig) -> dict[str, Any]:
    from repro.schedulers.fcfs import FCFSScheduler
    from repro.sim.simulator import HPCSimulator

    jobs = generate_workload(
        "heterogeneous_mix", cfg.snapshot_jobs, seed=cfg.seed,
        arrival_mode="scenario",
    )
    sched = _TimestampingScheduler(FCFSScheduler())
    sim = HPCSimulator(jobs=jobs, scheduler=sched)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0

    samples = sched.samples
    deltas = [
        (samples[i][0], samples[i + 1][1] - samples[i][1])
        for i in range(len(samples) - 1)
    ]
    max_completed = max((c for c, _ in deltas), default=1) or 1
    first = [d for c, d in deltas if c <= max_completed * 0.25]
    last = [d for c, d in deltas if c >= max_completed * 0.75]

    def _mean_us(xs: list[float]) -> float:
        return sum(xs) / len(xs) * 1e6 if xs else 0.0

    first_us, last_us = _mean_us(first), _mean_us(last)
    return {
        "n_jobs": cfg.snapshot_jobs,
        "decisions": len(samples),
        "wall_s": round(wall, 3),
        "us_per_decision": round(wall / max(len(samples), 1) * 1e6, 2),
        "first_quartile_us": round(first_us, 2),
        "last_quartile_us": round(last_us, 2),
        "growth_ratio": round(last_us / first_us, 3) if first_us else 1.0,
    }


# ---------------------------------------------------------------------------
# per_decision / sweep: end-to-end latencies
# ---------------------------------------------------------------------------

def bench_per_decision(cfg: BenchConfig) -> list[dict[str, Any]]:
    rows = []
    for scenario, scheduler, n_jobs in cfg.per_decision_cells:
        t0 = time.perf_counter()
        run = run_single(
            scenario, n_jobs, scheduler,
            workload_seed=cfg.seed, scheduler_seed=cfg.seed,
        )
        wall = time.perf_counter() - t0
        decisions = len(run.result.decisions)
        rows.append(
            {
                "scenario": scenario,
                "scheduler": scheduler,
                "n_jobs": n_jobs,
                "decisions": decisions,
                "wall_s": round(wall, 3),
                "us_per_decision": round(
                    wall / max(decisions, 1) * 1e6, 2
                ),
            }
        )
    return rows


def bench_disruption(cfg: BenchConfig) -> dict[str, Any]:
    """Failure-heavy run vs. its undisrupted twin.

    Same workload, same scheduler, once with a seeded per-node failure
    process and checkpoint restarts and once clean. The dimensionless
    ``overhead_ratio`` (disrupted ÷ clean µs/decision) survives runner
    generation changes, so baseline comparisons stay meaningful where
    absolute timings drift.
    """
    from repro.sim.disruptions import DisruptionSpec

    scenario, scheduler, n_jobs = cfg.disruption_cell
    spec = DisruptionSpec(
        mtbf=cfg.disruption_mtbf, mttr=cfg.disruption_mttr, seed=cfg.seed
    )

    def timed(disruptions):
        t0 = time.perf_counter()
        run = run_single(
            scenario, n_jobs, scheduler,
            workload_seed=cfg.seed, scheduler_seed=cfg.seed,
            disruptions=disruptions,
            restart_policy="checkpoint" if disruptions else "resubmit",
            checkpoint_interval=(
                cfg.disruption_checkpoint if disruptions else None
            ),
        )
        return time.perf_counter() - t0, run

    clean_wall, clean = timed(None)
    disrupted_wall, disrupted = timed(spec)
    clean_us = clean_wall / max(len(clean.result.decisions), 1) * 1e6
    disrupted_us = (
        disrupted_wall / max(len(disrupted.result.decisions), 1) * 1e6
    )
    return {
        "scenario": scenario,
        "scheduler": scheduler,
        "n_jobs": n_jobs,
        "n_preemptions": len(disrupted.result.preemptions),
        "clean_wall_s": round(clean_wall, 3),
        "disrupted_wall_s": round(disrupted_wall, 3),
        "clean_us_per_decision": round(clean_us, 2),
        "disrupted_us_per_decision": round(disrupted_us, 2),
        "overhead_ratio": round(disrupted_us / clean_us, 3)
        if clean_us
        else 1.0,
    }


def bench_correlated(cfg: BenchConfig) -> dict[str, Any]:
    """Correlated (rack-shock) run vs. its undisrupted twin.

    Same workload and scheduler on the same rack topology, once under
    whole-rack shocks with checkpoint restarts and once clean. Tracks
    what domain-event handling (block kills, per-domain capacity views,
    spread gating) costs per decision; ``overhead_ratio`` is the
    dimensionless number CI compares across runner generations.
    """
    from repro.sim.disruptions import DisruptionSpec
    from repro.sim.topology import ClusterTopology

    scenario, scheduler, n_jobs = cfg.correlated_cell
    topology = ClusterTopology(
        n_nodes=256, rack_size=cfg.correlated_rack_size
    )
    spec = DisruptionSpec(
        rack_mtbf=cfg.correlated_rack_mtbf,
        mttr=cfg.correlated_mttr,
        correlation=1.0,
        seed=cfg.seed,
    )

    def timed(disruptions):
        t0 = time.perf_counter()
        run = run_single(
            scenario, n_jobs, scheduler,
            workload_seed=cfg.seed, scheduler_seed=cfg.seed,
            topology=topology,
            disruptions=disruptions,
            restart_policy="checkpoint" if disruptions else "resubmit",
            checkpoint_interval=(
                cfg.correlated_checkpoint if disruptions else None
            ),
        )
        return time.perf_counter() - t0, run

    clean_wall, clean = timed(None)
    shocked_wall, shocked = timed(spec)
    clean_us = clean_wall / max(len(clean.result.decisions), 1) * 1e6
    shocked_us = (
        shocked_wall / max(len(shocked.result.decisions), 1) * 1e6
    )
    blast = shocked.metrics.as_dict().get(
        "largest_event_loss_node_hours", 0.0
    )
    return {
        "scenario": scenario,
        "scheduler": scheduler,
        "n_jobs": n_jobs,
        "topology": topology.signature(),
        "n_preemptions": len(shocked.result.preemptions),
        "largest_event_loss_node_hours": round(blast, 2),
        "clean_wall_s": round(clean_wall, 3),
        "correlated_wall_s": round(shocked_wall, 3),
        "clean_us_per_decision": round(clean_us, 2),
        "correlated_us_per_decision": round(shocked_us, 2),
        "overhead_ratio": round(shocked_us / clean_us, 3)
        if clean_us
        else 1.0,
    }


def bench_sweep(cfg: BenchConfig) -> dict[str, Any]:
    t0 = time.perf_counter()
    runs = run_matrix(
        cfg.sweep_scenarios,
        cfg.sweep_sizes,
        cfg.sweep_schedulers,
        workload_seed=cfg.seed,
        scheduler_seed=cfg.seed,
    )
    wall = time.perf_counter() - t0
    return {"cells": len(runs), "wall_s": round(wall, 3)}


# ---------------------------------------------------------------------------
# scaling: flat-array engine replay cost at 10k/50k/100k jobs
# ---------------------------------------------------------------------------

def _timed_replay(cfg: BenchConfig, jobs, engine: str) -> tuple[float, Any]:
    """Wall-clock one end-to-end replay of *jobs* (construction and
    workload validation excluded — the section measures the event loop)."""
    from repro.schedulers.registry import create_scheduler
    from repro.sim.simulator import HPCSimulator

    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=create_scheduler(cfg.scaling_scheduler, seed=cfg.seed),
        engine=engine,
    )
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def bench_scaling(cfg: BenchConfig) -> dict[str, Any]:
    """Engine replay cost vs job count, plus month-long SWF replays.

    *cells*: each scaling size replayed once on the flat-array engine
    under an FCFS steady-state workload; ``us_per_event`` normalizes
    wall-clock by the 2·n arrival+completion events, and
    ``growth_ratio`` (vs the smallest cell) is the dimensionless
    flat-to-sublinear acceptance number. *engine*: one backlogged
    cell replayed on both engines — ``engine_speedup`` (object ÷ SoA
    wall) tracks what the flat-array rebuild buys where queue depth
    makes the layouts diverge. *swf_replay*: the
    workload's arrivals stretched over N days, round-tripped through
    ``workloads/swf.py`` in memory, and replayed — the trace-archive
    path as a routine measurement.
    """
    import io

    from repro.workloads.swf import jobs_from_swf, jobs_to_swf
    from repro.workloads.transforms import with_scaled_arrivals

    rows: list[dict[str, Any]] = []
    base_us: Optional[float] = None
    for n in cfg.scaling_sizes:
        jobs = generate_workload(cfg.scaling_scenario, n, seed=cfg.seed)
        wall, result = _timed_replay(cfg, jobs, "soa")
        events = 2 * n
        us = wall / events * 1e6
        row = {
            "scenario": cfg.scaling_scenario,
            "n_jobs": n,
            "events": events,
            "decisions": len(result.decisions),
            "wall_s": round(wall, 3),
            "us_per_event": round(us, 2),
        }
        if base_us is None:
            base_us = us
        else:
            row["growth_ratio"] = round(us / base_us, 3) if base_us else 1.0
        rows.append(row)

    n0 = cfg.engine_compare_jobs
    jobs = generate_workload(cfg.engine_compare_scenario, n0, seed=cfg.seed)
    soa_wall, _ = _timed_replay(cfg, jobs, "soa")
    object_wall, _ = _timed_replay(cfg, jobs, "object")
    engine_row = {
        "scenario": cfg.engine_compare_scenario,
        "n_jobs": n0,
        "soa_wall_s": round(soa_wall, 3),
        "object_wall_s": round(object_wall, 3),
        "engine_speedup": round(object_wall / soa_wall, 2)
        if soa_wall > 0
        else float("inf"),
    }

    swf_rows: list[dict[str, Any]] = []
    for n, days in cfg.swf_replay_cells:
        jobs = generate_workload(cfg.scaling_scenario, n, seed=cfg.seed)
        span = jobs[-1].submit_time
        if span > 0:
            jobs = with_scaled_arrivals(jobs, days * 86_400.0 / span)
        buf = io.StringIO()
        jobs_to_swf(jobs, buf, header=f"bench scaling cell {n}@{days:g}d")
        buf.seek(0)
        jobs = jobs_from_swf(buf)
        # Best of two replays: in the full profile these cells run
        # after minutes of allocation-heavy planning benchmarks, and a
        # single replay occasionally eats a major GC pause (observed
        # 5x inflation on the 2-day cell). The minimum is the
        # steady-state cost.
        wall, result = _timed_replay(cfg, jobs, "soa")
        wall = min(wall, _timed_replay(cfg, jobs, "soa")[0])
        events = 2 * len(jobs)
        swf_rows.append(
            {
                "scenario": cfg.scaling_scenario,
                "n_jobs": len(jobs),
                "days": days,
                "events": events,
                "decisions": len(result.decisions),
                "wall_s": round(wall, 3),
                "us_per_event": round(wall / events * 1e6, 2),
            }
        )
    return {"cells": rows, "engine": engine_row, "swf_replay": swf_rows}


# ---------------------------------------------------------------------------
# decisions: columnar kernels vs Job-facade twins
# ---------------------------------------------------------------------------

def _decision_point(n_queued: int, seed: int) -> SystemView:
    """A fully-contended decision point: *n_queued* jobs queued and
    nothing fits (zero free memory), so sort/filter-shaped kernels do
    their complete full-queue work on both sides — the facade scans
    can't early-exit on a lucky first candidate. The early-exit regime
    (partially free capacity, short queues) is covered by the replay
    rows, which run real workloads end to end."""
    import dataclasses

    view = _replan_view(n_queued, 12, seed)
    return dataclasses.replace(view, free_nodes=2, free_memory_gb=0.0)


def _time_decide_batch(
    sched, view: SystemView, shared_cols, inner: int
) -> float:
    """Mean per-``decide()`` wall over a batch of *inner* fresh views.

    Probes are built before the clock starts (fresh per-view caches,
    so every decide does its full per-decision work); batching keeps
    each timing sample in the milliseconds, where single-decide
    samples of a ~10 µs kernel are mostly timer jitter — and jitter
    in a gated ratio is a CI flake. Columnar timing gets
    *shared_cols* (prebuilt per-run master columns) attached to each
    probe — the engine's steady-state accounting, where masters are
    built once per run and only the per-view masks are per-decision.
    Facade timing passes ``None``.
    """
    import dataclasses

    from repro.sim.columns import ViewColumns

    probes = []
    for _ in range(inner):
        probe = dataclasses.replace(view)
        if shared_cols is not None:
            object.__setattr__(
                probe, "_columns", ViewColumns(shared_cols, probe)
            )
        probes.append(probe)
    sched.reset()
    t0 = time.perf_counter()
    for probe in probes:
        sched.decide(probe)
    return (time.perf_counter() - t0) / inner


def bench_decisions(cfg: BenchConfig) -> dict[str, Any]:
    """Columnar decision kernels vs their ``Job``-facade twins.

    *kernel* rows time one ``decide()`` at fixed backlogged queue
    depths — the pure decision-kernel comparison (argsort/mask vs
    per-job key lambdas), with per-run master columns prebuilt on the
    columnar side exactly as the engine amortizes them. *replay* rows
    run the same steady-state workload end to end on both sides
    (columnar default vs ``use_columns=False``), alternating and
    keeping per-side minima, reporting µs/event and
    µs/decision; the dimensionless ``columnar_speedup`` /
    ``kernel_speedup`` are what CI gates across runner generations.
    Both kernels are digest-pinned byte-identical, so every row is a
    pure like-for-like timing.
    """
    from repro.schedulers.registry import create_scheduler
    from repro.sim.columns import queue_columns_from_jobs
    from repro.sim.simulator import HPCSimulator

    kernel_rows: list[dict[str, Any]] = []
    for name in cfg.decisions_kernel_schedulers:
        for depth in cfg.decisions_kernel_depths:
            view = _decision_point(depth, cfg.seed)
            shared = queue_columns_from_jobs(view.queued)
            col_sched = create_scheduler(name, seed=cfg.seed)
            fac_sched = create_scheduler(
                name, seed=cfg.seed, use_columns=False
            )
            # Batch size targets a few ms of decide work per sample at
            # every depth (deep queues cost more per decide).
            inner = max(4, 16_384 // depth)
            # Alternate sides within each repeat round: timing the two
            # kernels in separate back-to-back loops lets any
            # machine-load drift land entirely on one side, and that
            # jitter is what the strict dimensionless gate would see.
            col_s = fac_s = float("inf")
            for _ in range(cfg.decisions_kernel_repeats):
                col_s = min(
                    col_s,
                    _time_decide_batch(col_sched, view, shared, inner),
                )
                fac_s = min(
                    fac_s,
                    _time_decide_batch(fac_sched, view, None, inner),
                )
            kernel_rows.append(
                {
                    "scheduler": name,
                    "queue_depth": depth,
                    "columnar_us_per_decision": round(col_s * 1e6, 2),
                    "facade_us_per_decision": round(fac_s * 1e6, 2),
                    "kernel_speedup": round(fac_s / col_s, 2)
                    if col_s > 0
                    else float("inf"),
                }
            )

    replay_rows: list[dict[str, Any]] = []
    for n in cfg.decisions_sizes:
        jobs = generate_workload(
            cfg.decisions_scenario, n, seed=cfg.seed
        )
        walls: dict[bool, float] = {True: float("inf"), False: float("inf")}
        decisions = 0
        for _ in range(cfg.decisions_replay_repeats):
            for use_columns in (True, False):
                sim = HPCSimulator(
                    jobs=list(jobs),
                    scheduler=create_scheduler(
                        cfg.decisions_scheduler,
                        seed=cfg.seed,
                        use_columns=use_columns,
                    ),
                )
                t0 = time.perf_counter()
                result = sim.run()
                walls[use_columns] = min(
                    walls[use_columns], time.perf_counter() - t0
                )
                decisions = len(result.decisions)
        events = 2 * n
        replay_rows.append(
            {
                "scenario": cfg.decisions_scenario,
                "scheduler": cfg.decisions_scheduler,
                "n_jobs": n,
                "events": events,
                "decisions": decisions,
                "columnar_wall_s": round(walls[True], 3),
                "facade_wall_s": round(walls[False], 3),
                "columnar_us_per_event": round(
                    walls[True] / events * 1e6, 2
                ),
                "facade_us_per_event": round(
                    walls[False] / events * 1e6, 2
                ),
                "columnar_us_per_decision": round(
                    walls[True] / max(decisions, 1) * 1e6, 2
                ),
                "facade_us_per_decision": round(
                    walls[False] / max(decisions, 1) * 1e6, 2
                ),
                "columnar_speedup": round(walls[False] / walls[True], 3)
                if walls[True] > 0
                else float("inf"),
            }
        )
    return {"kernel": kernel_rows, "replay": replay_rows}


# ---------------------------------------------------------------------------
# report assembly / comparison
# ---------------------------------------------------------------------------

#: Every bench section, in run order, with its progress note.
# ---------------------------------------------------------------------------
# storage: cold keyed-query cost, JSONL full parse vs sharded shard parse
# ---------------------------------------------------------------------------

def _synthetic_archive(path, n_cells: int) -> None:
    """Write *n_cells* distinct-key store lines in one shot (the
    section benches reads; fsync-per-append would dominate a real
    append loop and measure the wrong thing)."""
    from repro.experiments.store import StoredRun

    lines = []
    for i in range(n_cells):
        lines.append(StoredRun(
            scenario="heterogeneous_mix",
            n_jobs=100,
            scheduler="fcfs",
            workload_seed=i,
            scheduler_seed=0,
            metrics={"makespan": 1000.0 + i, "avg_wait_time": 5.0},
            decision_summary={},
            overhead=None,
        ).to_json())
    path.write_text("\n".join(lines) + "\n")


def bench_storage(cfg: BenchConfig) -> dict[str, Any]:
    """Cold keyed queries against both store layouts.

    Each probe opens a *fresh* store object (no parsed-file cache) and
    runs one fully-pinned ``iter_runs`` query — the single-file store
    must parse the whole archive, the sharded store only the owning
    shard. The reported ``query_speedup`` is the dimensionless
    acceptance number; absolute per-query wall rides along for eyes.
    """
    import tempfile
    from pathlib import Path

    from repro.experiments.store import RunStore
    from repro.experiments.storage import ShardedStore, migrate_to_sharded

    n = cfg.storage_cells
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as td:
        root = Path(td)
        jsonl = root / "runs.jsonl"
        _synthetic_archive(jsonl, n)

        t0 = time.perf_counter()
        migrate_to_sharded(
            jsonl, root / "runs.store", n_shards=cfg.storage_shards
        )
        migrate_wall = time.perf_counter() - t0

        # Probe keys spread across the archive ends and middle.
        n_probes = max(cfg.storage_queries, 1)
        probe_seeds = sorted({
            int(i * (n - 1) / max(n_probes - 1, 1))
            for i in range(n_probes)
        })

        def cold_query_s(make_store) -> float:
            total = 0.0
            for seed in probe_seeds:
                store = make_store()
                where = {
                    "scenario": "heterogeneous_mix",
                    "n_jobs": 100,
                    "scheduler": "fcfs",
                    "workload_seed": seed,
                    "scheduler_seed": 0,
                    "arrival_mode": "scenario",
                    "disruption_sig": "none",
                    "topology_sig": "flat",
                }
                t0 = time.perf_counter()
                hits = list(store.iter_runs(where))
                total += time.perf_counter() - t0
                assert len(hits) == 1, f"probe seed {seed} missed"
            return total / len(probe_seeds)

        jsonl_s = cold_query_s(lambda: RunStore(jsonl))
        sharded_s = cold_query_s(lambda: ShardedStore(root / "runs.store"))

    return {
        "n_cells": n,
        "n_shards": cfg.storage_shards,
        "n_queries": len(probe_seeds),
        "migrate_wall_s": round(migrate_wall, 3),
        "jsonl_query_ms": round(jsonl_s * 1e3, 3),
        "sharded_query_ms": round(sharded_s * 1e3, 3),
        "query_speedup": round(jsonl_s / sharded_s, 2),
    }


BENCH_SECTIONS: dict[str, tuple[Callable[[BenchConfig], Any], str]] = {
    "replan_event": (
        bench_replan_event, "incremental vs naive replanning",
    ),
    "planning": (
        bench_planning, "windowed vs full annealing at equal budget",
    ),
    "decision_snapshot": (
        bench_decision_snapshot, "per-decision cost vs completed jobs",
    ),
    "per_decision": (
        bench_per_decision, "end-to-end decision latencies",
    ),
    "disruption": (
        bench_disruption, "failure-heavy run vs undisrupted twin",
    ),
    "correlated": (
        bench_correlated, "rack-shock run vs undisrupted twin",
    ),
    "scaling": (
        bench_scaling, "flat-array engine replay cost vs job count",
    ),
    "decisions": (
        bench_decisions, "columnar decision kernels vs facade twins",
    ),
    "sweep": (
        bench_sweep, "serial mini-matrix wall clock",
    ),
    "storage": (
        bench_storage, "cold keyed query: jsonl scan vs sharded parse",
    ),
}


def run_bench(
    cfg: Optional[BenchConfig] = None,
    *,
    quick: bool = False,
    sections: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Run bench sections and assemble the JSON report.

    *sections* restricts the run to a named subset (in canonical
    order) — the blocking CI scaling smoke runs only ``scaling``
    instead of paying for the full advisory suite. ``None`` runs
    everything. Unknown names raise ``ValueError``.
    """
    cfg = cfg or (BenchConfig.quick() if quick else BenchConfig())
    if sections is None:
        chosen = set(BENCH_SECTIONS)
    else:
        chosen = set(sections)
        unknown = chosen - set(BENCH_SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown bench section(s) {sorted(unknown)}; choose "
                f"from {sorted(BENCH_SECTIONS)}"
            )

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    metrics: dict[str, Any] = {}
    for name, (fn, description) in BENCH_SECTIONS.items():
        if name not in chosen:
            continue
        note(f"{name}: {description} …")
        metrics[name] = fn(cfg)

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "metrics": metrics,
    }


def _flatten(report: dict[str, Any]) -> dict[str, float]:
    """Flatten a report's numeric metrics to dotted-path keys."""
    flat: dict[str, float] = {}
    metrics = report.get("metrics", {})
    for row in metrics.get("replan_event", ()):
        base = f"replan_event[{row['queue_size']}]"
        for key in ("incremental_ms", "naive_ms", "speedup"):
            if key in row:
                flat[f"{base}.{key}"] = float(row[key])
    planning = metrics.get("planning", {})
    for row in planning.get("latency", ()):
        base = (
            f"planning[{row['queue_size']}@{row['iterations']}"
            f"/w{row['window']}]"
        )
        for key in (
            "full_ms",
            "windowed_ms",
            "replan_speedup",
            "windowed_packed_per_move",
        ):
            if key in row:
                flat[f"{base}.{key}"] = float(row[key])
    for row in planning.get("quality", ()):
        base = f"planning_quality[{row['queue_size']}/w{row['window']}]"
        if "quality_ratio" in row:
            flat[f"{base}.quality_ratio"] = float(row["quality_ratio"])
    snap = metrics.get("decision_snapshot", {})
    for key in ("us_per_decision", "growth_ratio"):
        if key in snap:
            # Qualified by workload size so a quick-profile run is
            # never compared against a full-profile baseline cell.
            flat[f"decision_snapshot[{snap.get('n_jobs')}].{key}"] = float(
                snap[key]
            )
    for row in metrics.get("per_decision", ()):
        base = (
            f"per_decision[{row['scenario']}/{row['scheduler']}"
            f"/{row['n_jobs']}]"
        )
        flat[f"{base}.us_per_decision"] = float(row["us_per_decision"])
    dis = metrics.get("disruption", {})
    if dis:
        base = (
            f"disruption[{dis.get('scenario')}/{dis.get('scheduler')}"
            f"/{dis.get('n_jobs')}]"
        )
        for key in (
            "clean_us_per_decision",
            "disrupted_us_per_decision",
            "overhead_ratio",
        ):
            if key in dis:
                flat[f"{base}.{key}"] = float(dis[key])
    corr = metrics.get("correlated", {})
    if corr:
        base = (
            f"correlated[{corr.get('scenario')}/{corr.get('scheduler')}"
            f"/{corr.get('n_jobs')}@{corr.get('topology')}]"
        )
        for key in (
            "clean_us_per_decision",
            "correlated_us_per_decision",
            "overhead_ratio",
        ):
            if key in corr:
                flat[f"{base}.{key}"] = float(corr[key])
    scaling = metrics.get("scaling", {})
    for row in scaling.get("cells", ()):
        base = f"scaling[{row['scenario']}/{row['n_jobs']}]"
        for key in ("us_per_event", "growth_ratio"):
            if key in row:
                flat[f"{base}.{key}"] = float(row[key])
    eng = scaling.get("engine", {})
    if eng:
        base = f"scaling_engine[{eng.get('scenario')}/{eng.get('n_jobs')}]"
        for key in ("soa_wall_s", "object_wall_s", "engine_speedup"):
            if key in eng:
                flat[f"{base}.{key}"] = float(eng[key])
    for row in scaling.get("swf_replay", ()):
        base = (
            f"scaling_swf[{row['scenario']}/{row['n_jobs']}"
            f"@{row['days']:g}d]"
        )
        flat[f"{base}.us_per_event"] = float(row["us_per_event"])
    decisions = metrics.get("decisions", {})
    for row in decisions.get("kernel", ()):
        base = (
            f"decisions_kernel[{row['scheduler']}/{row['queue_depth']}]"
        )
        for key in (
            "columnar_us_per_decision",
            "facade_us_per_decision",
            "kernel_speedup",
        ):
            if key in row:
                flat[f"{base}.{key}"] = float(row[key])
    for row in decisions.get("replay", ()):
        base = (
            f"decisions[{row['scenario']}/{row['scheduler']}"
            f"/{row['n_jobs']}]"
        )
        for key in (
            "columnar_us_per_event",
            "facade_us_per_event",
            "columnar_us_per_decision",
            "facade_us_per_decision",
            "columnar_speedup",
        ):
            if key in row:
                flat[f"{base}.{key}"] = float(row[key])
    sweep = metrics.get("sweep", {})
    if "wall_s" in sweep:
        flat[f"sweep[{sweep.get('cells')}].wall_s"] = float(sweep["wall_s"])
    sto = metrics.get("storage", {})
    if sto:
        base = f"storage[{sto.get('n_cells')}x{sto.get('n_shards')}]"
        for key in (
            "jsonl_query_ms",
            "sharded_query_ms",
            "query_speedup",
            "migrate_wall_s",
        ):
            if key in sto:
                flat[f"{base}.{key}"] = float(sto[key])
    return flat


@dataclass
class Regression:
    """One metric that moved the wrong way past the threshold."""

    metric: str
    baseline: float
    current: float
    change: float  # relative, positive = worse

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.baseline:g} -> {self.current:g} "
            f"({self.change * 100:+.0f}% worse)"
        )


def compare_to_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float = 0.25,
    dimensionless_only: bool = False,
) -> list[Regression]:
    """Metrics that regressed more than *threshold* vs *baseline*.

    Only metric keys present in both reports are compared, so config
    reshapes (new sizes, new cells) do not fabricate regressions.
    With ``dimensionless_only``, only pure-ratio metrics (speedups,
    growth/overhead ratios) are compared — the comparison that stays
    meaningful when the baseline was generated on different hardware
    (CI runner generations).
    """
    cur, base = _flatten(current), _flatten(baseline)
    regressions: list[Regression] = []
    for key in sorted(set(cur) & set(base)):
        if dimensionless_only and not key.endswith(_DIMENSIONLESS_SUFFIXES):
            continue
        b, c = base[key], cur[key]
        if b <= 0:
            continue
        if key.endswith(_HIGHER_IS_BETTER_SUFFIXES):
            change = (b - c) / b
        elif key.endswith(_LOWER_IS_BETTER_SUFFIXES):
            change = (c - b) / b
        else:  # pragma: no cover - every emitted key matches a suffix
            continue
        if change > threshold:
            regressions.append(
                Regression(metric=key, baseline=b, current=c, change=change)
            )
    return regressions


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of one bench report."""
    m = report["metrics"]
    lines = [
        f"== bench (schema {report['schema']}, "
        f"{'quick' if report.get('quick') else 'full'}, "
        f"py {report.get('python', '?')})",
    ]
    if "replan_event" in m:
        lines += [
            "",
            "replanning event (annealer, one decision point):",
            "  queue   incremental      naive    speedup",
        ]
        for row in m["replan_event"]:
            lines.append(
                f"  {row['queue_size']:>5d}   {row['incremental_ms']:>8.2f}ms"
                f"   {row['naive_ms']:>8.2f}ms   {row['speedup']:>6.2f}x"
            )
    planning = m.get("planning", {})
    if planning:
        lines += [
            "",
            "windowed planning (equal iteration budget, one replan):",
            "  queue  iters       full   windowed    speedup  packed/move",
        ]
        for row in planning.get("latency", ()):
            lines.append(
                f"  {row['queue_size']:>5d}  {row['iterations']:>5d}"
                f"   {row['full_ms']:>8.0f}ms {row['windowed_ms']:>8.0f}ms"
                f"   {row['replan_speedup']:>7.2f}x"
                f"  {row['full_packed_per_move']:>5.0f}"
                f" -> {row['windowed_packed_per_move']:.0f}"
            )
        for row in planning.get("quality", ()):
            lines.append(
                f"  quality @ {row['queue_size']} jobs, default budget: "
                f"windowed/full objective x{row['quality_ratio']:.4f}"
            )
    snap = m.get("decision_snapshot")
    if snap:
        lines += [
            "",
            f"decision snapshots ({snap['n_jobs']} jobs, "
            f"{snap['decisions']} decisions):",
            f"  {snap['us_per_decision']:.1f} us/decision overall; "
            f"first-quartile {snap['first_quartile_us']:.1f} us vs "
            f"last-quartile {snap['last_quartile_us']:.1f} us "
            f"(growth x{snap['growth_ratio']:.2f})",
        ]
    if "per_decision" in m:
        lines += ["", "end-to-end per-decision latency:"]
        for row in m["per_decision"]:
            lines.append(
                f"  {row['scenario']}/{row['scheduler']} n={row['n_jobs']}: "
                f"{row['us_per_decision']:.1f} us/decision "
                f"({row['decisions']} decisions, {row['wall_s']:.2f}s)"
            )
    dis = m.get("disruption")
    if dis:
        lines += [
            "",
            f"disruption ({dis['scenario']}/{dis['scheduler']} "
            f"n={dis['n_jobs']}, {dis['n_preemptions']} preemptions):",
            f"  clean {dis['clean_us_per_decision']:.1f} us/decision vs "
            f"disrupted {dis['disrupted_us_per_decision']:.1f} us/decision "
            f"(overhead x{dis['overhead_ratio']:.2f})",
        ]
    corr = m.get("correlated")
    if corr:
        lines += [
            "",
            f"correlated ({corr['scenario']}/{corr['scheduler']} "
            f"n={corr['n_jobs']} on {corr['topology']}, "
            f"{corr['n_preemptions']} preemptions, "
            f"blast {corr['largest_event_loss_node_hours']:.1f} nh):",
            f"  clean {corr['clean_us_per_decision']:.1f} us/decision vs "
            f"correlated {corr['correlated_us_per_decision']:.1f} "
            f"us/decision (overhead x{corr['overhead_ratio']:.2f})",
        ]
    scaling = m.get("scaling")
    if scaling:
        lines += [
            "",
            "engine scaling (flat-array replay, us per event):",
            "   jobs      wall   us/event     growth",
        ]
        for row in scaling.get("cells", ()):
            growth = (
                f"  x{row['growth_ratio']:.2f}"
                if "growth_ratio" in row
                else "   base"
            )
            lines.append(
                f"  {row['n_jobs']:>6d} {row['wall_s']:>8.2f}s"
                f" {row['us_per_event']:>8.1f}us  {growth}"
            )
        eng = scaling.get("engine")
        if eng:
            lines.append(
                f"  engine @ {eng['scenario']}/{eng['n_jobs']}: object "
                f"{eng['object_wall_s']:.2f}s vs soa "
                f"{eng['soa_wall_s']:.2f}s "
                f"(x{eng['engine_speedup']:.2f})"
            )
        for row in scaling.get("swf_replay", ()):
            lines.append(
                f"  swf replay {row['n_jobs']} jobs over "
                f"{row['days']:g} days: {row['wall_s']:.2f}s "
                f"({row['us_per_event']:.1f} us/event)"
            )
    decisions = m.get("decisions")
    if decisions:
        lines += [
            "",
            "columnar decisions (vs Job-facade twin):",
        ]
        for row in decisions.get("kernel", ()):
            lines.append(
                f"  kernel {row['scheduler']} @ depth "
                f"{row['queue_depth']}: "
                f"{row['facade_us_per_decision']:.1f} -> "
                f"{row['columnar_us_per_decision']:.1f} us/decision "
                f"(x{row['kernel_speedup']:.2f})"
            )
        for row in decisions.get("replay", ()):
            lines.append(
                f"  replay {row['scenario']}/{row['scheduler']} "
                f"n={row['n_jobs']}: "
                f"{row['facade_us_per_event']:.1f} -> "
                f"{row['columnar_us_per_event']:.1f} us/event "
                f"(x{row['columnar_speedup']:.2f})"
            )
    sweep = m.get("sweep")
    if sweep:
        lines += [
            "",
            f"serial sweep: {sweep['cells']} cells in {sweep['wall_s']:.2f}s",
        ]
    sto = m.get("storage")
    if sto:
        lines += [
            "",
            f"storage ({sto['n_cells']} cells, {sto['n_shards']} shards, "
            f"{sto['n_queries']} cold keyed queries):",
            f"  jsonl {sto['jsonl_query_ms']:.1f} ms/query vs sharded "
            f"{sto['sharded_query_ms']:.1f} ms/query "
            f"(x{sto['query_speedup']:.1f}); migrate "
            f"{sto['migrate_wall_s']:.2f}s",
        ]
    return "\n".join(lines)


def load_report(path: str) -> dict[str, Any]:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {report.get('schema')!r} != "
            f"{SCHEMA_VERSION} (regenerate the baseline)"
        )
    return report


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
