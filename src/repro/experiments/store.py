"""Resumable JSONL artifact store for experiment runs.

Large sweeps (scenarios × sizes × schedulers × seeds) stream each
completed :class:`~repro.experiments.runner.ExperimentRun` to disk as
one schema-versioned JSON line the moment it finishes, so a killed or
crashed sweep loses at most the cells in flight. On restart the engine
asks the store which cells are already persisted and skips them.

What is persisted is the *measurement*, not the full simulation: the
eight §3.2 metrics, the LLM overhead summary (§3.7 accounting) and a
decision summary (action counts by kind / acceptance). Full
:class:`~repro.sim.schedule.ScheduleResult` objects stay in memory
only — they are large and re-derivable from the (scenario, seed) cell.

Layout: one JSONL file, one line per cell, append-only. A truncated
final line (interrupted write) is tolerated on load; corruption
anywhere else raises.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.experiments import faultinject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRun

#: Bump when the serialized shape changes incompatibly. Loaders accept
#: any version up to the current one (older lines keep their shape).
#: v2 added the disruption columns (``disruption`` config dict +
#: ``disruption_sig`` identity string); v1 lines load with both
#: defaulting to "no disruptions". v3 added ``topology_sig`` (cluster
#: topology identity, part of the cell key — the correlated-failure
#: trace a spec builds depends on the rack layout, so the same seeds
#: on a different topology are a different experiment); v1/v2 lines
#: load with it defaulting to "flat", which is exactly the topology
#: they ran under.
SCHEMA_VERSION = 3

#: Identity of one matrix cell: (scenario, n_jobs, scheduler,
#: workload_seed, scheduler_seed, arrival_mode, disruption_sig,
#: topology_sig). arrival_mode is part of the identity because the
#: same (scenario, seed) generates a different workload under "zero"
#: arrivals; disruption_sig because the same workload under a
#: different failure regime (or restart policy) is a different
#: experiment; topology_sig because a correlated regime's trace (and
#: spread placement) depends on the rack layout — resume must not
#: treat one regime's runs as covering another.
CellKey = tuple[str, int, str, int, int, str, str, str]


def cell_key(
    scenario: str,
    n_jobs: int,
    scheduler: str,
    workload_seed: int,
    scheduler_seed: int,
    arrival_mode: str = "scenario",
    disruption: str = "none",
    topology: str = "flat",
) -> CellKey:
    """Canonical dictionary/set key for one experiment cell."""
    return (scenario, int(n_jobs), scheduler, int(workload_seed),
            int(scheduler_seed), str(arrival_mode), str(disruption),
            str(topology))


def cell_key_str(key: CellKey) -> str:
    """Canonical ``|``-joined form of a cell key — the string the
    fault-injection harness matches rules against and failure records
    carry; stable across processes because the key is."""
    return "|".join(str(part) for part in key)


#: Fields an ``iter_runs(where=...)`` filter may name — exactly the
#: cell-identity columns of a :class:`StoredRun`, in CellKey order.
WHERE_FIELDS = (
    "scenario",
    "n_jobs",
    "scheduler",
    "workload_seed",
    "scheduler_seed",
    "arrival_mode",
    "disruption_sig",
    "topology_sig",
)

_INT_WHERE_FIELDS = frozenset(("n_jobs", "workload_seed", "scheduler_seed"))


def normalize_where(
    where: Optional[dict[str, Any]]
) -> dict[str, Any]:
    """Validate and coerce an ``iter_runs`` filter.

    Unknown field names raise (a typo'd filter must not silently match
    nothing); values are coerced to the column's type so string-typed
    CLI input (``--where n_jobs=60``) compares equal to stored ints.
    """
    if not where:
        return {}
    unknown = sorted(set(where) - set(WHERE_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown where field(s): {', '.join(unknown)} "
            f"(queryable fields: {', '.join(WHERE_FIELDS)})"
        )
    return {
        name: (int(value) if name in _INT_WHERE_FIELDS else str(value))
        for name, value in where.items()
    }


def where_key(where: dict[str, Any]) -> Optional[CellKey]:
    """The full :data:`CellKey` when *where* pins every identity field
    — the case a sharded store answers from one shard — else ``None``.
    Expects an already-normalized filter."""
    if set(where) != set(WHERE_FIELDS):
        return None
    return cell_key(*(where[name] for name in WHERE_FIELDS))


def matches_where(run: "StoredRun", where: dict[str, Any]) -> bool:
    """Whether *run*'s identity columns equal every filter value."""
    return all(
        getattr(run, name) == value for name, value in where.items()
    )


@dataclass(frozen=True)
class StoredRun:
    """One persisted experiment cell: identity + measurements.

    Mirrors the measurement surface of
    :class:`~repro.experiments.runner.ExperimentRun` (``values`` /
    ``metrics``) so reporting code can consume either interchangeably.
    """

    scenario: str
    n_jobs: int
    scheduler: str
    workload_seed: int
    scheduler_seed: int
    #: The eight §3.2 objective values, by canonical metric name.
    metrics: dict[str, float]
    arrival_mode: str = "scenario"
    #: Action counts: n_decisions / n_accepted / n_rejected plus a
    #: per-kind breakdown (``by_kind``) over accepted actions.
    decision_summary: dict[str, Any] = field(default_factory=dict)
    #: Flattened ``OverheadSummary`` for LLM schedulers, else ``None``.
    overhead: Optional[dict[str, Any]] = None
    #: Canonical disruption identity (trace config + restart policy);
    #: "none" for undisrupted cells and for schema-v1 lines.
    disruption_sig: str = "none"
    #: Disruption configuration & outcome columns for disrupted cells
    #: (spec parameters, restart policy, kill counts), else ``None``.
    disruption: Optional[dict[str, Any]] = None
    #: Cluster topology identity ("flat" = no failure domains — the
    #: default, and what every pre-v3 line ran under).
    topology_sig: str = "flat"
    schema_version: int = SCHEMA_VERSION

    @property
    def key(self) -> CellKey:
        return cell_key(
            self.scenario,
            self.n_jobs,
            self.scheduler,
            self.workload_seed,
            self.scheduler_seed,
            self.arrival_mode,
            self.disruption_sig,
            self.topology_sig,
        )

    @property
    def values(self) -> dict[str, float]:
        """Metric dict, same accessor :class:`ExperimentRun` exposes."""
        return dict(self.metrics)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_run(cls, run: "ExperimentRun") -> "StoredRun":
        """Summarize a finished :class:`ExperimentRun` for persistence."""
        by_kind = Counter(
            d.action.kind.value for d in run.result.decisions if d.accepted
        )
        summary: dict[str, Any] = {
            "n_decisions": len(run.result.decisions),
            "n_accepted": sum(1 for d in run.result.decisions if d.accepted),
            "n_rejected": sum(
                1 for d in run.result.decisions if not d.accepted
            ),
            "by_kind": dict(sorted(by_kind.items())),
        }
        overhead: Optional[dict[str, Any]] = None
        if run.overhead is not None:
            overhead = {
                "model": run.overhead.model,
                "elapsed_s": run.overhead.elapsed_s,
                "n_calls": run.overhead.n_calls,
                "n_accepted_placements": run.overhead.n_accepted_placements,
                "n_rejected": run.overhead.n_rejected,
                "latency": asdict(run.overhead.latency),
            }
        disruption: Optional[dict[str, Any]] = None
        if run.disruption_spec is not None:
            disruption = {
                "spec": run.disruption_spec.as_dict(),
                "restart_policy": run.restart_policy,
                "checkpoint_interval": run.checkpoint_interval,
                "n_preemptions": len(run.result.preemptions),
                "kills": dict(
                    run.result.extras.get("disruption_kills", {})
                ),
            }
            # Per-domain attribution only exists for correlated /
            # domain-event traces; zero-correlation lines keep the
            # exact pre-topology shape.
            domain_kills = run.result.extras.get("domain_kills")
            if domain_kills is not None:
                disruption["domain_kills"] = dict(domain_kills)
        return cls(
            scenario=run.scenario,
            n_jobs=run.n_jobs,
            scheduler=run.scheduler,
            workload_seed=run.workload_seed,
            scheduler_seed=run.scheduler_seed,
            arrival_mode=run.arrival_mode,
            metrics=dict(run.metrics.as_dict()),
            decision_summary=summary,
            overhead=overhead,
            disruption_sig=run.disruption_sig,
            disruption=disruption,
            topology_sig=run.topology_sig,
        )

    # -- (de)serialization ----------------------------------------------
    def to_json(self) -> str:
        """One compact JSON line (no newline)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "StoredRun":
        """Parse one store line; raises ``ValueError`` on bad input."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed store line: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("store line is not a JSON object")
        version = payload.get("schema_version", 0)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"missing/invalid schema_version: {version!r}")
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"store line has schema_version {version}, newer than "
                f"supported {SCHEMA_VERSION}; upgrade the code to read it"
            )
        try:
            return cls(
                scenario=str(payload["scenario"]),
                n_jobs=int(payload["n_jobs"]),
                scheduler=str(payload["scheduler"]),
                workload_seed=int(payload["workload_seed"]),
                scheduler_seed=int(payload["scheduler_seed"]),
                metrics={
                    str(k): float(v) for k, v in payload["metrics"].items()
                },
                arrival_mode=str(payload.get("arrival_mode", "scenario")),
                decision_summary=dict(payload.get("decision_summary", {})),
                overhead=payload.get("overhead"),
                disruption_sig=str(payload.get("disruption_sig", "none")),
                disruption=payload.get("disruption"),
                topology_sig=str(payload.get("topology_sig", "flat")),
                schema_version=version,
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(f"store line missing field: {exc}") from exc


class RunStore:
    """Append-only JSONL store of :class:`StoredRun` lines.

    The file is created lazily on first append; a missing file reads as
    an empty store, which makes ``--resume`` on a fresh path a no-op
    rather than an error.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: Parsed-file cache: (stat signature, runs, key set, by-key
        #: map). Resume scans call ``completed_keys``/``__contains__``
        #: in loops and the service's result cache calls :meth:`get`
        #: per request; the cache makes those O(1) after one parse
        #: instead of re-reading the archive per call. Invalidated
        #: whenever the file's (mtime_ns, size) changes — including
        #: writes by other processes — and explicitly on our own
        #: writes.
        self._cache: Optional[
            tuple[
                tuple[int, int],
                tuple[StoredRun, ...],
                frozenset[CellKey],
                dict[CellKey, StoredRun],
            ]
        ] = None

    def _stat_sig(self) -> Optional[tuple[int, int]]:
        try:
            st = self.path.stat()
        except FileNotFoundError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _invalidate(self) -> None:
        self._cache = None

    # -- writing ---------------------------------------------------------
    def _repair_tail(self) -> None:
        """Fix a final line left without its newline by a killed write.

        A parseable tail lost only the ``\\n`` — it is a complete run
        (``load`` already counts it), so the newline is restored. An
        unparseable tail is a genuinely partial write and is truncated
        away; without that, the next append would glue its JSON onto
        the fragment, turning a tolerated truncated tail into interior
        corruption that poisons every later ``load``. Costs two seeks
        and one byte read when the file is healthy.
        """
        if not self.path.exists():
            return
        with self.path.open("r+b") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            # Scan backwards for the last newline, chunk at a time.
            last_nl = -1
            pos = size
            while pos > 0 and last_nl < 0:
                start = max(0, pos - 65536)
                fh.seek(start)
                idx = fh.read(pos - start).rfind(b"\n")
                if idx >= 0:
                    last_nl = start + idx
                pos = start
            fh.seek(last_nl + 1)
            tail = fh.read().decode("utf-8", errors="replace")
            try:
                StoredRun.from_json(tail)
            except ValueError:
                fh.truncate(last_nl + 1 if last_nl >= 0 else 0)
            else:
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")

    #: How many times ``append`` retries a failed write before letting
    #: the ``OSError`` surface. Disk-full is frequently transient on
    #: shared filesystems (another sweep's temp files, a log rotation);
    #: a bounded in-place retry rides it out without corrupting the
    #: archive or losing the cell.
    APPEND_RETRIES = 3

    def append(self, run: Union[StoredRun, "ExperimentRun"]) -> StoredRun:
        """Persist one run (coercing :class:`ExperimentRun`) and return
        the stored form. Each line is flushed to the OS immediately so
        a crash loses at most the line being written.

        A write that fails with ``OSError`` (ENOSPC and kin) is retried
        up to :attr:`APPEND_RETRIES` times; each attempt re-repairs the
        tail first, so a partial write from the failed attempt is
        truncated away rather than glued onto the retry's line. If the
        condition persists the last error propagates — with the file
        left in a loadable state.
        """
        stored = run if isinstance(run, StoredRun) else StoredRun.from_run(run)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        last_err: Optional[OSError] = None
        for _attempt in range(1 + self.APPEND_RETRIES):
            try:
                self._repair_tail()
                # Chaos-harness hook: with a fault plan active this may
                # tear or garble the line, or raise a synthetic ENOSPC
                # (see faultinject); without one — the production
                # default — it returns the line verbatim.
                text, complete = faultinject.mangle_store_line(
                    cell_key_str(stored.key), stored.to_json()
                )
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(text + ("\n" if complete else ""))
                    fh.flush()
                    os.fsync(fh.fileno())
            except OSError as exc:
                last_err = exc
                self._invalidate()
                continue
            self._invalidate()
            return stored
        assert last_err is not None
        raise last_err

    # -- reading ---------------------------------------------------------
    def _iter_lines(self) -> Iterator[tuple[int, str, bool]]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            lines = fh.readlines()
        for i, line in enumerate(lines):
            if line.strip():
                yield i, line, i == len(lines) - 1

    def load(self, on_corrupt: str = "raise") -> list[StoredRun]:
        """All persisted runs, in first-appearance order, with the
        *last* write per cell winning — re-running a sweep into the
        same store (e.g. after a code change) supersedes the old
        lines, so ``report`` shows what ``matrix`` just computed.

        An unparseable final line is dropped only when it also lacks
        its trailing newline — the actual signature of a run killed
        mid-write (the cell simply re-runs on resume). For anything
        else (interior corruption, or a complete line a newer code
        version wrote) the *on_corrupt* policy decides:

        * ``"raise"`` (default): ``ValueError`` with the parse failure
          chained — corruption is loud.
        * ``"quarantine"``: the bad line is skipped in memory (the
          file is untouched) and every parseable run is returned, so
          one corrupt line costs one cell, not the archive. Run
          :meth:`doctor` to repair the file itself.
        """
        if on_corrupt not in ("raise", "quarantine"):
            raise ValueError(f"unknown on_corrupt policy: {on_corrupt!r}")
        sig = self._stat_sig()
        if self._cache is not None and self._cache[0] == sig:
            return list(self._cache[1])
        order: dict[CellKey, int] = {}
        runs: list[StoredRun] = []
        clean = True
        for lineno, line, is_last in self._iter_lines():
            try:
                stored = StoredRun.from_json(line)
            except ValueError as exc:
                if is_last and not line.endswith("\n"):
                    break
                if on_corrupt == "quarantine":
                    clean = False
                    continue
                raise ValueError(
                    f"{self.path}:{lineno + 1}: corrupt store line "
                    "(run `repro-sched store doctor` to salvage the "
                    "parseable lines)"
                ) from exc
            if stored.key in order:
                runs[order[stored.key]] = stored
            else:
                order[stored.key] = len(runs)
                runs.append(stored)
        if clean and sig is not None:
            # Only a fully-parsed file is cached: a quarantine-mode
            # load over a corrupt file must not masquerade as the
            # strict view on the next (default) call.
            self._cache = (
                sig,
                tuple(runs),
                frozenset(r.key for r in runs),
                {r.key: r for r in runs},
            )
        return runs

    def doctor(
        self, dry_run: bool = False, *, dedupe: bool = False
    ) -> "DoctorReport":
        """Salvage a corrupted archive in place.

        Every parseable line is kept **verbatim** (byte-for-byte — the
        doctor never re-serializes healthy data); every unparseable
        line moves to ``<path>.quarantine``, prefixed with its original
        1-based line number, and a :class:`DoctorReport` says what was
        lost. A parseable final line that lost only its newline gets
        the newline restored. The rewrite is atomic (temp file +
        ``os.replace``), so a crash mid-doctor leaves the original
        archive untouched. With *dry_run* nothing is written.

        With *dedupe*, superseded duplicate-key lines are compacted
        away: each cell keeps only its **winning** (last-written) line,
        placed at the key's first-appearance position — exactly the
        order and content :meth:`load` already resolves, so compaction
        never changes what loads, only the bytes on disk. Dropped
        duplicates are counted in ``n_deduped`` (they are superseded
        data, not corruption — nothing goes to quarantine).
        """
        kept: list[str] = []
        bad: list[tuple[int, str]] = []
        slot_of: dict[CellKey, int] = {}
        n_deduped = 0
        for lineno, line, _is_last in self._iter_lines():
            stripped = line.rstrip("\n")
            try:
                stored = StoredRun.from_json(stripped)
            except ValueError:
                bad.append((lineno + 1, stripped))
                continue
            if dedupe:
                if stored.key in slot_of:
                    kept[slot_of[stored.key]] = stripped
                    n_deduped += 1
                else:
                    slot_of[stored.key] = len(kept)
                    kept.append(stripped)
            else:
                kept.append(stripped)
        report = DoctorReport(
            path=self.path,
            quarantine_path=self.quarantine_path,
            n_kept=len(kept),
            n_quarantined=len(bad),
            quarantined_lines=tuple(no for no, _ in bad),
            dry_run=dry_run,
            n_deduped=n_deduped,
        )
        if dry_run or (not bad and not n_deduped):
            return report
        tmp = self.path.with_name(self.path.name + ".doctor.tmp")
        tmp.write_text(
            "".join(line + "\n" for line in kept), encoding="utf-8"
        )
        if bad:
            with self.quarantine_path.open("a", encoding="utf-8") as fh:
                for lineno, line in bad:
                    fh.write(f"L{lineno}\t{line}\n")
        os.replace(tmp, self.path)
        self._invalidate()
        return report

    @property
    def quarantine_path(self) -> Path:
        """Where :meth:`doctor` moves unparseable lines."""
        return self.path.with_name(self.path.name + ".quarantine")

    @property
    def sidecar_path(self) -> Path:
        """Where this store's :class:`FailureSidecar` lives. Part of
        the ``StoreBackend`` protocol — sidecar placement is a backend
        decision (one file next to a JSONL store, a file *inside* a
        sharded store's directory), so everything that writes or reads
        failure records derives the path from the store, never from an
        assumed file layout."""
        return self.path.with_name(self.path.name + ".failures")

    def iter_runs(
        self,
        where: Optional[dict[str, Any]] = None,
        *,
        keys: Optional[set[CellKey]] = None,
        on_corrupt: str = "raise",
    ) -> Iterator[StoredRun]:
        """Query persisted runs by identity instead of scanning.

        *where* filters on cell-identity columns (:data:`WHERE_FIELDS`;
        values are type-coerced, unknown fields raise). *keys*
        restricts to an explicit key set — what the matrix engine uses
        to report exactly its own cells out of a shared archive. Both
        compose. A *where* that pins **every** identity field resolves
        through :meth:`get` — one dict lookup against the parsed-file
        cache here, a single-shard parse on a sharded store — which is
        what makes keyed queries on big archives cheap.

        *on_corrupt* follows :meth:`load` semantics. Yields runs in the
        backend's load order, last write per cell winning.
        """
        where = normalize_where(where)
        full = where_key(where) if where else None
        if full is not None and on_corrupt == "raise":
            if keys is not None and full not in keys:
                return
            run = self.get(full)
            if run is not None:
                yield run
            return
        for run in self.load(on_corrupt=on_corrupt):
            if keys is not None and run.key not in keys:
                continue
            if where and not matches_where(run, where):
                continue
            yield run

    def completed_keys(self) -> set[CellKey]:
        """Cell keys already persisted (what ``--resume`` skips)."""
        sig = self._stat_sig()
        if self._cache is not None and self._cache[0] == sig:
            return set(self._cache[2])
        return {run.key for run in self.load()}

    def get(self, key: CellKey) -> Optional[StoredRun]:
        """The persisted run for *key* (last write wins), or ``None``.

        Served from the parsed-file cache, so the service's result
        cache can consult the archive per request at dict-lookup cost.
        """
        sig = self._stat_sig()
        if self._cache is None or self._cache[0] != sig:
            self.load()
        if self._cache is not None and self._cache[0] == sig:
            return self._cache[3].get(key)
        # Uncacheable file (e.g. it changed mid-load): fall back to a
        # direct scan of the freshly-parsed view.
        for run in self.load():
            if run.key == key:
                return run
        return None

    def __contains__(self, key: CellKey) -> bool:
        """Membership convenience; served from the parsed-file cache,
        so loops over many keys cost one parse, not one per call."""
        return key in self.completed_keys()

    def __len__(self) -> int:
        """Cell count; served from the parsed-file cache."""
        return len(self.load())


@dataclass(frozen=True)
class DoctorReport:
    """What :meth:`RunStore.doctor` kept, moved, and would lose."""

    path: Path
    quarantine_path: Path
    n_kept: int
    n_quarantined: int
    #: Original 1-based line numbers of the quarantined lines.
    quarantined_lines: tuple[int, ...]
    dry_run: bool = False
    #: Superseded duplicate-key lines compacted away (``--dedupe``).
    n_deduped: int = 0

    @property
    def clean(self) -> bool:
        """No corruption found. Deduped lines are superseded data, not
        corruption, so they do not make an archive unclean."""
        return self.n_quarantined == 0

    def summary(self) -> str:
        dedupe_note = ""
        if self.n_deduped:
            verb = "would compact" if self.dry_run else "compacted"
            dedupe_note = (
                f"; {verb} {self.n_deduped} superseded duplicate "
                "line(s)"
            )
        if self.clean:
            return (
                f"{self.path}: healthy — {self.n_kept} parseable "
                f"line(s), nothing to quarantine{dedupe_note}"
            )
        verb = "would move" if self.dry_run else "moved"
        lines = ", ".join(str(no) for no in self.quarantined_lines)
        return (
            f"{self.path}: salvaged {self.n_kept} line(s); {verb} "
            f"{self.n_quarantined} unparseable line(s) "
            f"(line {lines}) to {self.quarantine_path} — those cells "
            f"are lost and will re-run on --resume{dedupe_note}"
        )


#: Sidecar schema version for FailedCell records. v2 added ``config``
#: — the full cell configuration (``MatrixCell.to_config()`` shape) so
#: ``matrix --retry-failed`` can rebuild and re-run the exact cell; v1
#: lines load with ``config=None`` and cannot be retried (the CellKey
#: alone carries opaque signature strings, not the spec that built
#: them).
FAILURE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class FailedCell:
    """One quarantined sweep cell: identity + why it kept failing.

    Written to the failure sidecar when a cell exhausts its retry
    budget under ``on_cell_failure="quarantine"`` — the structured
    record that lets a failed cell be diagnosed and re-run without
    grepping sweep logs.
    """

    key: CellKey
    #: Failure class: "exception" (the cell raised), "timeout" (the
    #: watchdog killed a hung worker), "pool-crash" (the worker died —
    #: OOM kill, segfault — and broke the pool).
    kind: str
    error_type: str
    message: str
    #: Last lines of the traceback (workers ship the remote traceback
    #: chained onto the exception); enough to diagnose, small enough
    #: to keep the sidecar line-sized.
    traceback_tail: str
    attempts: int
    #: Full cell configuration (``MatrixCell.to_config()``), enough to
    #: rebuild and re-run the cell; ``None`` on schema-v1 lines.
    config: Optional[dict[str, Any]] = None
    schema_version: int = FAILURE_SCHEMA_VERSION

    @property
    def label(self) -> str:
        """Short human identity, e.g. ``adversarial/10/fcfs w0 s0``."""
        sc, n, sched, ws, ss = self.key[:5]
        return f"{sc}/{n}/{sched} w{ws} s{ss}"

    def to_json(self) -> str:
        payload = asdict(self)
        payload["key"] = list(self.key)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "FailedCell":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed failure line: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("failure line is not a JSON object")
        try:
            raw = payload["key"]
            key = cell_key(*raw[:6], *raw[6:])
            return cls(
                key=key,
                kind=str(payload["kind"]),
                error_type=str(payload["error_type"]),
                message=str(payload["message"]),
                traceback_tail=str(payload["traceback_tail"]),
                attempts=int(payload["attempts"]),
                config=payload.get("config"),
                schema_version=int(
                    payload.get("schema_version", FAILURE_SCHEMA_VERSION)
                ),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(f"failure line missing field: {exc}") from exc


class FailureSidecar:
    """Append-only JSONL sidecar of :class:`FailedCell` records.

    Lives next to the run store (``<store>.failures``) so a sweep's
    artifacts — what succeeded and what was given up on — travel as
    one pair of files.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    @classmethod
    def for_store(cls, store) -> "FailureSidecar":
        """Sidecar for any ``StoreBackend`` — the path comes from the
        backend's :attr:`sidecar_path`, so failure records follow the
        store whatever its layout (next to a JSONL file, inside a
        sharded store's directory) instead of assuming one file."""
        return cls(store.sidecar_path)

    def append(self, failed: FailedCell) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(failed.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> list[FailedCell]:
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    records.append(FailedCell.from_json(line))
        return records

    def prune(self, keys: set[CellKey]) -> int:
        """Drop records whose key is in *keys* (cells that have since
        succeeded — ``matrix --retry-failed`` calls this after a
        retried cell lands in the store). Atomic rewrite; returns how
        many records were removed. An emptied sidecar is deleted so a
        fully-recovered sweep leaves no ``.failures`` file behind.
        """
        records = self.load()
        survivors = [r for r in records if r.key not in keys]
        removed = len(records) - len(survivors)
        if not removed:
            return 0
        if not survivors:
            self.path.unlink()
            return removed
        tmp = self.path.with_name(self.path.name + ".prune.tmp")
        tmp.write_text(
            "".join(r.to_json() + "\n" for r in survivors),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        return removed
