"""Experiment harness: one driver per paper figure.

Each ``figure*`` function in :mod:`repro.experiments.figures`
regenerates the corresponding table/figure data; the matching pytest
benchmark in ``benchmarks/`` runs it and prints the same rows/series
the paper reports (see EXPERIMENTS.md for the paper-vs-measured
record). :mod:`repro.experiments.cli` exposes everything as the
``repro-sched`` command.
"""

from repro.experiments.parallel import (
    MatrixCell,
    expand_cells,
    run_cells,
    run_matrix_parallel,
)
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    ExperimentRun,
    OverheadSummary,
    run_matrix,
    run_single,
)
from repro.experiments.storage import (
    ShardedStore,
    StoreBackend,
    open_store,
    store_digest,
)
from repro.experiments.store import SCHEMA_VERSION, RunStore, StoredRun

__all__ = [
    "DEFAULT_SCHEDULERS",
    "ExperimentRun",
    "MatrixCell",
    "OverheadSummary",
    "RunStore",
    "SCHEMA_VERSION",
    "ShardedStore",
    "StoreBackend",
    "StoredRun",
    "expand_cells",
    "open_store",
    "run_cells",
    "run_matrix",
    "run_matrix_parallel",
    "run_single",
    "store_digest",
]
