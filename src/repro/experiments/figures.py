"""Per-figure reproduction drivers.

One function per evaluation artifact in the paper:

========  ==========================================================
figure2   Representative ReAct reasoning traces (qualitative)
figure3   Normalized metrics, six scenarios × 60 jobs (§3.5)
figure4   Scalability on Heterogeneous Mix, 10–100 jobs (§3.6)
figure5   Overhead per scenario at 60 jobs (§3.7.1)
figure6   Overhead scaling with queue size (§3.7.2)
figure7   Robustness over 5 repetitions, Het-Mix 100 jobs (§4)
figure8   Polaris trace, 100 jobs (§5)
========  ==========================================================

Every driver returns plain nested dicts/dataclasses so benchmarks,
tests and the CLI share one code path; rendering lives in
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Protocol, Sequence

from repro.analysis.stats import BoxStats, box_stats
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    LLM_SCHEDULERS,
    ExperimentRun,
    OverheadSummary,
    run_single,
)
from repro.metrics.normalize import normalize_to_baseline
from repro.metrics.objectives import METRIC_NAMES
from repro.sim.cluster import ResourcePool
from repro.workloads.generator import generate_workload
from repro.workloads.polaris import (
    POLARIS_NODES,
    POLARIS_TOTAL_MEMORY_GB,
    preprocess_trace,
    synthesize_polaris_trace,
)
from repro.workloads.scenarios import FIGURE3_SCENARIOS, PAPER_JOB_COUNTS

#: Scheduler used as the normalization baseline everywhere.
BASELINE = "fcfs"


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------

#: Key of one workload instance inside a sweep:
#: (scenario, n_jobs, workload_seed, arrival_mode, disruption_sig,
#: topology_sig) — the disruption regime and cluster topology are part
#: of the workload-instance identity so disrupted/undisrupted runs and
#: different rack layouts of the same seeds never merge into one
#: normalized block.
InstanceKey = tuple[str, int, int, str, str, str]


class RunLike(Protocol):
    """Structural type shared by :class:`ExperimentRun` and
    :class:`~repro.experiments.store.StoredRun`: cell identity plus a
    metric dict."""

    scenario: str
    n_jobs: int
    workload_seed: int
    scheduler: str
    arrival_mode: str

    @property
    def values(self) -> dict[str, float]: ...


def matrix_blocks(
    runs: Sequence["RunLike"],
    *,
    baseline: str = BASELINE,
) -> dict[InstanceKey, dict[str, dict[str, float]]]:
    """Normalized figure blocks from sweep results or stored artifacts.

    Accepts any mix of :class:`ExperimentRun` and
    :class:`~repro.experiments.store.StoredRun` (anything with the cell
    identity fields and a ``values`` dict), groups them by workload
    instance, averages metric values over scheduler seeds, and
    normalizes each block to *baseline* — the Fig. 3/4 transformation,
    applied to a whole persisted sweep.

    Blocks whose instance lacks a *baseline* run are returned with raw
    (unnormalized) metric values.
    """
    grouped: dict[InstanceKey, dict[str, list[dict[str, float]]]] = {}
    for run in runs:
        sig = getattr(run, "disruption_sig", "none")
        key = (
            run.scenario,
            run.n_jobs,
            run.workload_seed,
            getattr(run, "arrival_mode", "scenario"),
            str(sig),
            str(getattr(run, "topology_sig", "flat")),
        )
        grouped.setdefault(key, {}).setdefault(run.scheduler, []).append(
            dict(run.values)
        )

    out: dict[InstanceKey, dict[str, dict[str, float]]] = {}
    for key in sorted(grouped):
        per_sched = {
            name: {
                metric: float(
                    sum(v[metric] for v in values) / len(values)
                )
                for metric in values[0]
            }
            for name, values in grouped[key].items()
        }
        base = per_sched.get(baseline)
        # Baseline first, remaining schedulers alphabetical: block row
        # order stays deterministic even when the store was written in
        # pool completion order.
        ordered = sorted(per_sched, key=lambda n: (n != baseline, n))
        out[key] = {
            name: (
                normalize_to_baseline(per_sched[name], base)
                if base is not None
                else per_sched[name]
            )
            for name in ordered
        }
    return out

def store_blocks(
    store,
    *,
    where: Optional[dict] = None,
    keys=None,
    baseline: str = BASELINE,
    on_corrupt: str = "raise",
) -> dict[InstanceKey, dict[str, dict[str, float]]]:
    """Normalized figure blocks straight from a run archive.

    The store-backed counterpart of :func:`matrix_blocks`: *store* is
    any ``StoreBackend`` (single-file or sharded), and rows come from
    its ``iter_runs(where=..., keys=...)`` query — identity filters
    are pushed down to the backend, where a sharded store prunes to
    the owning shards instead of scanning the whole archive. Filter
    semantics (and ``on_corrupt``) are the backend's; the
    normalization is :func:`matrix_blocks` unchanged.
    """
    runs = list(store.iter_runs(where, keys=keys, on_corrupt=on_corrupt))
    return matrix_blocks(runs, baseline=baseline)


def _normalized_block(
    runs: Mapping[str, ExperimentRun]
) -> dict[str, dict[str, float]]:
    """{scheduler: {metric: value / FCFS}} for one workload instance."""
    baseline = runs[BASELINE].values
    return {
        name: normalize_to_baseline(run.values, baseline)
        for name, run in runs.items()
    }


def _run_all(
    scenario: str,
    n_jobs: int,
    schedulers: Sequence[str],
    *,
    workload_seed: int,
    scheduler_seed: int,
) -> dict[str, ExperimentRun]:
    jobs = generate_workload(scenario, n_jobs, seed=workload_seed)
    return {
        name: run_single(
            scenario,
            n_jobs,
            name,
            workload_seed=workload_seed,
            scheduler_seed=scheduler_seed,
            jobs=jobs,
        )
        for name in schedulers
    }


# ---------------------------------------------------------------------------
# Figure 2 — reasoning traces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSample:
    """One representative decision trace."""

    time: float
    action: str
    accepted: bool
    thought: str
    feedback: str = ""

    def render(self) -> str:
        lines = [f"# Decision at t={self.time:g}", "# Thought"]
        lines.append(self.thought)
        lines.append("# Action")
        lines.append(self.action)
        if not self.accepted:
            lines.append("# Feedback from Environment appended to scratchpad")
            lines.append(self.feedback)
        return "\n".join(lines)


def figure2(
    *,
    scenario: str = "heterogeneous_mix",
    n_jobs: int = 20,
    model: str = "claude-3.7-sim",
    seed: int = 0,
    hallucination_rate: Optional[float] = 0.25,
) -> list[TraceSample]:
    """Collect representative reasoning traces (Fig. 2).

    A raised hallucination rate makes the constraint-feedback recovery
    trace (the paper's bottom-right panel) appear reliably in a short
    run; pass ``hallucination_rate=None`` for the profile default.
    """
    from repro.core.agent import create_llm_scheduler
    from repro.sim.simulator import HPCSimulator

    jobs = generate_workload(scenario, n_jobs, seed=seed)
    agent = create_llm_scheduler(
        model, seed=seed, hallucination_rate=hallucination_rate
    )
    result = HPCSimulator(jobs=jobs, scheduler=agent).run()

    samples: list[TraceSample] = []
    seen_kinds: set[str] = set()
    entries = {id(e): e for e in agent.scratchpad.entries}
    for decision, entry in zip(result.decisions, agent.scratchpad.entries):
        kind = decision.action.kind.value + (
            "" if decision.accepted else ":rejected"
        )
        if kind in seen_kinds:
            continue
        seen_kinds.add(kind)
        samples.append(
            TraceSample(
                time=decision.time,
                action=decision.action.render(),
                accepted=decision.accepted,
                thought=str(decision.meta.get("thought", "")),
                feedback=entry.feedback,
            )
        )
    return samples


# ---------------------------------------------------------------------------
# Figure 3 — six scenarios × 60 jobs
# ---------------------------------------------------------------------------

def figure3(
    *,
    n_jobs: int = 60,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    scenarios: Sequence[str] = FIGURE3_SCENARIOS,
    workload_seed: int = 0,
    scheduler_seed: int = 0,
) -> dict[str, dict[str, dict[str, float]]]:
    """Normalized metrics per scenario (Fig. 3).

    Returns ``{scenario: {scheduler: {metric: normalized}}}``.
    Heterogeneous Mix is excluded by default, as in the paper (§3.5 —
    it is covered by the scalability analysis).
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    for scenario in scenarios:
        runs = _run_all(
            scenario,
            n_jobs,
            schedulers,
            workload_seed=workload_seed,
            scheduler_seed=scheduler_seed,
        )
        out[scenario] = _normalized_block(runs)
    return out


# ---------------------------------------------------------------------------
# Figure 4 — scalability on Heterogeneous Mix
# ---------------------------------------------------------------------------

def figure4(
    *,
    sizes: Sequence[int] = PAPER_JOB_COUNTS,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    scenario: str = "heterogeneous_mix",
    workload_seed: int = 0,
    scheduler_seed: int = 0,
) -> dict[int, dict[str, dict[str, float]]]:
    """Normalized metrics per queue size (Fig. 4).

    Returns ``{n_jobs: {scheduler: {metric: normalized}}}``.
    """
    out: dict[int, dict[str, dict[str, float]]] = {}
    for n_jobs in sizes:
        runs = _run_all(
            scenario,
            n_jobs,
            schedulers,
            workload_seed=workload_seed,
            scheduler_seed=scheduler_seed,
        )
        out[n_jobs] = _normalized_block(runs)
    return out


# ---------------------------------------------------------------------------
# Figures 5/6 — computational overhead
# ---------------------------------------------------------------------------

def figure5(
    *,
    n_jobs: int = 60,
    models: Sequence[str] = LLM_SCHEDULERS,
    scenarios: Sequence[str] = FIGURE3_SCENARIOS,
    workload_seed: int = 0,
    scheduler_seed: int = 0,
) -> dict[str, dict[str, OverheadSummary]]:
    """Overhead per scenario at fixed scale (Fig. 5).

    Returns ``{scenario: {model: OverheadSummary}}``.
    """
    out: dict[str, dict[str, OverheadSummary]] = {}
    for scenario in scenarios:
        jobs = generate_workload(scenario, n_jobs, seed=workload_seed)
        per_model: dict[str, OverheadSummary] = {}
        for model in models:
            run = run_single(
                scenario,
                n_jobs,
                model,
                workload_seed=workload_seed,
                scheduler_seed=scheduler_seed,
                jobs=jobs,
            )
            assert run.overhead is not None
            per_model[model] = run.overhead
        out[scenario] = per_model
    return out


def figure6(
    *,
    sizes: Sequence[int] = PAPER_JOB_COUNTS,
    models: Sequence[str] = LLM_SCHEDULERS,
    scenario: str = "heterogeneous_mix",
    workload_seed: int = 0,
    scheduler_seed: int = 0,
) -> dict[int, dict[str, OverheadSummary]]:
    """Overhead scaling with queue size on Heterogeneous Mix (Fig. 6).

    Returns ``{n_jobs: {model: OverheadSummary}}``.
    """
    out: dict[int, dict[str, OverheadSummary]] = {}
    for n_jobs in sizes:
        jobs = generate_workload(scenario, n_jobs, seed=workload_seed)
        per_model: dict[str, OverheadSummary] = {}
        for model in models:
            run = run_single(
                scenario,
                n_jobs,
                model,
                workload_seed=workload_seed,
                scheduler_seed=scheduler_seed,
                jobs=jobs,
            )
            assert run.overhead is not None
            per_model[model] = run.overhead
        out[n_jobs] = per_model
    return out


# ---------------------------------------------------------------------------
# Figure 7 — statistical robustness
# ---------------------------------------------------------------------------

def figure7(
    *,
    n_jobs: int = 100,
    n_repeats: int = 5,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    scenario: str = "heterogeneous_mix",
    workload_seed: int = 0,
) -> dict[str, dict[str, BoxStats]]:
    """Metric distributions over repeated runs (Fig. 7).

    The workload instance is fixed (the paper repeats the *scheduling
    pipeline*, not the workload draw); each repetition re-seeds the
    scheduler, so stochastic methods (LLM agents, the annealer) vary
    while FCFS/SJF stay deterministic and flat.

    Returns ``{scheduler: {metric: BoxStats over repetitions}}``.
    """
    jobs = generate_workload(scenario, n_jobs, seed=workload_seed)
    baseline = run_single(
        scenario, n_jobs, BASELINE, workload_seed=workload_seed, jobs=jobs
    ).values

    out: dict[str, dict[str, BoxStats]] = {}
    for name in schedulers:
        per_metric: dict[str, list[float]] = {m: [] for m in METRIC_NAMES}
        for rep in range(n_repeats):
            run = run_single(
                scenario,
                n_jobs,
                name,
                workload_seed=workload_seed,
                scheduler_seed=rep,
                jobs=jobs,
            )
            normalized = normalize_to_baseline(run.values, baseline)
            for metric, value in normalized.items():
                per_metric[metric].append(value)
        out[name] = {
            metric: box_stats(values)
            for metric, values in per_metric.items()
        }
    return out


# ---------------------------------------------------------------------------
# Figure 8 — Polaris trace
# ---------------------------------------------------------------------------

def figure8(
    *,
    n_jobs: int = 100,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    trace_seed: int = 2024,
    scheduler_seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Normalized metrics on the Polaris trace substitute (Fig. 8).

    Synthesizes a raw Polaris-like history, applies the paper's
    preprocessing pipeline (failure filter, normalization, user
    factorization, 512 GB/node memory), and evaluates every scheduler
    on the 560-node partition assumed idle at time zero.

    Returns ``{scheduler: {metric: normalized}}``.
    """
    raw = synthesize_polaris_trace(n_jobs=int(n_jobs * 1.25), seed=trace_seed)
    jobs = preprocess_trace(raw, n_jobs=n_jobs)
    runs: dict[str, ExperimentRun] = {}
    for name in schedulers:
        runs[name] = run_single(
            "polaris_trace",
            len(jobs),
            name,
            workload_seed=trace_seed,
            scheduler_seed=scheduler_seed,
            jobs=jobs,
            cluster=ResourcePool(
                total_nodes=POLARIS_NODES,
                total_memory_gb=POLARIS_TOTAL_MEMORY_GB,
            ),
        )
    return _normalized_block(runs)
