"""Single-run and matrix experiment execution.

An :class:`ExperimentRun` bundles everything one (workload, scheduler)
simulation produced: the schedule, the metric report, and — for LLM
agents — the overhead summary computed per the paper's §3.7.1
accounting (only accepted ``start_job``/``backfill_job`` calls count
toward elapsed scheduling time; delay calls reflect saturation, not
reasoning cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.stats import LatencySummary, summarize_latencies
from repro.metrics.objectives import MetricReport, compute_metrics
from repro.schedulers.registry import create_scheduler, supports_anneal_window
from repro.experiments.store import CellKey, cell_key
from repro.sim.cluster import ClusterModel, ResourcePool
from repro.sim.disruptions import (
    DisruptionSpec,
    DisruptionTrace,
    disruption_signature,
    estimate_horizon,
)
from repro.sim.job import Job
from repro.sim.schedule import ScheduleResult
from repro.sim.simulator import HPCSimulator
from repro.sim.topology import ClusterTopology, topology_signature
from repro.workloads.generator import ArrivalMode, generate_workload

#: The paper's §3.3 comparison set, in figure-legend order.
DEFAULT_SCHEDULERS: tuple[str, ...] = (
    "fcfs",
    "sjf",
    "ortools_like",
    "claude-3.7-sim",
    "o4-mini-sim",
)

#: The LLM entries of the comparison set.
LLM_SCHEDULERS: tuple[str, ...] = ("claude-3.7-sim", "o4-mini-sim")


@dataclass(frozen=True)
class OverheadSummary:
    """LLM computational overhead of one run (paper §3.7).

    ``elapsed_s`` is the total virtual scheduling time — the sum of
    per-call latencies over *accepted placement* calls. ``n_calls``
    counts every LLM query (the paper's middle panels count calls ≈
    job count plus backfill variation).
    """

    model: str
    elapsed_s: float
    n_calls: int
    n_accepted_placements: int
    n_rejected: int
    latency: LatencySummary
    all_call_latencies: tuple[float, ...]

    @classmethod
    def from_result(cls, result: ScheduleResult) -> Optional["OverheadSummary"]:
        calls = result.extras.get("llm_calls")
        if calls is None:
            return None
        accepted_placements = [
            c for c in calls if c.accepted and c.is_placement
        ]
        lat = [c.latency_s for c in accepted_placements]
        return cls(
            model=result.extras.get("model", result.scheduler_name),
            elapsed_s=float(sum(lat)),
            n_calls=len(calls),
            n_accepted_placements=len(accepted_placements),
            n_rejected=sum(1 for c in calls if not c.accepted),
            latency=summarize_latencies(lat),
            all_call_latencies=tuple(c.latency_s for c in calls),
        )


@dataclass
class ExperimentRun:
    """One simulated (workload, scheduler) pair with its measurements."""

    scenario: str
    n_jobs: int
    scheduler: str
    workload_seed: int
    scheduler_seed: int
    result: ScheduleResult
    metrics: MetricReport
    overhead: Optional[OverheadSummary]
    #: Arrival process the workload was generated with; part of the
    #: cell identity (a "zero" run is a different experiment than a
    #: "scenario" run of the same seed).
    arrival_mode: str = "scenario"
    #: Canonical disruption identity (trace config + restart policy);
    #: "none" for undisrupted cells. Part of the cell identity: the
    #: same seeds under a different failure regime are a different
    #: experiment. Named like StoredRun's field (whose ``disruption``
    #: is the config dict) so consumers see one attribute, one type.
    disruption_sig: str = "none"
    #: The spec the cell ran under (None for undisrupted cells);
    #: serialized into the artifact store's disruption column.
    disruption_spec: Optional[DisruptionSpec] = None
    restart_policy: str = "resubmit"
    checkpoint_interval: Optional[float] = None
    #: Cluster topology identity; "flat" (no failure domains) unless a
    #: topology was attached. Part of the cell identity — the same
    #: correlated spec builds a different trace on a different layout.
    topology_sig: str = "flat"

    @property
    def values(self) -> dict[str, float]:
        return self.metrics.as_dict()

    @property
    def key(self) -> CellKey:
        """Cell identity, shared with ``StoredRun``/``MatrixCell``."""
        return cell_key(
            self.scenario,
            self.n_jobs,
            self.scheduler,
            self.workload_seed,
            self.scheduler_seed,
            self.arrival_mode,
            self.disruption_sig,
            self.topology_sig,
        )


def run_single(
    scenario: str,
    n_jobs: int,
    scheduler: str,
    *,
    workload_seed: int = 0,
    scheduler_seed: int = 0,
    arrival_mode: ArrivalMode = "scenario",
    jobs: Optional[Sequence[Job]] = None,
    cluster: Optional[ClusterModel] = None,
    topology: Optional[ClusterTopology] = None,
    max_retries: int = 3,
    max_decisions: Optional[int] = None,
    enforce_walltime: bool = False,
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    anneal_window: Optional[int] = None,
    verify: bool = True,
    engine: str = "soa",
) -> ExperimentRun:
    """Simulate one scenario instance under one scheduler.

    Parameters
    ----------
    jobs:
        Pre-generated workload override (e.g. a Polaris trace); when
        given, *scenario*/*n_jobs*/*workload_seed* are labels only.
    anneal_window:
        Windowed-replanning width for window-aware schedulers (the
        annealer); ignored — and absent from the recorded scheduler
        label — for policies that do not consume it. A windowed run is
        a different experiment than a full-search one, so the label
        (and therefore the cell key) becomes ``<scheduler>@w<W>``.
    cluster:
        Cluster model override (defaults to the paper's 256/2048
        partition).
    topology:
        Optional node → rack → switch hierarchy for the default
        cluster; drives correlated-failure traces, domain-scoped
        drains, and spread placement, and enters the cell identity.
        To combine with a *cluster* override, attach the topology to
        the cluster directly instead (passing both is an error).
    max_retries / max_decisions / enforce_walltime:
        Forwarded to :class:`HPCSimulator` (retry tolerance, decision
        budget, walltime-kill semantics).
    disruptions:
        Optional :class:`~repro.sim.disruptions.DisruptionSpec`; its
        trace is materialized deterministically from the workload (the
        horizon estimate depends only on the jobs, cluster size, and
        topology), so the same cell identity always replays the same
        disruptions — in-process, across processes, serial or parallel.
    restart_policy / checkpoint_interval:
        Recovery semantics for killed jobs (see
        :class:`~repro.sim.simulator.HPCSimulator`).
    verify:
        Re-verify the capacity invariant on the finished schedule.
    engine:
        Simulator execution mode (``"soa"`` flat-array core or
        ``"object"`` reference loop). The engines are digest-pinned
        byte-identical, so this is deliberately NOT part of the cell
        identity — swapping engines can never fork an experiment.
    """
    if jobs is None:
        job_list = generate_workload(
            scenario, n_jobs, seed=workload_seed, arrival_mode=arrival_mode
        )
    else:
        job_list = list(jobs)
    if cluster is not None and topology is not None:
        raise ValueError(
            "pass either cluster= or topology=, not both — attach the "
            "topology to the cluster model instead"
        )
    if cluster is not None:
        the_cluster = cluster
    else:
        the_cluster = ResourcePool(topology=topology)
    the_topology = getattr(the_cluster, "topology", None)
    trace: Optional[DisruptionTrace] = None
    spec = disruptions if disruptions else None
    if spec is not None:
        trace = spec.build(
            n_nodes=the_cluster.total_nodes,
            horizon=estimate_horizon(job_list, the_cluster.total_nodes),
            topology=the_topology,
        )
    window = (
        anneal_window if supports_anneal_window(scheduler) else None
    )
    if window is not None:
        sched = create_scheduler(
            scheduler, seed=scheduler_seed, anneal_window=window
        )
        scheduler_label = f"{scheduler}@w{window}"
    else:
        sched = create_scheduler(scheduler, seed=scheduler_seed)
        scheduler_label = scheduler
    sim = HPCSimulator(
        jobs=job_list,
        scheduler=sched,
        cluster=the_cluster,
        max_retries=max_retries,
        max_decisions=max_decisions,
        enforce_walltime=enforce_walltime,
        disruptions=trace,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
    )
    result = sim.run()
    if verify:
        result.verify_capacity()
    return ExperimentRun(
        scenario=scenario,
        n_jobs=len(job_list),
        scheduler=scheduler_label,
        workload_seed=workload_seed,
        scheduler_seed=scheduler_seed,
        result=result,
        metrics=compute_metrics(result),
        overhead=OverheadSummary.from_result(result),
        arrival_mode=arrival_mode,
        disruption_sig=disruption_signature(
            spec, restart_policy, checkpoint_interval
        ),
        disruption_spec=spec,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        topology_sig=topology_signature(the_topology),
    )


def run_matrix(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    workload_seed: int = 0,
    scheduler_seed: int = 0,
    arrival_mode: ArrivalMode = "scenario",
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    topology: Optional[ClusterTopology] = None,
    anneal_window: Optional[int] = None,
) -> list[ExperimentRun]:
    """Cross product of scenarios × sizes × schedulers.

    Workloads are generated once per (scenario, size) so every
    scheduler sees the identical instance — the comparison the paper
    makes. A disruption spec or topology, when given, applies to every
    cell (each cell materializes its own deterministic trace).
    """
    runs: list[ExperimentRun] = []
    for scenario in scenarios:
        for n_jobs in sizes:
            jobs = generate_workload(
                scenario, n_jobs, seed=workload_seed, arrival_mode=arrival_mode
            )
            for scheduler in schedulers:
                runs.append(
                    run_single(
                        scenario,
                        n_jobs,
                        scheduler,
                        workload_seed=workload_seed,
                        scheduler_seed=scheduler_seed,
                        arrival_mode=arrival_mode,
                        jobs=jobs,
                        topology=topology,
                        disruptions=disruptions,
                        restart_policy=restart_policy,
                        checkpoint_interval=checkpoint_interval,
                        anneal_window=anneal_window,
                    )
                )
    return runs
