"""Unified storage API over the run-archive backends.

Public surface:

* :class:`StoreBackend` — the structural protocol every archive
  implements (append / load / iter_runs / get / doctor / sidecar).
* :func:`open_store` — the front door: sniffs the on-disk layout (or
  honors an explicit ``format``) and returns the right backend.
* :class:`ShardedStore` — cell-key-hash sharded directory layout for
  million-run archives (single-shard keyed queries, concurrent
  per-shard writers, compaction).
* :func:`migrate_to_sharded` / :func:`migrate_to_jsonl` — loss-free
  conversion between layouts, round-trippable byte-identically.
* :func:`store_digest` — layout-blind content identity (the CI
  serial-vs-sharded determinism pin).

The single-file :class:`~repro.experiments.store.RunStore` stays where
it always was; this package adds the protocol and the sharded layout
on top without moving it.
"""

from repro.experiments.storage.backend import (
    STORE_FORMATS,
    StoreBackend,
    detect_format,
    is_sharded_store,
    open_store,
    store_digest,
)
from repro.experiments.storage.migrate import (
    ORDER_NAME,
    MigrationReport,
    migrate_to_jsonl,
    migrate_to_sharded,
)
from repro.experiments.storage.sharded import (
    DEFAULT_SHARDS,
    MANIFEST_NAME,
    ShardedDoctorReport,
    ShardedStore,
    shard_index,
    shard_name,
)

__all__ = [
    "DEFAULT_SHARDS",
    "MANIFEST_NAME",
    "MigrationReport",
    "ORDER_NAME",
    "STORE_FORMATS",
    "ShardedDoctorReport",
    "ShardedStore",
    "StoreBackend",
    "detect_format",
    "is_sharded_store",
    "migrate_to_jsonl",
    "migrate_to_sharded",
    "open_store",
    "shard_index",
    "shard_name",
    "store_digest",
]
