"""Hash-sharded run store: one directory, N independent JSONL shards.

A million-cell single-file archive makes the first parse and every
report query linear in the archive, and funnels every concurrent
writer (pooled matrix workers, the service cache) through one file.
:class:`ShardedStore` splits the archive by **cell-key hash**: each
cell's canonical key string is SHA-256'd to pick one of ``n_shards``
shard files, so

* a keyed lookup parses exactly one shard (1/N of the archive),
* concurrent writers contend only when their cells share a shard —
  there is no cross-shard lock at all — and
* every shard is an ordinary :class:`~repro.experiments.store.RunStore`
  file, inheriting its tail repair, bounded append retries, parsed-key
  cache, and doctor wholesale (the ScalienDB discipline: sharding
  composes with, never replaces, the crash-safety layer).

Layout::

    runs.store/
        MANIFEST.json      format marker, schema version, shard count
        shard-000.jsonl    ordinary RunStore files, one per hash bucket
        shard-001.jsonl
        ...
        failures.jsonl     FailureSidecar (created on first quarantine)

Because a cell key always routes to exactly one shard, last-write-wins
resolution per key is untouched by sharding. What sharding *does*
change is global order: concurrent writers interleave per shard, so
:meth:`ShardedStore.load` returns runs in **canonical key order**
(sorted by :data:`~repro.experiments.store.CellKey`) — a pure function
of the run *set*, identical no matter how many workers wrote it. The
digest tests pin a 4-worker sharded sweep to the serial single-file
reference through exactly this canonicalization.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

try:  # POSIX: real inter-process append locks.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.experiments.store import (
    SCHEMA_VERSION,
    CellKey,
    DoctorReport,
    RunStore,
    StoredRun,
    cell_key_str,
    matches_where,
    normalize_where,
    where_key,
)

#: Manifest file that marks a directory as a sharded store and pins
#: its shard count (routing depends on it — changing the count moves
#: keys between shards, so it is store metadata, not a knob).
MANIFEST_NAME = "MANIFEST.json"

#: Format marker inside the manifest; sniffed by ``open_store``.
STORE_FORMAT = "sharded-runstore"

#: Bump when the manifest shape itself changes incompatibly.
MANIFEST_VERSION = 1

#: Default shard count for new stores: enough that a 4–16-worker pool
#: almost never collides on a shard, few enough that a full load is
#: still a handful of file reads.
DEFAULT_SHARDS = 16

#: Auto-compaction trigger: once a shard has accumulated this many
#: *superseded* lines (appends whose key the shard already held), it
#: is compacted in passing on the next append. Keeps long-lived
#: re-swept stores from growing without bound, cheap enough to stay
#: on by default; ``auto_compact_threshold=None`` disables it.
DEFAULT_AUTO_COMPACT = 64


def shard_index(key: CellKey, n_shards: int) -> int:
    """Which shard holds *key*: SHA-256 of the canonical key string,
    reduced mod the shard count. Stable across processes and Python
    versions (never ``hash()`` — that is salted per process) so every
    worker and every later session routes a key identically."""
    digest = hashlib.sha256(cell_key_str(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def shard_name(index: int) -> str:
    """Shard filename for *index* (zero-padded so lexicographic order
    is numeric order)."""
    return f"shard-{index:03d}.jsonl"


def is_sharded_dir(path: Union[str, Path]) -> bool:
    """Whether *path* looks like a sharded store: a directory holding
    a manifest, or (manifest lost) at least one shard file — the
    doctor can rebuild a manifest, so shard files alone still count."""
    p = Path(path)
    if not p.is_dir():
        return False
    if (p / MANIFEST_NAME).exists():
        return True
    return any(p.glob("shard-*.jsonl"))


class ShardedStore:
    """Cell-key-hash sharded run store over per-shard ``RunStore``s.

    Implements the same ``StoreBackend`` surface as
    :class:`~repro.experiments.store.RunStore`; see the module
    docstring for the layout and ordering contract. The directory and
    manifest are created lazily on first append (a missing store reads
    as empty, so ``--resume`` against a fresh path is a no-op), or
    eagerly via :meth:`ensure_initialized` — the matrix engine calls
    that before fanning out workers so every worker reads one agreed
    shard count.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        n_shards: Optional[int] = None,
        auto_compact_threshold: Optional[int] = DEFAULT_AUTO_COMPACT,
    ):
        self.path = Path(path)
        self.auto_compact_threshold = auto_compact_threshold
        manifest = self._read_manifest()
        if manifest is not None:
            disk_shards = manifest["n_shards"]
            if n_shards is not None and n_shards != disk_shards:
                raise ValueError(
                    f"{self.path}: store has {disk_shards} shard(s); "
                    f"requested {n_shards} — the shard count is fixed "
                    "at creation (rerouting keys needs a migrate)"
                )
            self.n_shards = disk_shards
        elif is_sharded_dir(self.path):
            # Manifest lost but shard files present: infer the count
            # so reads still work; ``doctor`` rewrites the manifest.
            self.n_shards = n_shards or self._infer_n_shards()
        else:
            self.n_shards = n_shards or DEFAULT_SHARDS
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        self._shards: dict[int, RunStore] = {}
        #: Superseded-line count per shard since the last compaction —
        #: the auto-compaction trigger. Persisted in the manifest (an
        #: additive key, older readers ignore it) so the threshold
        #: stays exact across sweep restarts: a store re-opened after
        #: 63 supersedes compacts on the next one, instead of silently
        #: restarting the count at zero.
        self._superseded: dict[int, int] = (
            self._parse_superseded(manifest) if manifest else {}
        )

    # -- manifest --------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    def _read_manifest(self) -> Optional[dict[str, Any]]:
        try:
            payload = json.loads(self.manifest_path.read_text("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"{self.manifest_path}: unreadable manifest ({exc}); "
                "run `repro-sched store doctor` to rebuild it"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or not isinstance(payload.get("n_shards"), int)
            or payload["n_shards"] < 1
        ):
            raise ValueError(
                f"{self.manifest_path}: not a {STORE_FORMAT} manifest; "
                "run `repro-sched store doctor` to rebuild it"
            )
        version = payload.get("manifest_version", 0)
        if not isinstance(version, int) or version > MANIFEST_VERSION:
            raise ValueError(
                f"{self.manifest_path}: manifest_version {version!r} is "
                f"newer than supported {MANIFEST_VERSION}; upgrade the "
                "code to read it"
            )
        return payload

    @staticmethod
    def _parse_superseded(manifest: dict[str, Any]) -> dict[int, int]:
        """Per-shard supersede counters from a manifest payload.

        Tolerant by construction (the manifest may predate the key, or
        a hand-edit may have mangled it): unknown shapes read as "no
        pending supersedes", never as an error — counter loss only
        delays a compaction, it cannot corrupt data.
        """
        raw = manifest.get("superseded")
        counts: dict[int, int] = {}
        if isinstance(raw, dict):
            for key, value in raw.items():
                try:
                    index = int(key)
                except (TypeError, ValueError):
                    continue
                if isinstance(value, int) and value > 0:
                    counts[index] = value
        return counts

    def _merge_persisted_superseded(self) -> None:
        """Refresh the in-memory counters from disk (persisted values
        win): called under a shard's append lock, where the manifest's
        count for *that* shard is authoritative — every writer updates
        it under the same lock. Other shards' counts ride along so a
        rewrite never zeroes a sibling writer's progress."""
        try:
            manifest = self._read_manifest()
        except ValueError:
            return
        if manifest is not None:
            self._superseded.update(self._parse_superseded(manifest))

    def _manifest_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "format": STORE_FORMAT,
            "manifest_version": MANIFEST_VERSION,
            "schema_version": SCHEMA_VERSION,
            "n_shards": self.n_shards,
        }
        counts = {
            str(index): count
            for index, count in sorted(self._superseded.items())
            if count > 0
        }
        if counts:
            payload["superseded"] = counts
        return payload

    def _write_manifest(self) -> None:
        """Atomic manifest write (unique temp + ``os.replace``), safe
        against concurrent writers racing to initialize the same store
        — they all write identical content, last replace wins."""
        self.path.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_name(
            f"{MANIFEST_NAME}.{os.getpid()}.tmp"
        )
        tmp.write_text(
            json.dumps(self._manifest_payload(), sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.manifest_path)

    def _infer_n_shards(self) -> int:
        indexes = []
        for shard_file in self.path.glob("shard-*.jsonl"):
            stem = shard_file.name[len("shard-"):-len(".jsonl")]
            if stem.isdigit():
                indexes.append(int(stem))
        if not indexes:  # pragma: no cover - guarded by is_sharded_dir
            return DEFAULT_SHARDS
        return max(indexes) + 1

    def ensure_initialized(self) -> None:
        """Create the directory, manifest, and every (empty) shard
        file. Shard files are created eagerly so a lost manifest can
        always recover the exact shard count by counting files — a
        lazily-created tail shard would make the inference undercount
        and silently reroute keys."""
        if not self.manifest_path.exists():
            self._write_manifest()
        for index in range(self.n_shards):
            self._shard(index).path.touch(exist_ok=True)

    # -- shard plumbing --------------------------------------------------
    def _shard(self, index: int) -> RunStore:
        shard = self._shards.get(index)
        if shard is None:
            shard = RunStore(self.path / shard_name(index))
            self._shards[index] = shard
        return shard

    def shard_for(self, key: CellKey) -> RunStore:
        """The per-shard :class:`RunStore` that owns *key*."""
        return self._shard(shard_index(key, self.n_shards))

    @contextlib.contextmanager
    def _append_lock(self, index: int):
        """Exclusive inter-process lock for one shard's appends.

        Writers in different processes (pooled matrix workers) may
        land on the same shard; ``flock`` on a per-shard lock file
        serializes the tail-repair + append pair so two writers never
        interleave bytes. Locks are **per shard** — writers on
        different shards never wait on each other, which is the whole
        point of sharding the write path.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.path / f".{shard_name(index)}.lock"
        with lock_path.open("a") as lock_fh:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh.fileno(), fcntl.LOCK_UN)

    # -- writing ---------------------------------------------------------
    def append(self, run) -> StoredRun:
        """Persist one run into its key's shard (creating the store on
        first use), under that shard's inter-process append lock.

        Rides the per-shard :meth:`RunStore.append` wholesale — tail
        repair, bounded ENOSPC retries, and the chaos-harness write
        hook all apply per shard file. When the append supersedes a
        line the shard already held and the shard has crossed
        :attr:`auto_compact_threshold` superseded lines, the shard is
        compacted in passing (see :meth:`compact`).
        """
        stored = (
            run if isinstance(run, StoredRun) else StoredRun.from_run(run)
        )
        if not self.manifest_path.exists():
            self.ensure_initialized()
        index = shard_index(stored.key, self.n_shards)
        shard = self._shard(index)
        with self._append_lock(index):
            superseded = False
            if self.auto_compact_threshold is not None:
                try:
                    superseded = stored.key in shard
                except ValueError:
                    # Corrupt shard: appends must still land (that is
                    # the crash-safety contract); compaction bookkeeping
                    # just sits this one out until doctor runs.
                    superseded = False
            shard.append(stored)
            if superseded and self.auto_compact_threshold is not None:
                self._merge_persisted_superseded()
                count = self._superseded.get(index, 0) + 1
                if count >= self.auto_compact_threshold:
                    self._compact_shard(shard)
                    count = 0
                self._superseded[index] = count
                # Persist the counter so a restarted sweep resumes the
                # count instead of restarting it (atomic replace; the
                # shard lock serializes writers on this shard's count).
                self._write_manifest()
        return stored

    # -- reading ---------------------------------------------------------
    def load(self, on_corrupt: str = "raise") -> list[StoredRun]:
        """All persisted runs in **canonical key order** (sorted by
        :data:`CellKey`), last write per cell winning.

        Canonical — not append — order because concurrent writers make
        per-shard interleaving nondeterministic: sorting by key makes
        the result a pure function of the run *set*, so a 4-worker
        sharded sweep loads identically to a serial one. *on_corrupt*
        is forwarded to every shard (:meth:`RunStore.load` semantics
        per shard file).
        """
        runs: list[StoredRun] = []
        for index in range(self.n_shards):
            runs.extend(self._shard(index).load(on_corrupt=on_corrupt))
        runs.sort(key=lambda run: run.key)
        return runs

    def iter_runs(
        self,
        where: Optional[dict[str, Any]] = None,
        *,
        keys: Optional[set[CellKey]] = None,
        on_corrupt: str = "raise",
    ) -> Iterator[StoredRun]:
        """Query by identity, touching as few shards as possible.

        A *where* that pins every identity field parses exactly one
        shard (the key routes there); an explicit *keys* set parses
        only the shards those keys hash to. Partial filters scan all
        shards — but each shard's parsed cache makes repeat queries
        O(matches). Yields in canonical key order, matching
        :meth:`load`.
        """
        where = normalize_where(where)
        full = where_key(where) if where else None
        if full is not None and on_corrupt == "raise":
            if keys is not None and full not in keys:
                return
            run = self.get(full)
            if run is not None:
                yield run
            return
        shard_set: Optional[set[int]] = None
        if keys is not None:
            shard_set = {shard_index(k, self.n_shards) for k in keys}
        runs: list[StoredRun] = []
        for index in range(self.n_shards):
            if shard_set is not None and index not in shard_set:
                continue
            for run in self._shard(index).load(on_corrupt=on_corrupt):
                if keys is not None and run.key not in keys:
                    continue
                if where and not matches_where(run, where):
                    continue
                runs.append(run)
        runs.sort(key=lambda run: run.key)
        yield from runs

    def completed_keys(self) -> set[CellKey]:
        """Union of every shard's persisted keys (keys never span
        shards, so this is exact)."""
        keys: set[CellKey] = set()
        for index in range(self.n_shards):
            keys |= self._shard(index).completed_keys()
        return keys

    def get(self, key: CellKey) -> Optional[StoredRun]:
        """The persisted run for *key*, from its one owning shard —
        a single-shard parse (then cached), never a full-store scan."""
        return self.shard_for(key).get(key)

    def __contains__(self, key: CellKey) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(
            len(self._shard(index)) for index in range(self.n_shards)
        )

    # -- maintenance -----------------------------------------------------
    @property
    def sidecar_path(self) -> Path:
        """Failure sidecar lives *inside* the store directory so the
        sweep's artifacts — shards, manifest, quarantines, failures —
        travel as one directory."""
        return self.path / "failures.jsonl"

    def _compact_shard(self, shard: RunStore) -> int:
        """Drop a clean shard's superseded lines (winning line kept
        byte-verbatim at first-appearance position — exactly what
        ``doctor --dedupe`` does, and provably invisible to
        ``load()``). A shard with unparseable lines is left untouched:
        compaction is routine housekeeping and must never quarantine
        data behind the operator's back — that is :meth:`doctor`'s
        job, done loudly.
        """
        try:
            shard.load()
        except ValueError:
            return 0
        return shard.doctor(dedupe=True).n_deduped

    def compact(self) -> int:
        """Explicitly compact every shard; returns the total number of
        superseded lines dropped. Corrupt shards are skipped (see
        :meth:`_compact_shard`)."""
        total = 0
        for index in range(self.n_shards):
            with self._append_lock(index):
                total += self._compact_shard(self._shard(index))
            self._superseded[index] = 0
        if self.manifest_path.exists():
            self._write_manifest()
        return total

    def doctor(
        self, dry_run: bool = False, *, dedupe: bool = False
    ) -> "ShardedDoctorReport":
        """Salvage the whole store: manifest repair plus a per-shard
        :meth:`RunStore.doctor` pass.

        A missing or unreadable manifest is rebuilt from the shard
        files on disk (their count *is* the shard count — see
        :meth:`ensure_initialized`); each shard then gets the ordinary
        doctor treatment — parseable lines kept byte-verbatim,
        unparseable lines moved to that shard's ``.quarantine`` file,
        optional ``dedupe`` compaction. With *dry_run* nothing is
        written anywhere.
        """
        manifest_repaired = False
        try:
            manifest_ok = self._read_manifest() is not None
        except ValueError:
            manifest_ok = False
        if not manifest_ok:
            manifest_repaired = True
            if not dry_run:
                self._write_manifest()
        reports = tuple(
            self._shard(index).doctor(dry_run=dry_run, dedupe=dedupe)
            for index in range(self.n_shards)
        )
        if dedupe and not dry_run:
            # Dedupe *is* compaction: counters reset with the debt.
            self._superseded = {}
            self._write_manifest()
        return ShardedDoctorReport(
            path=self.path,
            shard_reports=reports,
            manifest_repaired=manifest_repaired,
            dry_run=dry_run,
        )


@dataclass(frozen=True)
class ShardedDoctorReport:
    """Aggregate of one :meth:`ShardedStore.doctor` pass: the manifest
    verdict plus every shard's :class:`DoctorReport`. Mirrors the
    single-file report's ``clean``/``summary()`` surface so the CLI
    exit-code contract (0 healthy / 1 salvaged) is layout-blind."""

    path: Path
    shard_reports: tuple[DoctorReport, ...]
    manifest_repaired: bool
    dry_run: bool = False

    @property
    def n_kept(self) -> int:
        return sum(r.n_kept for r in self.shard_reports)

    @property
    def n_quarantined(self) -> int:
        return sum(r.n_quarantined for r in self.shard_reports)

    @property
    def n_deduped(self) -> int:
        return sum(r.n_deduped for r in self.shard_reports)

    @property
    def clean(self) -> bool:
        """No corruption anywhere — every shard parseable end to end
        and the manifest present and readable."""
        return not self.manifest_repaired and all(
            r.clean for r in self.shard_reports
        )

    def summary(self) -> str:
        lines = []
        if self.manifest_repaired:
            verb = "would rebuild" if self.dry_run else "rebuilt"
            lines.append(
                f"{self.path}: {verb} missing/unreadable "
                f"{MANIFEST_NAME} ({len(self.shard_reports)} shard(s))"
            )
        dirty = [r for r in self.shard_reports if not r.clean]
        deduped = [r for r in self.shard_reports if r.n_deduped]
        for report in dirty:
            lines.append(report.summary())
        for report in deduped:
            if report not in dirty:
                lines.append(report.summary())
        if not lines:
            return (
                f"{self.path}: healthy — {self.n_kept} parseable "
                f"line(s) across {len(self.shard_reports)} shard(s), "
                "nothing to quarantine"
            )
        lines.append(
            f"{self.path}: {self.n_kept} line(s) kept across "
            f"{len(self.shard_reports)} shard(s), "
            f"{self.n_quarantined} quarantined, "
            f"{self.n_deduped} compacted"
        )
        return "\n".join(lines)
