"""Loss-free migration between the JSONL and sharded store layouts.

Migration is a *byte* operation, not a parse-and-reserialize one: every
line crosses verbatim (only its routing key is parsed), so v1/v2/v3
lines keep their exact original bytes — and their schema versions —
through a round trip. Splitting a file into shards does discard one
thing the bytes can't carry: the global interleaving of lines across
shards. The migrator therefore writes an **order sidecar**
(:data:`ORDER_NAME`: the shard index of every original line, plus
whether the file ended in a newline) next to the manifest; as long as
the sharded store hasn't been written to since, ``sharded → jsonl``
replays it to reconstruct the original file **byte-identically**. A
store that has been appended to or compacted since (or was natively
written sharded) falls back to shard-order concatenation — no longer
the original bytes, but still ``load()``-identical, which
:func:`~repro.experiments.storage.backend.store_digest` checks cheaply.

Corruption policy: migration refuses interior corruption (run
``store doctor`` first — silently dropping lines is the opposite of
loss-free). The one tolerated defect is a torn final line without its
newline — the signature of a killed write, which ``load()`` already
drops; it is *not* carried across (the cell re-runs on resume).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.experiments.store import StoredRun
from repro.experiments.storage.sharded import (
    DEFAULT_SHARDS,
    ShardedStore,
    is_sharded_dir,
    shard_index,
)

#: Order sidecar written by jsonl→sharded migration: per-line shard
#: routing, enough to replay the exact original interleaving back.
ORDER_NAME = "migration-order.json"


@dataclass(frozen=True)
class MigrationReport:
    """What one migration moved and whether byte order survived."""

    source: Path
    dest: Path
    #: ``"jsonl->sharded"`` or ``"sharded->jsonl"``.
    direction: str
    n_lines: int
    n_shards: int
    #: Whether the output preserves the source's exact byte order
    #: (always true jsonl→sharded via the order sidecar; true the
    #: other way only when the sidecar still matches the shards).
    order_preserved: bool

    def summary(self) -> str:
        order = (
            "original line order preserved"
            if self.order_preserved
            else "shard-order concatenation (load()-identical, "
            "original interleaving not recoverable)"
        )
        return (
            f"migrated {self.n_lines} line(s) {self.direction}: "
            f"{self.source} -> {self.dest} "
            f"({self.n_shards} shard(s); {order})"
        )


def _read_jsonl_lines(path: Path) -> tuple[list[str], bool]:
    """The store file's lines (newline-stripped, verbatim otherwise)
    plus whether the file ended with a newline. Interior corruption
    raises; a torn unparseable tail (no newline) is dropped, exactly
    like ``load()``."""
    text = path.read_text(encoding="utf-8")
    final_newline = text.endswith("\n")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    out: list[str] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            StoredRun.from_json(line)
        except ValueError as exc:
            if lineno == len(lines) - 1 and not final_newline:
                continue  # torn tail: a killed write, not data
            raise ValueError(
                f"{path}:{lineno + 1}: corrupt store line — run "
                "`repro-sched store doctor` before migrating "
                "(migration refuses to silently drop data)"
            ) from exc
        out.append(line)
    return out, final_newline


def _require_fresh_dest(dest: Path) -> None:
    if dest.exists() and not (dest.is_dir() and not any(dest.iterdir())):
        raise ValueError(
            f"{dest}: destination already exists; migrate writes a "
            "fresh store (remove it or pick another path)"
        )


def migrate_to_sharded(
    src: Union[str, Path],
    dest: Union[str, Path],
    *,
    n_shards: int = DEFAULT_SHARDS,
) -> MigrationReport:
    """Split a single-file JSONL archive into a fresh sharded store.

    Every line lands verbatim in the shard its key hashes to, with
    within-shard relative order preserved; the order sidecar records
    the global interleaving so :func:`migrate_to_jsonl` can undo the
    split byte-identically. The destination must not already exist.
    """
    src = Path(src)
    dest = Path(dest)
    if not src.is_file():
        raise ValueError(f"{src}: no JSONL store file to migrate")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    _require_fresh_dest(dest)
    lines, final_newline = _read_jsonl_lines(src)

    order: list[int] = []
    shard_lines: list[list[str]] = [[] for _ in range(n_shards)]
    for line in lines:
        index = shard_index(StoredRun.from_json(line).key, n_shards)
        shard_lines[index].append(line)
        order.append(index)

    store = ShardedStore(dest, n_shards=n_shards)
    store.ensure_initialized()
    for index, chunk in enumerate(shard_lines):
        if chunk:
            store._shard(index).path.write_text(
                "".join(line + "\n" for line in chunk), encoding="utf-8"
            )
    (dest / ORDER_NAME).write_text(
        json.dumps(
            {
                "source": str(src),
                "n_lines": len(order),
                "final_newline": final_newline,
                "shards": order,
            }
        )
        + "\n",
        encoding="utf-8",
    )
    return MigrationReport(
        source=src,
        dest=dest,
        direction="jsonl->sharded",
        n_lines=len(order),
        n_shards=n_shards,
        order_preserved=True,
    )


def migrate_to_jsonl(
    src: Union[str, Path], dest: Union[str, Path]
) -> MigrationReport:
    """Merge a sharded store back into one JSONL file.

    If the order sidecar from the original split is present and still
    consistent with the shard files (nothing appended or compacted
    since), the original file is reconstructed byte-identically —
    including a missing final newline. Otherwise shards concatenate in
    index order: different bytes, same ``load()``.
    """
    src = Path(src)
    dest = Path(dest)
    if not is_sharded_dir(src):
        raise ValueError(f"{src}: no sharded store to migrate")
    _require_fresh_dest(dest)
    store = ShardedStore(src)

    per_shard: list[list[str]] = []
    for index in range(store.n_shards):
        shard_path = store._shard(index).path
        if shard_path.exists():
            lines, _ = _read_jsonl_lines(shard_path)
        else:
            lines = []
        per_shard.append(lines)
    n_lines = sum(len(lines) for lines in per_shard)

    order, final_newline = _load_order(src, per_shard)
    if order is not None:
        cursors = [0] * store.n_shards
        merged: list[str] = []
        for index in order:
            merged.append(per_shard[index][cursors[index]])
            cursors[index] += 1
        order_preserved = True
    else:
        merged = [line for lines in per_shard for line in lines]
        final_newline = True
        order_preserved = False

    text = "\n".join(merged)
    if merged and final_newline:
        text += "\n"
    tmp = dest.with_name(dest.name + ".migrate.tmp")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, dest)
    return MigrationReport(
        source=src,
        dest=dest,
        direction="sharded->jsonl",
        n_lines=n_lines,
        n_shards=store.n_shards,
        order_preserved=order_preserved,
    )


def _load_order(src: Path, per_shard: list[list[str]]):
    """The order sidecar's routing list, but only when it still agrees
    with what the shards hold (same total, same per-shard counts) —
    a store written to since the split replays wrong, so fall back."""
    try:
        payload = json.loads((src / ORDER_NAME).read_text("utf-8"))
        order = [int(i) for i in payload["shards"]]
        final_newline = bool(payload.get("final_newline", True))
    except (OSError, ValueError, KeyError, TypeError):
        return None, True
    if len(order) != sum(len(lines) for lines in per_shard):
        return None, True
    counts = [0] * len(per_shard)
    for index in order:
        if not 0 <= index < len(per_shard):
            return None, True
        counts[index] += 1
    if counts != [len(lines) for lines in per_shard]:
        return None, True
    return order, final_newline
