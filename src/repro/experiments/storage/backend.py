"""The ``StoreBackend`` protocol and the ``open_store`` front door.

Everything that consumes a run archive — the matrix engine, the
service result cache, ``report``/``figures``, the doctor CLI, failure
sidecars — programs against :class:`StoreBackend`, a structural
protocol both the single-file :class:`~repro.experiments.store.RunStore`
and the directory-per-archive
:class:`~repro.experiments.storage.sharded.ShardedStore` satisfy.
Consumers never branch on layout; they call :func:`open_store` and get
whichever backend the path holds.

:func:`store_digest` is the cross-backend identity: a SHA-256 over the
canonically-ordered run set, equal for two stores exactly when
``load()`` resolves them to the same runs — the CI contract that pins
a 4-worker sharded sweep to the serial single-file reference.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import (
    Any,
    Iterator,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.experiments.store import CellKey, RunStore, StoredRun
from repro.experiments.storage.sharded import ShardedStore, is_sharded_dir

#: ``open_store`` / CLI names for the two backends.
STORE_FORMATS = ("jsonl", "sharded")


@runtime_checkable
class StoreBackend(Protocol):
    """Structural contract of a run archive.

    ``path`` is the archive's location (a file for JSONL, a directory
    for sharded); everything else is the shared read/write/repair
    surface. The protocol is structural on purpose — backends share no
    base class, and anything satisfying this shape (a future
    remote/work-stealing store) plugs into every consumer unchanged.
    """

    path: Path

    def append(self, run) -> StoredRun: ...

    def load(self, on_corrupt: str = "raise") -> list[StoredRun]: ...

    def iter_runs(
        self,
        where: Optional[dict[str, Any]] = None,
        *,
        keys: Optional[set[CellKey]] = None,
        on_corrupt: str = "raise",
    ) -> Iterator[StoredRun]: ...

    def completed_keys(self) -> set[CellKey]: ...

    def get(self, key: CellKey) -> Optional[StoredRun]: ...

    def doctor(self, dry_run: bool = False, *, dedupe: bool = False): ...

    @property
    def sidecar_path(self) -> Path: ...

    def __contains__(self, key: CellKey) -> bool: ...

    def __len__(self) -> int: ...


def detect_format(path: Union[str, Path]) -> Optional[str]:
    """What is on disk at *path*: ``"sharded"`` (a directory with a
    manifest or shard files), ``"jsonl"`` (a file), or ``None``
    (nothing yet — the caller's requested format decides)."""
    p = Path(path)
    if p.is_dir():
        return "sharded"
    if p.exists():
        return "jsonl"
    return None


def open_store(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    n_shards: Optional[int] = None,
) -> StoreBackend:
    """Open (or lay out) the run archive at *path*.

    With ``format=None`` the on-disk layout decides — an existing
    directory opens sharded, an existing file opens JSONL, and a fresh
    path defaults to JSONL (the historical format, so every existing
    call site keeps its exact behavior). An explicit *format* pins the
    layout for fresh paths and is validated against what exists —
    asking for ``jsonl`` at a sharded directory is an error, not a
    silent reinterpretation.

    *n_shards* only applies when a sharded store is created; an
    existing store's manifest wins (and conflicts raise).
    """
    if format is not None and format not in STORE_FORMATS:
        raise ValueError(
            f"unknown store format {format!r} "
            f"(expected one of {', '.join(STORE_FORMATS)})"
        )
    on_disk = detect_format(path)
    if on_disk is not None and format is not None and on_disk != format:
        raise ValueError(
            f"{path}: store on disk is {on_disk}, not {format} "
            "(use `repro-sched store migrate` to convert)"
        )
    resolved = on_disk or format or "jsonl"
    if resolved == "sharded":
        return ShardedStore(path, n_shards=n_shards)
    return RunStore(path)


def store_digest(store: StoreBackend) -> str:
    """Layout-independent content identity of an archive.

    SHA-256 over every persisted run's canonical JSON line, in sorted
    key order — a pure function of what ``load()`` resolves (the run
    *set*, last write per cell winning), blind to shard layout, line
    order, superseded duplicates, and compaction. Two stores with
    equal digests answer every query identically; the CI storage gate
    compares exactly this across serial-JSONL and 4-worker-sharded
    sweeps.
    """
    digest = hashlib.sha256()
    for run in sorted(store.load(), key=lambda r: r.key):
        digest.update(run.to_json().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def is_sharded_store(path: Union[str, Path]) -> bool:
    """Convenience re-export of the sharded-layout sniff."""
    return is_sharded_dir(path)
