"""ASCII rendering of figure data.

The paper's figures are bar/box/scatter charts; we regenerate the
underlying numbers and print them as aligned tables so benches and the
CLI produce the rows/series the paper reports.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.analysis.stats import BoxStats
from repro.experiments.runner import OverheadSummary
from repro.metrics.disruption import DISRUPTION_METRIC_NAMES
from repro.metrics.objectives import METRIC_NAMES

#: Short column labels for the eight metrics.
METRIC_LABELS: dict[str, str] = {
    "makespan": "makespan",
    "avg_wait_time": "wait",
    "avg_turnaround_time": "turnaround",
    "throughput": "thruput",
    "node_utilization": "node_util",
    "memory_utilization": "mem_util",
    "wait_fairness": "wait_fair",
    "user_fairness": "user_fair",
}

#: Labels for the reliability columns disrupted runs add.
DISRUPTION_LABELS: dict[str, str] = {
    "goodput_node_hours": "goodput_nh",
    "wasted_node_hours": "wasted_nh",
    "goodput_fraction": "goodput%",
    "n_kills": "kills",
    "work_lost_per_kill": "lost/kill",
    "mean_requeue_latency": "requeue_s",
    # Blast-radius columns (correlated/domain-event runs only).
    "largest_event_loss_node_hours": "blast_nh",
    "n_domain_kills": "dom_kills",
    "domains_hit": "domains",
}


def _fmt(value: float, width: int = 9) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "—".rjust(width)
    if isinstance(value, float) and math.isinf(value):
        return "inf".rjust(width)
    return f"{value:.3f}".rjust(width)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Align *rows* under *headers* (all entries pre-formatted strings)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def render_normalized_block(
    block: Mapping[str, Mapping[str, float]],
    title: str,
    *,
    suffix: str = "(normalized to FCFS = 1.0)",
) -> str:
    """Render one {scheduler: {metric: normalized}} block.

    Disrupted blocks (rows carrying the reliability objectives) grow
    the extra goodput/wasted/kill columns; undisrupted blocks render
    exactly the legacy eight-column table.
    """
    columns = list(METRIC_NAMES)
    labels = dict(METRIC_LABELS)
    for extra in DISRUPTION_METRIC_NAMES:
        if any(extra in metrics for metrics in block.values()):
            columns.append(extra)
            labels[extra] = DISRUPTION_LABELS[extra]
    headers = ["scheduler"] + [labels[m] for m in columns]
    rows = []
    for scheduler, metrics in block.items():
        rows.append(
            [scheduler]
            + [_fmt(metrics.get(m, math.nan)).strip() for m in columns]
        )
    return f"== {title} {suffix}\n" + format_table(headers, rows)


def render_matrix_blocks(
    blocks: Mapping[
        tuple[str, int, int, str, str, str],
        Mapping[str, Mapping[str, float]],
    ],
) -> str:
    """Render a whole sweep (e.g. loaded from a ``RunStore``) as one
    normalized block per workload instance.

    *blocks* is the output of
    :func:`repro.experiments.figures.matrix_blocks`, keyed by
    (scenario, n_jobs, workload_seed, arrival_mode, disruption_sig,
    topology_sig). Blocks without an ``fcfs`` baseline carry raw
    metric values (matrix_blocks leaves them unnormalized), so the
    header says which it is.
    """
    parts = [
        render_normalized_block(
            block,
            f"{scenario}, {n_jobs} jobs, seed {seed}"
            + ("" if mode == "scenario" else f", {mode} arrivals")
            + ("" if sig == "none" else f", disruptions [{sig}]")
            + ("" if topo == "flat" else f", topology [{topo}]"),
            suffix=(
                "(normalized to FCFS = 1.0)"
                if "fcfs" in block
                else "(raw values; no fcfs baseline in sweep)"
            ),
        )
        for (scenario, n_jobs, seed, mode, sig, topo), block
        in blocks.items()
    ]
    return "\n\n".join(parts)


def describe_where(where: Mapping[str, object]) -> str:
    """One-line human form of an ``iter_runs`` identity filter, for
    report headers: ``filtered: scenario=adversarial, n_jobs=60``."""
    if not where:
        return ""
    fields = ", ".join(f"{k}={v}" for k, v in sorted(where.items()))
    return f"filtered: {fields}"


def render_figure3(
    data: Mapping[str, Mapping[str, Mapping[str, float]]]
) -> str:
    """Fig. 3: one block per scenario."""
    parts = [
        render_normalized_block(block, f"Figure 3 — {scenario}, 60 jobs")
        for scenario, block in data.items()
    ]
    return "\n\n".join(parts)


def render_figure4(
    data: Mapping[int, Mapping[str, Mapping[str, float]]]
) -> str:
    """Fig. 4: one block per queue size."""
    parts = [
        render_normalized_block(
            block, f"Figure 4 — heterogeneous_mix, {n} jobs"
        )
        for n, block in data.items()
    ]
    return "\n\n".join(parts)


def render_overhead_table(
    data: Mapping[object, Mapping[str, OverheadSummary]],
    *,
    key_label: str,
    title: str,
) -> str:
    """Figs. 5/6: elapsed time, call count, latency distribution."""
    headers = [
        key_label,
        "model",
        "elapsed_s",
        "calls",
        "placed",
        "rejected",
        "lat_med_s",
        "lat_p90_s",
        "lat_max_s",
        ">100s",
    ]
    rows = []
    for key, per_model in data.items():
        for model, ov in per_model.items():
            rows.append(
                [
                    str(key),
                    model,
                    f"{ov.elapsed_s:.1f}",
                    str(ov.n_calls),
                    str(ov.n_accepted_placements),
                    str(ov.n_rejected),
                    f"{ov.latency.median_s:.2f}",
                    f"{ov.latency.p90_s:.2f}",
                    f"{ov.latency.max_s:.2f}",
                    str(ov.latency.over_100s),
                ]
            )
    return f"== {title}\n" + format_table(headers, rows)


def render_figure7(data: Mapping[str, Mapping[str, BoxStats]]) -> str:
    """Fig. 7: box-plot statistics per scheduler × metric."""
    headers = [
        "scheduler",
        "metric",
        "median",
        "q1",
        "q3",
        "whisk_lo",
        "whisk_hi",
        "outliers",
    ]
    rows = []
    for scheduler, metrics in data.items():
        for metric, bs in metrics.items():
            rows.append(
                [
                    scheduler,
                    METRIC_LABELS[metric],
                    _fmt(bs.median).strip(),
                    _fmt(bs.q1).strip(),
                    _fmt(bs.q3).strip(),
                    _fmt(bs.whisker_lo).strip(),
                    _fmt(bs.whisker_hi).strip(),
                    str(len(bs.outliers)),
                ]
            )
    return (
        "== Figure 7 — Heterogeneous Mix, 100 jobs × 5 repetitions "
        "(normalized to FCFS)\n" + format_table(headers, rows)
    )


def render_figure8(data: Mapping[str, Mapping[str, float]]) -> str:
    """Fig. 8: Polaris trace block."""
    return render_normalized_block(
        data, "Figure 8 — Polaris trace, 100 jobs (560 nodes × 512 GB)"
    )
