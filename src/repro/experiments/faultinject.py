"""Deterministic fault injection for the sweep engine (chaos harness).

The fault-tolerance layer in :mod:`repro.experiments.parallel` claims a
sweep survives worker crashes, hangs, and torn store writes without
changing a single persisted byte. This module makes that claim
testable: it injects exactly those failures, deterministically, so a
chaos test (or the CI ``chaos`` job) can kill a worker mid-sweep and
then assert the recovered store is ``diff``-identical to an
undisturbed serial run.

Determinism is the whole design:

* Whether a fault fires for a cell is a pure function of
  ``(plan seed, rule kind, cell-key string, attempt number)`` — a
  SHA-256 hash, never ``random``. Two processes with the same plan
  injure the same cells on the same attempts.
* Faults decide *which attempt fails*, never *what a run computes*:
  the simulation itself is untouched, so a retried cell reproduces its
  first-try result bit for bit.
* Injection is **off by default**. A plan exists only when installed
  programmatically (:func:`install`, for in-process tests) or via the
  ``REPRO_FAULTS`` environment variable (JSON, inherited by pool
  workers). With neither, every hook below is a no-op and the engine's
  behavior is byte-identical to a build without this module.

``REPRO_FAULTS`` example — kill (``os._exit``) the worker running any
``sjf`` cell on its first attempt, and corrupt the store line of one
specific cell::

    REPRO_FAULTS='{"seed": 0, "rules": [
      {"kind": "crash", "mode": "exit", "match": "|sjf|"},
      {"kind": "corrupt_write", "match": "adversarial|10|fcfs|1|"}
    ]}'

Rule kinds: ``crash`` (worker raises :class:`InjectedCrash`, or with
``"mode": "exit"`` dies without cleanup like an OOM kill), ``hang``
(worker sleeps ``hang_s`` seconds — the watchdog's prey), ``latency``
(worker sleeps ``skew_s`` seconds and then proceeds normally — skew
that must never change a persisted byte, only completion order),
``torn_write`` / ``corrupt_write`` (the store write for a matching
cell is truncated mid-line / garbled in place), and ``disk_full``
(the store write raises ``OSError(ENOSPC)`` before any byte lands —
the store's bounded append retry is its prey).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass, fields
from typing import Mapping, Optional

#: Environment variable holding a JSON :class:`FaultPlan`; unset (the
#: default) means no injection anywhere.
ENV_VAR = "REPRO_FAULTS"

#: Fault kinds applied at cell-execution time (in the worker).
#: ``latency`` is benign (the attempt proceeds after the sleep);
#: ``crash``/``hang`` terminate the attempt.
CELL_KINDS = ("crash", "hang", "latency")
#: Fault kinds applied at store-write time (in the parent).
WRITE_KINDS = ("torn_write", "corrupt_write", "disk_full")


class InjectedCrash(RuntimeError):
    """The exception a ``crash``-rule worker raises (``mode="raise"``)."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; fields beyond ``kind`` narrow when it fires."""

    kind: str
    #: ``crash`` only: ``"raise"`` propagates :class:`InjectedCrash` to
    #: the parent (pool survives); ``"exit"`` calls ``os._exit`` so the
    #: worker dies without unwinding — the parent sees the whole pool
    #: break, exactly like an OOM-killed worker.
    mode: str = "raise"
    #: Trigger probability in [0, 1]; hashed, not random (see module
    #: docstring). 1.0 = every matching (cell, attempt).
    p: float = 1.0
    #: Substring filter on the canonical cell-key string; "" matches
    #: every cell.
    match: str = ""
    #: Highest attempt number the rule still fires on. The default (1)
    #: injures only first tries, so a bounded-retry engine always
    #: recovers; raise it (or use a large value) to model a permanently
    #: failing cell.
    max_attempt: int = 1
    #: ``hang`` only: how long the worker sleeps. Long by default — a
    #: hang is supposed to look infinite to the watchdog.
    hang_s: float = 3600.0
    #: ``crash``/``mode="exit"`` only: the worker's exit status.
    exit_code: int = 137
    #: ``latency`` only: how long the worker is delayed before the
    #: attempt proceeds. Short by default — skew is supposed to reorder
    #: completions, not trip the watchdog.
    skew_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS + WRITE_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.kind == "crash" and self.mode not in ("raise", "exit"):
            raise ValueError(f"unknown crash mode: {self.mode!r}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault p must be in [0, 1], got {self.p}")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1")
        if self.skew_s < 0:
            raise ValueError(f"skew_s must be >= 0, got {self.skew_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s.

    The plan is plain frozen data so it serializes to/from the
    ``REPRO_FAULTS`` JSON losslessly and crosses the process boundary
    to pool workers unchanged.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    # -- decision ------------------------------------------------------
    def fires(self, rule: FaultRule, key: str, attempt: int) -> bool:
        """Deterministically decide whether *rule* hits this attempt."""
        if attempt > rule.max_attempt:
            return False
        if rule.match and rule.match not in key:
            return False
        if rule.p >= 1.0:
            return True
        if rule.p <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{rule.kind}|{key}|{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < rule.p

    def cell_rule(self, key: str, attempt: int) -> Optional[FaultRule]:
        """First crash/hang rule firing for this (cell, attempt).

        ``latency`` rules are deliberately excluded — they are benign
        (the attempt proceeds) and *all* firing ones apply, not just
        the first; see :meth:`latency_rules`.
        """
        for rule in self.rules:
            if rule.kind in ("crash", "hang") and self.fires(
                rule, key, attempt
            ):
                return rule
        return None

    def latency_rules(self, key: str, attempt: int) -> list[FaultRule]:
        """Every latency rule firing for this (cell, attempt); their
        skews stack, modeling several independent slow components."""
        return [
            rule
            for rule in self.rules
            if rule.kind == "latency" and self.fires(rule, key, attempt)
        ]

    def write_rule(self, key: str, attempt: int) -> Optional[FaultRule]:
        """First torn/corrupt-write rule firing for this write attempt."""
        for rule in self.rules:
            if rule.kind in WRITE_KINDS and self.fires(rule, key, attempt):
                return rule
        return None

    # -- (de)serialization --------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [
                    {f.name: getattr(r, f.name) for f in fields(FaultRule)}
                    for r in self.rules
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        known = {f.name for f in fields(FaultRule)}
        rules = []
        for entry in payload.get("rules", ()):
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValueError(f"fault rule needs a 'kind': {entry!r}")
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"unknown fault rule field(s): {sorted(unknown)}"
                )
            rules.append(FaultRule(**entry))
        return cls(seed=int(payload.get("seed", 0)), rules=tuple(rules))


# -- activation --------------------------------------------------------
#: Programmatic override (tests); None defers to the environment.
_installed: Optional[FaultPlan] = None
#: (raw env string, parsed plan) cache so hot paths don't re-parse.
_env_cache: tuple[Optional[str], Optional[FaultPlan]] = (None, None)
#: Per-process store-write counters: how many times each cell's line
#: has been written here. Lets a torn-write rule injure the first
#: write of a cell and spare the re-write after resume (same process);
#: a fresh process naturally starts over, which models a fresh crash.
_write_attempts: dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Set (or with ``None`` clear) the in-process plan override and
    reset write counters — test isolation in one call."""
    global _installed
    _installed = plan
    _write_attempts.clear()


def active_plan(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The live plan: the installed override, else ``REPRO_FAULTS``,
    else ``None`` (injection off — the production default)."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = (os.environ if environ is None else environ).get(ENV_VAR)
    if raw is None or not raw.strip():
        return None
    if _env_cache[0] != raw:
        _env_cache = (raw, FaultPlan.from_json(raw))
    return _env_cache[1]


# -- hooks (called by the engine; no-ops without an active plan) -------
def on_cell_attempt(key: str, attempt: int) -> None:
    """Worker-side hook: crash or hang per the active plan.

    Called at the top of the worker entry point, before any simulation
    work — an injected failure therefore never leaves partial state.
    """
    plan = active_plan()
    if plan is None:
        return
    # Latency first: skew delays the attempt but never replaces the
    # crash/hang decision — a slow worker can still die.
    for lat in plan.latency_rules(key, attempt):
        time.sleep(lat.skew_s)
    rule = plan.cell_rule(key, attempt)
    if rule is None:
        return
    if rule.kind == "hang":
        time.sleep(rule.hang_s)
        return
    if rule.mode == "exit":
        # Die like an OOM-killed worker: no unwinding, no IPC goodbye —
        # the parent's pool breaks. Unreachable under coverage because
        # it only ever runs in a sacrificial subprocess.
        os._exit(rule.exit_code)  # pragma: no cover
    raise InjectedCrash(
        f"injected worker crash (cell {key}, attempt {attempt})"
    )


def mangle_store_line(key: str, line: str) -> tuple[str, bool]:
    """Parent-side hook: maybe injure the store line for cell *key*.

    Returns ``(text to write, complete)``. ``complete=False`` means a
    torn write: the caller must write the (truncated) text with **no**
    trailing newline and stop, as if the process died mid-``write``.
    A corrupt write returns garbled text (still newline-free) to write
    as a normal full line — interior corruption once more lines follow.
    A ``disk_full`` rule raises ``OSError(ENOSPC)`` instead — before
    the caller writes a single byte, exactly like a full filesystem
    rejecting the ``write(2)`` — and the write-attempt counter still
    advances, so a ``max_attempt=1`` rule clears on the store's retry.
    """
    plan = active_plan()
    if plan is None:
        return line, True
    attempt = _write_attempts.get(key, 0) + 1
    _write_attempts[key] = attempt
    rule = plan.write_rule(key, attempt)
    if rule is None:
        return line, True
    if rule.kind == "disk_full":
        raise OSError(
            errno.ENOSPC,
            f"injected disk-full on store write (cell {key}, "
            f"write attempt {attempt})",
        )
    if rule.kind == "torn_write":
        return line[: max(1, len(line) // 2)], False
    return "#CORRUPT#" + line[len(line) // 3:], True
