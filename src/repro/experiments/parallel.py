"""Process-pool experiment engine with streaming, resumable artifacts.

The paper's evaluation matrix (scenarios × sizes × schedulers × seeds)
is embarrassingly parallel: every cell generates its workload from its
own seed and simulates independently. This module fans the cells out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (the SimCash
replication idiom), streams each finished run into a
:class:`~repro.experiments.store.RunStore` the moment it completes, and
— with ``resume=True`` — skips cells the store already holds, so a
killed sweep restarts where it left off.

Determinism is part of the contract: a cell's result depends only on
its (scenario, n_jobs, scheduler, workload_seed, scheduler_seed,
arrival_mode) identity, never on worker scheduling, so
:func:`run_matrix_parallel` returns results bit-identical to the serial
:func:`~repro.experiments.runner.run_matrix` for the same seeds, in the
same deterministic cell order.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    ExperimentRun,
    run_single,
)
from repro.experiments.store import CellKey, RunStore, cell_key
from repro.schedulers.registry import supports_anneal_window
from repro.sim.disruptions import DisruptionSpec, disruption_signature
from repro.sim.topology import ClusterTopology, topology_signature
from repro.workloads.generator import ArrivalMode

#: Progress callback: (cell, completed runs so far, total cells).
ProgressFn = Callable[["MatrixCell", int, int], None]


@dataclass(frozen=True)
class MatrixCell:
    """Identity of one independent simulation in a sweep.

    The disruption and topology fields ride along because a worker
    must be able to reconstruct the cell bit-for-bit from the cell
    alone: spec and topology are frozen/picklable plain data, and the
    trace they build depends only on (spec, topology, cluster size,
    workload) — never on which worker runs it.
    """

    scenario: str
    n_jobs: int
    scheduler: str
    workload_seed: int = 0
    scheduler_seed: int = 0
    arrival_mode: ArrivalMode = "scenario"
    disruptions: Optional[DisruptionSpec] = None
    restart_policy: str = "resubmit"
    checkpoint_interval: Optional[float] = None
    topology: Optional[ClusterTopology] = None
    anneal_window: Optional[int] = None
    #: Simulator execution mode ("soa" flat-array core / "object"
    #: reference loop). Deliberately excluded from :attr:`key` — the
    #: engines are digest-pinned byte-identical, so swapping them can
    #: never fork an experiment's identity.
    engine: str = "soa"

    @property
    def scheduler_label(self) -> str:
        """Recorded scheduler name: ``<name>@w<W>`` when a window
        applies (a windowed search is a different experiment), the
        plain registry name for window-blind policies."""
        if self.anneal_window is not None and supports_anneal_window(
            self.scheduler
        ):
            return f"{self.scheduler}@w{self.anneal_window}"
        return self.scheduler

    @property
    def key(self) -> CellKey:
        return cell_key(
            self.scenario,
            self.n_jobs,
            self.scheduler_label,
            self.workload_seed,
            self.scheduler_seed,
            self.arrival_mode,
            disruption_signature(
                self.disruptions,
                self.restart_policy,
                self.checkpoint_interval,
            ),
            topology_signature(self.topology),
        )


def expand_cells(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    workload_seeds: Sequence[int] = (0,),
    scheduler_seeds: Sequence[int] = (0,),
    arrival_mode: ArrivalMode = "scenario",
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    topology: Optional[ClusterTopology] = None,
    anneal_window: Optional[int] = None,
    engine: str = "soa",
) -> list[MatrixCell]:
    """Enumerate the full matrix in canonical (deterministic) order.

    Nesting matches :func:`~repro.experiments.runner.run_matrix` —
    scenario → size → scheduler — with seed replication innermost, so a
    single-seed parallel sweep returns runs in exactly the serial
    order. Disruption, topology, and windowing settings apply uniformly
    to every cell.
    """
    return [
        MatrixCell(
            scenario, n_jobs, scheduler, wseed, sseed, arrival_mode,
            disruptions, restart_policy, checkpoint_interval, topology,
            anneal_window, engine,
        )
        for scenario in scenarios
        for n_jobs in sizes
        for scheduler in schedulers
        for wseed in workload_seeds
        for sseed in scheduler_seeds
    ]


def _worker_init() -> None:
    """Workers ignore SIGINT: a terminal Ctrl-C signals the whole
    process group, and without this the in-flight cells die with the
    keystroke instead of finishing and being persisted. Cancellation
    stays the parent's job (it stops feeding the pool)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _execute_cell(cell: MatrixCell) -> ExperimentRun:
    """Worker entry point: simulate one cell (top-level for pickling)."""
    return run_single(
        cell.scenario,
        cell.n_jobs,
        cell.scheduler,
        workload_seed=cell.workload_seed,
        scheduler_seed=cell.scheduler_seed,
        arrival_mode=cell.arrival_mode,
        disruptions=cell.disruptions,
        restart_policy=cell.restart_policy,
        checkpoint_interval=cell.checkpoint_interval,
        topology=cell.topology,
        anneal_window=cell.anneal_window,
        engine=cell.engine,
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a worker request: ``None`` → all cores, otherwise a
    floor of 1. Requests above the core count are honored as given —
    deliberate oversubscription is harmless (the OS time-slices) and
    it keeps the pool path exercisable on small machines."""
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


def run_cells(
    cells: Sequence[MatrixCell],
    *,
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> list[ExperimentRun]:
    """Execute *cells* across a process pool, streaming to *store*.

    Returns the runs for the cells actually executed, in the order the
    cells were given (completion order never leaks into results). With
    ``resume=True`` and a store, cells whose key the store already
    holds are skipped — read them back with ``store.load()``.
    """
    if isinstance(store, (str, Path)):
        store = RunStore(store)
    if resume and store is None:
        raise ValueError("resume=True requires a store")

    pending = list(cells)
    if resume and store is not None:
        done = store.completed_keys()
        pending = [c for c in pending if c.key not in done]

    n_workers = resolve_workers(workers)
    results: dict[int, ExperimentRun] = {}

    def record(index: int, run: ExperimentRun) -> None:
        results[index] = run
        if store is not None:
            store.append(run)
        if progress is not None:
            progress(pending[index], len(results), len(pending))

    if n_workers == 1 or len(pending) <= 1:
        # Inline path: no pool overhead, trivially deterministic —
        # also what a 1-core container degrades to.
        for i, cell in enumerate(pending):
            record(i, _execute_cell(cell))
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers, initializer=_worker_init
        ) as pool:
            futures = {
                pool.submit(_execute_cell, cell): i
                for i, cell in enumerate(pending)
            }
            try:
                for future in as_completed(futures):
                    record(futures[future], future.result())
            except BaseException:
                # Ctrl-C or one failing cell: drop the queued cells,
                # let the <= n_workers in-flight cells finish, and
                # persist those (plus any finished-but-unrecorded
                # ones) — a resumed sweep then loses nothing that
                # actually completed. Without this, the pool's exit
                # handler would silently run the *entire* remaining
                # queue while discarding every result.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, i in futures.items():
                    if (
                        i not in results
                        and future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        record(i, future.result())
                raise
    return [results[i] for i in range(len(pending))]


def run_matrix_parallel(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    workload_seeds: Sequence[int] = (0,),
    scheduler_seeds: Sequence[int] = (0,),
    arrival_mode: ArrivalMode = "scenario",
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    topology: Optional[ClusterTopology] = None,
    anneal_window: Optional[int] = None,
    engine: str = "soa",
    workers: Optional[int] = None,
    store: Optional[Union[RunStore, str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> list[ExperimentRun]:
    """Parallel, resumable scenarios × sizes × schedulers × seeds sweep.

    The parallel counterpart of
    :func:`~repro.experiments.runner.run_matrix`: for the same seeds it
    produces identical metrics in the identical order, just faster.
    Accepts seed *sequences* so repetition sweeps (paper Fig. 7 style)
    fan out over the same pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses every core, ``1`` runs inline.
    store:
        Optional :class:`RunStore` (or path) that receives each
        completed run as one JSONL line, immediately on completion.
    resume:
        Skip cells already persisted in *store*; only the remaining
        cells are executed (and returned).
    """
    cells = expand_cells(
        scenarios,
        sizes,
        schedulers,
        workload_seeds=workload_seeds,
        scheduler_seeds=scheduler_seeds,
        arrival_mode=arrival_mode,
        disruptions=disruptions,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        topology=topology,
        anneal_window=anneal_window,
        engine=engine,
    )
    return run_cells(
        cells,
        workers=workers,
        store=store,
        resume=resume,
        progress=progress,
    )
