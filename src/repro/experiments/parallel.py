"""Process-pool experiment engine with streaming, resumable artifacts.

The paper's evaluation matrix (scenarios × sizes × schedulers × seeds)
is embarrassingly parallel: every cell generates its workload from its
own seed and simulates independently. This module fans the cells out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (the SimCash
replication idiom), streams each finished run into a
:class:`~repro.experiments.store.RunStore` the moment it completes, and
— with ``resume=True`` — skips cells the store already holds, so a
killed sweep restarts where it left off.

Determinism is part of the contract: a cell's result depends only on
its (scenario, n_jobs, scheduler, workload_seed, scheduler_seed,
arrival_mode) identity, never on worker scheduling, so
:func:`run_matrix_parallel` returns results bit-identical to the serial
:func:`~repro.experiments.runner.run_matrix` for the same seeds, in the
same deterministic cell order.

The engine is also fault-tolerant (the ScalienDB discipline: crashes
are an input, not an exception): a crashed worker rebuilds the pool
and retries only the unfinished cells, a hung worker is killed by a
per-cell watchdog (``cell_timeout``), and a cell that keeps failing is
quarantined as a structured :class:`~repro.experiments.store.FailedCell`
record while the rest of the sweep completes. Because cells are pure
functions of their key, none of this can change a persisted byte — a
sweep that survived crashes is ``diff``-identical to one that never
saw them, which is exactly what the chaos suite
(:mod:`repro.experiments.faultinject`) asserts.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments import faultinject
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    ExperimentRun,
    run_single,
)
from repro.experiments.store import (
    CellKey,
    FailedCell,
    FailureSidecar,
    cell_key,
    cell_key_str,
)
from repro.experiments.storage import ShardedStore, StoreBackend, open_store
from repro.schedulers.registry import supports_anneal_window
from repro.sim.disruptions import DisruptionSpec, disruption_signature
from repro.sim.topology import ClusterTopology, topology_signature
from repro.workloads.generator import ArrivalMode

#: Progress callback: (cell, completed runs so far, total cells).
ProgressFn = Callable[["MatrixCell", int, int], None]

#: Default per-cell retry budget: a cell may fail this many times
#: beyond its first try before it is quarantined/aborted. Transient
#: worker deaths (OOM kills, pool crashes) almost always succeed on
#: the rebuild, so 2 keeps sweeps alive without masking real bugs.
DEFAULT_MAX_RETRIES = 2

#: Base of the deterministic exponential backoff between retries of
#: the same cell (seconds): attempt k waits base * 2**(k-1).
DEFAULT_RETRY_BACKOFF_S = 0.1


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C during a sweep, after the salvage pass: the message
    carries how many cells completed, were salvaged, and were
    cancelled. Subclasses ``KeyboardInterrupt`` so existing handlers
    (the CLI's 130-exit path) keep working unchanged."""


class CellFailedError(RuntimeError):
    """A cell exhausted its retry budget under the default
    ``on_cell_failure="abort"`` policy. Carries the failing cell's
    label, the attempt count, the original error (also chained as
    ``__cause__``), and — appended by the salvage pass — the
    completed/salvaged/cancelled accounting of the aborted sweep."""


@dataclass(frozen=True)
class MatrixCell:
    """Identity of one independent simulation in a sweep.

    The disruption and topology fields ride along because a worker
    must be able to reconstruct the cell bit-for-bit from the cell
    alone: spec and topology are frozen/picklable plain data, and the
    trace they build depends only on (spec, topology, cluster size,
    workload) — never on which worker runs it.
    """

    scenario: str
    n_jobs: int
    scheduler: str
    workload_seed: int = 0
    scheduler_seed: int = 0
    arrival_mode: ArrivalMode = "scenario"
    disruptions: Optional[DisruptionSpec] = None
    restart_policy: str = "resubmit"
    checkpoint_interval: Optional[float] = None
    topology: Optional[ClusterTopology] = None
    anneal_window: Optional[int] = None
    #: Simulator execution mode ("soa" flat-array core / "object"
    #: reference loop). Deliberately excluded from :attr:`key` — the
    #: engines are digest-pinned byte-identical, so swapping them can
    #: never fork an experiment's identity.
    engine: str = "soa"

    @property
    def scheduler_label(self) -> str:
        """Recorded scheduler name: ``<name>@w<W>`` when a window
        applies (a windowed search is a different experiment), the
        plain registry name for window-blind policies."""
        if self.anneal_window is not None and supports_anneal_window(
            self.scheduler
        ):
            return f"{self.scheduler}@w{self.anneal_window}"
        return self.scheduler

    @property
    def key(self) -> CellKey:
        return cell_key(
            self.scenario,
            self.n_jobs,
            self.scheduler_label,
            self.workload_seed,
            self.scheduler_seed,
            self.arrival_mode,
            disruption_signature(
                self.disruptions,
                self.restart_policy,
                self.checkpoint_interval,
            ),
            topology_signature(self.topology),
        )

    # -- lossless config round-trip --------------------------------------
    # The CellKey alone cannot rebuild a cell: its disruption/topology
    # parts are opaque signature strings. to_config()/from_config()
    # carry the actual constructor arguments, so a quarantined cell's
    # sidecar record is enough to re-run it (`matrix --retry-failed`).
    def to_config(self) -> dict:
        """JSON-safe dict from which :meth:`from_config` rebuilds the
        cell exactly (``from_config(to_config()) == cell``)."""
        return {
            "scenario": self.scenario,
            "n_jobs": self.n_jobs,
            "scheduler": self.scheduler,
            "workload_seed": self.workload_seed,
            "scheduler_seed": self.scheduler_seed,
            "arrival_mode": self.arrival_mode,
            "disruptions": (
                dataclasses.asdict(self.disruptions)
                if self.disruptions is not None
                else None
            ),
            "restart_policy": self.restart_policy,
            "checkpoint_interval": self.checkpoint_interval,
            "topology": (
                {
                    "n_nodes": self.topology.n_nodes,
                    "rack_size": self.topology.rack_size,
                    "racks_per_switch": self.topology.racks_per_switch,
                }
                if self.topology is not None
                else None
            ),
            "anneal_window": self.anneal_window,
            "engine": self.engine,
        }

    @classmethod
    def from_config(cls, config: dict) -> "MatrixCell":
        """Inverse of :meth:`to_config`; raises ``ValueError`` on a
        malformed dict (e.g. hand-edited sidecar)."""
        try:
            disruptions = None
            if config.get("disruptions") is not None:
                disruptions = DisruptionSpec(**config["disruptions"])
            topology = None
            if config.get("topology") is not None:
                topology = ClusterTopology(**config["topology"])
            checkpoint = config.get("checkpoint_interval")
            window = config.get("anneal_window")
            return cls(
                scenario=str(config["scenario"]),
                n_jobs=int(config["n_jobs"]),
                scheduler=str(config["scheduler"]),
                workload_seed=int(config["workload_seed"]),
                scheduler_seed=int(config["scheduler_seed"]),
                arrival_mode=str(config["arrival_mode"]),
                disruptions=disruptions,
                restart_policy=str(config["restart_policy"]),
                checkpoint_interval=(
                    float(checkpoint) if checkpoint is not None else None
                ),
                topology=topology,
                anneal_window=int(window) if window is not None else None,
                engine=str(config.get("engine", "soa")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed cell config: {exc}") from exc


def expand_cells(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    workload_seeds: Sequence[int] = (0,),
    scheduler_seeds: Sequence[int] = (0,),
    arrival_mode: ArrivalMode = "scenario",
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    topology: Optional[ClusterTopology] = None,
    anneal_window: Optional[int] = None,
    engine: str = "soa",
) -> list[MatrixCell]:
    """Enumerate the full matrix in canonical (deterministic) order.

    Nesting matches :func:`~repro.experiments.runner.run_matrix` —
    scenario → size → scheduler — with seed replication innermost, so a
    single-seed parallel sweep returns runs in exactly the serial
    order. Disruption, topology, and windowing settings apply uniformly
    to every cell.
    """
    return [
        MatrixCell(
            scenario, n_jobs, scheduler, wseed, sseed, arrival_mode,
            disruptions, restart_policy, checkpoint_interval, topology,
            anneal_window, engine,
        )
        for scenario in scenarios
        for n_jobs in sizes
        for scheduler in schedulers
        for wseed in workload_seeds
        for sseed in scheduler_seeds
    ]


def _worker_init() -> None:
    """Workers ignore SIGINT: a terminal Ctrl-C signals the whole
    process group, and without this the in-flight cells die with the
    keystroke instead of finishing and being persisted. Cancellation
    stays the parent's job (it stops feeding the pool)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


#: Per-process cache of open sharded stores for worker-side appends —
#: keeps each worker's manifest read and per-shard parsed caches warm
#: across the cells it executes.
_WORKER_STORES: dict[str, ShardedStore] = {}


def _execute_and_store_cell(
    cell: MatrixCell, attempt: int, store_path: str
) -> ExperimentRun:
    """Worker entry point for sharded stores: simulate one cell, then
    persist it **from inside the worker** into the cell's own shard.

    This is what makes sharded pooled sweeps truly concurrent writers:
    each worker appends directly to the shard its cell's key hashes
    to, under that shard's lock only — workers on different shards
    never serialize against each other, and the parent's funnel (every
    result crossing back before any byte is written) is gone. Safe
    because a key's shard assignment is process-independent and
    last-write-wins per key is per-shard; a retried cell that already
    landed just supersedes itself with identical bytes.
    """
    run = _execute_cell(cell, attempt)
    store = _WORKER_STORES.get(store_path)
    if store is None:
        store = ShardedStore(store_path)
        _WORKER_STORES[store_path] = store
    store.append(run)
    return run


def _execute_cell(cell: MatrixCell, attempt: int = 1) -> ExperimentRun:
    """Worker entry point: simulate one cell (top-level for pickling).

    *attempt* (1-based) exists solely for the chaos harness: the
    parent tracks how many times a cell has been tried so injected
    faults fire on deterministic attempts regardless of which worker
    process gets the cell. The simulation itself never sees it — a
    retried cell reproduces its first-try result bit for bit.
    """
    faultinject.on_cell_attempt(cell_key_str(cell.key), attempt)
    return run_single(
        cell.scenario,
        cell.n_jobs,
        cell.scheduler,
        workload_seed=cell.workload_seed,
        scheduler_seed=cell.scheduler_seed,
        arrival_mode=cell.arrival_mode,
        disruptions=cell.disruptions,
        restart_policy=cell.restart_policy,
        checkpoint_interval=cell.checkpoint_interval,
        topology=cell.topology,
        anneal_window=cell.anneal_window,
        engine=cell.engine,
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a worker request: ``None`` → all cores, otherwise a
    floor of 1. Requests above the core count are honored as given —
    deliberate oversubscription is harmless (the OS time-slices) and
    it keeps the pool path exercisable on small machines."""
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


def _traceback_tail(exc: BaseException, limit: int = 15) -> str:
    """Last *limit* lines of the exception's formatted traceback —
    workers chain the remote traceback onto the exception, so this
    captures where the cell actually died, compact enough for one
    sidecar line."""
    lines = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).strip().splitlines()
    return "\n".join(lines[-limit:])


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool *now*: SIGTERM (escalating to SIGKILL)
    every worker, then shut the executor down without waiting.

    This is the watchdog's only option — ``ProcessPoolExecutor``
    cannot cancel a running task, so a hung worker is reclaimed by
    killing the whole pool and rebuilding it. Reaches into the private
    ``_processes`` map deliberately; the fallback (shutdown without
    waiting) still detaches us if that attribute ever moves.
    """
    procs = getattr(pool, "_processes", None)
    procs = list(procs.values()) if procs else []
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already-dead races
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM almost always lands
            try:
                proc.kill()
                proc.join(timeout=5.0)
            except Exception:
                pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_cells(
    cells: Sequence[MatrixCell],
    *,
    workers: Optional[int] = None,
    store: Optional[Union[StoreBackend, str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    on_cell_failure: str = "abort",
    failures: Optional[list[FailedCell]] = None,
) -> list[ExperimentRun]:
    """Execute *cells* across a fault-tolerant process pool.

    Returns the runs for the cells that completed, in the order the
    cells were given (completion order never leaks into results). With
    ``resume=True`` and a store, cells whose key the store already
    holds are skipped — read them back with ``store.load()``.

    Fault tolerance (all of it inert on a healthy sweep — with no
    failures the engine behaves byte-identically to a plain pool):

    * A cell that raises is retried up to *max_retries* times with
      deterministic exponential backoff (``retry_backoff_s *
      2**(attempt-1)``). Because cells are pure functions of their
      key, a retry that succeeds is bit-identical to what the first
      try would have produced.
    * A dead worker (OOM kill, segfault — surfacing as
      ``BrokenExecutor``) breaks the whole pool: the pool is rebuilt
      and every unfinished in-flight cell is resubmitted. Cells whose
      futures carried the break are charged a retry attempt;
      bystanders re-ride free.
    * With *cell_timeout*, a watchdog kills the pool when any cell
      exceeds its wall-clock budget, charges the overdue cell(s) a
      timeout attempt, and reschedules the rest — a hung worker costs
      one rebuild, not the sweep. (Inline/1-worker sweeps cannot
      preempt themselves; the timeout is ignored there.)
    * A cell that exhausts its budget is handled per
      *on_cell_failure*: ``"abort"`` (default) raises
      :class:`CellFailedError` after salvaging finished cells;
      ``"quarantine"`` records a :class:`FailedCell` — appended to
      *failures* and, when a store is given, to its
      ``<store>.failures`` sidecar — and the sweep continues.

    Ctrl-C still cancels queued cells, lets in-flight cells finish and
    persists them; the raised :class:`SweepInterrupted` reports the
    completed/salvaged/cancelled split.
    """
    if on_cell_failure not in ("abort", "quarantine"):
        raise ValueError(
            f"unknown on_cell_failure policy: {on_cell_failure!r}"
        )
    if isinstance(store, (str, Path)):
        store = open_store(store)
    if resume and store is None:
        raise ValueError("resume=True requires a store")

    pending = list(cells)
    if resume and store is not None:
        done = store.completed_keys()
        pending = [c for c in pending if c.key not in done]

    n_workers = resolve_workers(workers)
    results: dict[int, ExperimentRun] = {}
    failed: dict[int, FailedCell] = {}
    attempts = [0] * len(pending)
    sidecar = FailureSidecar.for_store(store) if store is not None else None

    def record(
        index: int, run: ExperimentRun, *, persisted: bool = False
    ) -> None:
        results[index] = run
        if store is not None and not persisted:
            store.append(run)
        if progress is not None:
            progress(pending[index], len(results), len(pending))

    def quarantine(index: int, exc: BaseException, kind: str) -> None:
        cell = pending[index]
        failed[index] = FailedCell(
            key=cell.key,
            kind=kind,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_tail=_traceback_tail(exc),
            attempts=attempts[index],
            config=cell.to_config(),
        )
        if failures is not None:
            failures.append(failed[index])
        if sidecar is not None:
            sidecar.append(failed[index])

    def exhaust(index: int, exc: BaseException, kind: str) -> None:
        """A cell is out of retries: quarantine it or abort the sweep."""
        if on_cell_failure == "quarantine":
            quarantine(index, exc, kind)
            return
        raise CellFailedError(
            f"cell {cell_key_str(pending[index].key)} failed "
            f"({kind}) after {attempts[index]} attempt(s): {exc}"
        ) from exc

    if n_workers == 1 or len(pending) <= 1:
        _run_inline(
            pending, attempts, results, failed, record, exhaust,
            max_retries=max_retries, retry_backoff_s=retry_backoff_s,
        )
    else:
        # Sharded stores flip the write path: workers persist their
        # own cells into per-shard files (no parent funnel, no
        # cross-shard contention); the parent only does accounting.
        # The manifest is written up front so every worker reads one
        # agreed shard count.
        worker_store_path: Optional[str] = None
        if isinstance(store, ShardedStore):
            store.ensure_initialized()
            worker_store_path = str(store.path)
        _run_pooled(
            pending, attempts, results, failed, record, exhaust,
            n_workers=n_workers, cell_timeout=cell_timeout,
            max_retries=max_retries, retry_backoff_s=retry_backoff_s,
            worker_store_path=worker_store_path,
        )
    return [results[i] for i in range(len(pending)) if i in results]


def _run_inline(
    pending, attempts, results, failed, record, exhaust,
    *, max_retries: int, retry_backoff_s: float,
) -> None:
    """Serial execution with the same retry/quarantine semantics as
    the pool (minus the watchdog — a process cannot preempt itself)."""
    for i, cell in enumerate(pending):
        while True:
            attempts[i] += 1
            try:
                run = _execute_cell(cell, attempts[i])
            except KeyboardInterrupt as exc:
                cancelled = len(pending) - len(results) - len(failed)
                raise SweepInterrupted(
                    f"sweep interrupted: {len(results)} cell(s) "
                    f"completed (0 salvaged), {cancelled} cancelled"
                ) from exc
            except Exception as exc:
                if attempts[i] <= max_retries:
                    if retry_backoff_s > 0:
                        time.sleep(
                            retry_backoff_s * 2 ** (attempts[i] - 1)
                        )
                    continue
                exhaust(i, exc, "exception")
                break
            else:
                record(i, run)
                break


def _run_pooled(
    pending, attempts, results, failed, record, exhaust,
    *, n_workers: int, cell_timeout: Optional[float],
    max_retries: int, retry_backoff_s: float,
    worker_store_path: Optional[str] = None,
) -> None:
    """The fault-tolerant pool loop: windowed submission (at most
    *n_workers* cells in flight, so a submitted cell starts
    immediately and its deadline clock is honest), a watchdog over
    per-cell deadlines, and pool rebuilds on breakage.

    With *worker_store_path* (a sharded store), workers persist their
    own cells (:func:`_execute_and_store_cell`) and ``record`` runs
    with ``persisted=True`` — accounting only, no parent-side append.
    """
    persisted = worker_store_path is not None
    queue: deque[int] = deque(range(len(pending)))
    ready_at: dict[int, float] = {}
    inflight: dict = {}
    deadlines: dict = {}
    pool = ProcessPoolExecutor(
        max_workers=n_workers, initializer=_worker_init
    )
    consecutive_submit_breaks = 0

    def requeue(index: int, charged: bool) -> None:
        """Schedule a retry; charged failures back off, bystanders of
        a pool rebuild go back to the front at once, uncharged."""
        if charged:
            if retry_backoff_s > 0:
                ready_at[index] = time.monotonic() + (
                    retry_backoff_s * 2 ** (attempts[index] - 1)
                )
            queue.append(index)
        else:
            attempts[index] -= 1
            queue.appendleft(index)

    def retry_or_exhaust(index: int, exc: BaseException, kind: str) -> None:
        if attempts[index] <= max_retries:
            requeue(index, charged=True)
        else:
            exhaust(index, exc, kind)

    def drain_and_rebuild() -> None:
        """Kill the (broken/hung) pool, keep any finished results,
        resubmit the rest uncharged, and stand up a fresh pool."""
        nonlocal pool
        _kill_pool(pool)
        for fut, i in list(inflight.items()):
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                record(i, fut.result(), persisted=persisted)
            else:
                requeue(i, charged=False)
        inflight.clear()
        deadlines.clear()
        pool = ProcessPoolExecutor(
            max_workers=n_workers, initializer=_worker_init
        )

    try:
        while queue or inflight:
            now = time.monotonic()
            # Fill free slots with ready cells (FIFO; backoff delays
            # only the head so retry order stays deterministic).
            while (
                queue
                and len(inflight) < n_workers
                and ready_at.get(queue[0], 0.0) <= now
            ):
                i = queue.popleft()
                att = attempts[i] + 1
                try:
                    if persisted:
                        fut = pool.submit(
                            _execute_and_store_cell, pending[i], att,
                            worker_store_path,
                        )
                    else:
                        fut = pool.submit(_execute_cell, pending[i], att)
                except BrokenExecutor:
                    # The pool died between batches; put the cell back
                    # (uncharged — it never ran) and rebuild.
                    queue.appendleft(i)
                    consecutive_submit_breaks += 1
                    if consecutive_submit_breaks > 3:
                        raise RuntimeError(
                            "process pool keeps breaking before any "
                            "cell can start; giving up"
                        )
                    drain_and_rebuild()
                    break
                consecutive_submit_breaks = 0
                attempts[i] = att
                inflight[fut] = i
                if cell_timeout is not None:
                    deadlines[fut] = now + cell_timeout

            if not inflight:
                # Everything runnable is backing off; sleep until the
                # head of the queue is ready.
                time.sleep(
                    max(0.0, ready_at.get(queue[0], 0.0) - time.monotonic())
                )
                continue

            # Wake for the first completion, the nearest watchdog
            # deadline, or the next backoff expiry — whichever first.
            wakes = []
            if deadlines:
                wakes.append(min(deadlines.values()))
            if queue and len(inflight) < n_workers:
                wakes.append(ready_at.get(queue[0], 0.0))
            timeout = (
                max(0.0, min(wakes) - time.monotonic()) if wakes else None
            )
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for fut in done:
                i = inflight.pop(fut)
                deadlines.pop(fut, None)
                exc = fut.exception()
                if exc is None:
                    record(i, fut.result(), persisted=persisted)
                elif isinstance(exc, BrokenExecutor):
                    # The worker died without a goodbye (OOM kill,
                    # segfault, os._exit): the pool is toast.
                    pool_broken = True
                    retry_or_exhaust(i, exc, "pool-crash")
                else:
                    retry_or_exhaust(i, exc, "exception")

            now = time.monotonic()
            overdue = [f for f, dl in deadlines.items() if dl <= now]
            if overdue:
                # Watchdog: a hung worker cannot be cancelled, only
                # killed with its pool. Charge the overdue cell(s); the
                # drain below resubmits the innocent rest uncharged.
                for fut in overdue:
                    i = inflight.pop(fut)
                    deadlines.pop(fut)
                    retry_or_exhaust(
                        i,
                        TimeoutError(
                            f"cell exceeded --cell-timeout "
                            f"({cell_timeout:g}s); worker killed"
                        ),
                        "timeout",
                    )
                pool_broken = True

            if pool_broken:
                drain_and_rebuild()

        pool.shutdown(wait=True)
    except BaseException as exc:
        # Ctrl-C or an aborting cell failure: drop the queued cells,
        # let the <= n_workers in-flight cells finish, and persist
        # those — a resumed sweep then loses nothing that actually
        # completed. The salvage pass fires the progress callback with
        # the same monotone completed/total accounting as the main
        # loop, and the raised error reports the salvaged/cancelled
        # split.
        futs = set(inflight)
        if futs:
            grace = None
            if deadlines:
                grace = max(
                    0.0, max(deadlines.values()) - time.monotonic()
                )
            wait(futs, timeout=grace)
        salvaged = 0
        for fut, i in list(inflight.items()):
            if (
                i not in results
                and fut.done()
                and not fut.cancelled()
                and fut.exception() is None
            ):
                record(i, fut.result(), persisted=persisted)
                salvaged += 1
        _kill_pool(pool)
        cancelled = len(pending) - len(results) - len(failed)
        if isinstance(exc, KeyboardInterrupt):
            raise SweepInterrupted(
                f"sweep interrupted: {len(results)} cell(s) completed "
                f"({salvaged} salvaged after interrupt), "
                f"{cancelled} cancelled"
            ) from exc
        if isinstance(exc, CellFailedError):
            exc.args = (
                f"{exc.args[0]} [{len(results)} cell(s) completed, "
                f"{salvaged} salvaged after the failure, "
                f"{cancelled} cancelled]",
            )
        raise


def run_matrix_parallel(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    *,
    workload_seeds: Sequence[int] = (0,),
    scheduler_seeds: Sequence[int] = (0,),
    arrival_mode: ArrivalMode = "scenario",
    disruptions: Optional[DisruptionSpec] = None,
    restart_policy: str = "resubmit",
    checkpoint_interval: Optional[float] = None,
    topology: Optional[ClusterTopology] = None,
    anneal_window: Optional[int] = None,
    engine: str = "soa",
    workers: Optional[int] = None,
    store: Optional[Union[StoreBackend, str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    cell_timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    on_cell_failure: str = "abort",
    failures: Optional[list[FailedCell]] = None,
) -> list[ExperimentRun]:
    """Parallel, resumable scenarios × sizes × schedulers × seeds sweep.

    The parallel counterpart of
    :func:`~repro.experiments.runner.run_matrix`: for the same seeds it
    produces identical metrics in the identical order, just faster.
    Accepts seed *sequences* so repetition sweeps (paper Fig. 7 style)
    fan out over the same pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses every core, ``1`` runs inline.
    store:
        Optional store backend (or path, opened via
        :func:`~repro.experiments.storage.open_store`) that receives
        each completed run as one JSONL line, immediately on
        completion. With a :class:`ShardedStore` and ``workers >= 2``,
        pooled workers write their own cells straight into per-shard
        files — concurrent writers with no cross-shard contention.
    resume:
        Skip cells already persisted in *store*; only the remaining
        cells are executed (and returned).
    cell_timeout / max_retries / retry_backoff_s / on_cell_failure /
    failures:
        Fault-tolerance knobs, forwarded to :func:`run_cells` (per-cell
        watchdog budget, retry budget and deterministic backoff, and
        whether an exhausted cell aborts the sweep or is quarantined
        into *failures* and the store's ``.failures`` sidecar).
    """
    cells = expand_cells(
        scenarios,
        sizes,
        schedulers,
        workload_seeds=workload_seeds,
        scheduler_seeds=scheduler_seeds,
        arrival_mode=arrival_mode,
        disruptions=disruptions,
        restart_policy=restart_policy,
        checkpoint_interval=checkpoint_interval,
        topology=topology,
        anneal_window=anneal_window,
        engine=engine,
    )
    return run_cells(
        cells,
        workers=workers,
        store=store,
        resume=resume,
        progress=progress,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        on_cell_failure=on_cell_failure,
        failures=failures,
    )
