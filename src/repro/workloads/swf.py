"""Standard Workload Format (SWF) interoperability.

SWF is the de-facto archive format for published HPC traces (the
Parallel Workloads Archive). Supporting it lets this library's
schedulers run against real published logs and lets generated
scenarios be shared as standard trace files.

Field mapping (SWF defines 18 whitespace-separated columns; ``-1``
marks unknown):

====  =======================  ==========================
 #    SWF field                :class:`~repro.sim.job.Job`
====  =======================  ==========================
 1    job number               ``job_id``
 2    submit time              ``submit_time``
 3    wait time                ignored on read, ``-1`` on write
 4    run time                 ``duration``
 5    allocated processors     ``nodes``
 8    requested processors     ``nodes`` (write), fallback on read
 9    requested time           ``walltime``
 10   requested memory (KB     ``memory_gb`` (converted; per-proc
      per processor)           in SWF, aggregate in Job)
 12   user id                  ``user`` (``user_<id>``)
 13   group id                 ``group`` (``group_<id>``)
====  =======================  ==========================

Unused columns are written as ``-1``. Comment/header lines start with
``;``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, TextIO

from repro.sim.job import Job, validate_workload

_KB_PER_GB = 1024.0 * 1024.0
_N_FIELDS = 18


def jobs_to_swf(
    jobs: Sequence[Job], path: str | Path | TextIO, *, header: str = ""
) -> None:
    """Write *jobs* as an SWF trace file."""

    def _write(handle: TextIO) -> None:
        handle.write("; SWF trace written by repro.workloads.swf\n")
        if header:
            for line in header.splitlines():
                handle.write(f"; {line}\n")
        for job in jobs:
            mem_kb_per_proc = (
                job.memory_gb / job.nodes * _KB_PER_GB if job.nodes else -1
            )
            fields = [-1] * _N_FIELDS
            fields[0] = job.job_id
            fields[1] = job.submit_time
            fields[3] = job.duration
            fields[4] = job.nodes
            fields[7] = job.nodes
            fields[8] = job.walltime
            fields[9] = mem_kb_per_proc
            fields[11] = _label_id(job.user)
            fields[12] = _label_id(job.group)
            handle.write(
                " ".join(_format_field(v) for v in fields) + "\n"
            )

    if isinstance(path, (str, Path)):
        with open(path, "w") as handle:
            _write(handle)
    else:
        _write(path)


def _format_field(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def _label_id(label: str) -> int:
    """Extract the numeric suffix of ``user_N`` / ``group_N`` labels;
    fall back to a stable non-negative hash for arbitrary names."""
    tail = label.rsplit("_", 1)[-1]
    if tail.isdigit():
        return int(tail)
    return abs(hash(label)) % 100_000


def jobs_from_swf(path: str | Path | TextIO) -> list[Job]:
    """Read an SWF trace into a job list.

    Jobs with non-positive run time (SWF uses ``-1`` for unknown and 0
    for cancelled) are skipped, as are malformed lines — SWF archives
    are messy and the convention is to filter, matching the paper's
    preprocessing philosophy. Raises ``ValueError`` if no usable job
    remains.
    """

    def _read(handle: TextIO) -> list[Job]:
        jobs: list[Job] = []
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            parts = line.split()
            if len(parts) < 10:
                continue
            try:
                job_id = int(float(parts[0]))
                submit = float(parts[1])
                runtime = float(parts[3])
                procs = int(float(parts[4]))
                if procs <= 0:
                    procs = int(float(parts[7]))
                walltime = float(parts[8])
                mem_kb = float(parts[9])
                user = int(float(parts[11])) if len(parts) > 11 else -1
                group = int(float(parts[12])) if len(parts) > 12 else -1
            except (ValueError, IndexError):
                continue
            if runtime <= 0 or procs <= 0 or submit < 0:
                continue
            memory_gb = (
                mem_kb / _KB_PER_GB * procs if mem_kb > 0 else 1.0
            )
            jobs.append(
                Job(
                    job_id=job_id,
                    submit_time=submit,
                    duration=runtime,
                    walltime=walltime if walltime > 0 else runtime,
                    nodes=procs,
                    memory_gb=memory_gb,
                    user=f"user_{user}" if user >= 0 else "user_unknown",
                    group=f"group_{group}" if group >= 0 else "group_unknown",
                )
            )
        if not jobs:
            raise ValueError("no usable jobs in SWF input")
        return validate_workload(jobs)

    if isinstance(path, (str, Path)):
        with open(path) as handle:
            return _read(handle)
    return _read(path)
