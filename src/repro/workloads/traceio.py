"""Workload trace I/O.

Simple CSV serialization of :class:`~repro.sim.job.Job` lists, so
generated workloads and preprocessed traces can be saved, shared and
replayed (the paper publishes its workload data for reproducibility;
this is our equivalent). The column set mirrors the fields the paper's
preprocessing retains.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence, TextIO

from repro.sim.job import Job, validate_workload

#: Canonical column order.
COLUMNS: tuple[str, ...] = (
    "job_id",
    "submit_time",
    "duration",
    "walltime",
    "nodes",
    "memory_gb",
    "user",
    "group",
    "name",
)


def jobs_to_csv(jobs: Sequence[Job], path: str | Path | TextIO) -> None:
    """Write *jobs* to *path* (file path or open text handle)."""

    def _write(handle: TextIO) -> None:
        writer = csv.writer(handle)
        writer.writerow(COLUMNS)
        for job in jobs:
            writer.writerow(
                [
                    job.job_id,
                    repr(job.submit_time),
                    repr(job.duration),
                    repr(job.walltime),
                    job.nodes,
                    repr(job.memory_gb),
                    job.user,
                    job.group,
                    job.name,
                ]
            )

    if isinstance(path, (str, Path)):
        with open(path, "w", newline="") as handle:
            _write(handle)
    else:
        _write(path)


def jobs_from_csv(path: str | Path | TextIO) -> list[Job]:
    """Read a job list previously written by :func:`jobs_to_csv`.

    Raises
    ------
    ValueError
        On missing columns or malformed rows (with row context).
    """

    def _read(handle: TextIO) -> list[Job]:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError("empty trace file")
        missing = set(COLUMNS) - set(reader.fieldnames)
        if missing:
            raise ValueError(f"trace file missing columns: {sorted(missing)}")
        jobs: list[Job] = []
        for rownum, row in enumerate(reader, start=2):
            try:
                jobs.append(
                    Job(
                        job_id=int(row["job_id"]),
                        submit_time=float(row["submit_time"]),
                        duration=float(row["duration"]),
                        walltime=float(row["walltime"]),
                        nodes=int(row["nodes"]),
                        memory_gb=float(row["memory_gb"]),
                        user=row["user"],
                        group=row["group"],
                        name=row["name"],
                    )
                )
            except (KeyError, ValueError) as exc:
                raise ValueError(f"malformed trace row {rownum}: {exc}") from exc
        return validate_workload(jobs)

    if isinstance(path, (str, Path)):
        with open(path, newline="") as handle:
            return _read(handle)
    return _read(path)


def jobs_to_csv_string(jobs: Sequence[Job]) -> str:
    """Serialize to an in-memory CSV string (testing convenience)."""
    buf = io.StringIO()
    jobs_to_csv(jobs, buf)
    return buf.getvalue()


def jobs_from_csv_string(text: str) -> list[Job]:
    """Parse a CSV string produced by :func:`jobs_to_csv_string`."""
    return jobs_from_csv(io.StringIO(text))
