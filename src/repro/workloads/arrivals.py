"""Job arrival processes.

The paper simulates dynamic submissions with Poisson processes whose
rate λ is scenario-specific (§3.1); the Bursty+Idle scenario
additionally alternates activity bursts with idle gaps; and the static
experiments of §3.3 submit every job at ``t = 0``.

Every process maps ``(rng, n)`` to a sorted array of ``n`` non-negative
submit times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class ArrivalProcess(Protocol):
    """Protocol for arrival time generators."""

    def times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return ``n`` sorted, non-negative arrival times (seconds)."""
        ...


@dataclass(frozen=True)
class AllAtZero:
    """Every job is submitted at system initialization (paper §3.3)."""

    def times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.zeros(n)


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson process with rate λ (jobs per second).

    Interarrival gaps are exponential with mean ``1 / rate``; the first
    job arrives at ``t = 0`` so every workload has an eligible job at
    simulation start (matching the paper's traces, Fig. 2).
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    def times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(0)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        gaps[0] = 0.0
        return np.cumsum(gaps)


@dataclass(frozen=True)
class BurstyArrivals:
    """Bursts of closely spaced submissions separated by idle gaps.

    Within a burst of ``burst_size`` jobs, gaps are exponential with
    rate ``burst_rate``; between bursts an idle period of mean
    ``idle_gap`` seconds (exponential) elapses. Models the Bursty+Idle
    scenario's uneven submission pattern.
    """

    burst_size: int = 8
    burst_rate: float = 0.5
    idle_gap: float = 1800.0

    def __post_init__(self) -> None:
        if self.burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if self.burst_rate <= 0:
            raise ValueError("burst_rate must be positive")
        if self.idle_gap < 0:
            raise ValueError("idle_gap must be non-negative")

    def times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n == 0:
            return np.zeros(0)
        gaps = np.empty(n)
        for i in range(n):
            if i == 0:
                gaps[i] = 0.0
            elif i % self.burst_size == 0:
                gaps[i] = rng.exponential(self.idle_gap)
            else:
                gaps[i] = rng.exponential(1.0 / self.burst_rate)
        return np.cumsum(gaps)
