"""Workload transforms: derived instances for sensitivity studies.

Pure functions mapping job lists to job lists:

* :func:`with_noisy_walltimes` — replace the synthetic scenarios'
  perfect runtime estimates with user-style requests (padded, quantized,
  occasionally underestimated), the input EASY backfilling's
  reservation quality depends on;
* :func:`with_scaled_arrivals` — compress or stretch the arrival
  process to sweep offered load without redrawing job demands;
* :func:`with_all_at_zero` — collapse to the paper's §3.3 static mode.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.sim.job import Job, validate_workload


def with_noisy_walltimes(
    jobs: Sequence[Job],
    seed: int | np.random.SeedSequence = 0,
    *,
    pad_range: tuple[float, float] = (1.2, 3.0),
    underestimate_prob: float = 0.0,
    quantize_s: float = 900.0,
) -> list[Job]:
    """Replace walltimes with user-style requested estimates.

    Each walltime becomes ``duration × U(pad_range)``, rounded up to a
    *quantize_s* grid (users request round numbers). With probability
    *underestimate_prob* the request instead falls short of the true
    duration (``duration × U(0.5, 0.95)``) — those jobs die at the
    limit under ``enforce_walltime=True``.
    """
    lo, hi = pad_range
    if not 1.0 <= lo <= hi:
        raise ValueError("pad_range must satisfy 1.0 <= lo <= hi")
    if not 0.0 <= underestimate_prob <= 1.0:
        raise ValueError("underestimate_prob must be in [0, 1]")
    if quantize_s < 0:
        raise ValueError("quantize_s must be non-negative")
    rng = np.random.default_rng(seed)
    out: list[Job] = []
    for job in jobs:
        if rng.random() < underestimate_prob:
            walltime = job.duration * rng.uniform(0.5, 0.95)
        else:
            walltime = job.duration * rng.uniform(lo, hi)
            if quantize_s > 0:
                walltime = float(np.ceil(walltime / quantize_s) * quantize_s)
        out.append(replace(job, walltime=max(walltime, 1.0)))
    return validate_workload(out)


def with_scaled_arrivals(
    jobs: Sequence[Job], factor: float
) -> list[Job]:
    """Scale every submit time by *factor*.

    ``factor < 1`` compresses arrivals (raises offered load);
    ``factor > 1`` stretches them (lowers load). Demands are untouched,
    so load sweeps isolate the queueing effect.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    return validate_workload(
        [replace(j, submit_time=j.submit_time * factor) for j in jobs]
    )


def with_all_at_zero(jobs: Sequence[Job]) -> list[Job]:
    """Collapse every submission to ``t = 0`` (paper §3.3 static mode)."""
    return validate_workload([replace(j, submit_time=0.0) for j in jobs])
