"""Scenario-driven HPC workload generation.

Implements the paper's §3.1 instance generator: seven benchmark
scenarios with scenario-specific runtime/resource distributions and
Poisson (or bursty, or all-at-zero) arrival processes, plus the
Polaris-trace substitute used by §5.

Public surface
--------------
:func:`~repro.workloads.generator.generate_workload`
    ``generate_workload("heterogeneous_mix", n_jobs=60, seed=0)`` →
    ``list[Job]``.
:data:`~repro.workloads.scenarios.SCENARIOS`
    Registry of the seven named scenarios.
:func:`~repro.workloads.polaris.synthesize_polaris_trace` /
:func:`~repro.workloads.polaris.preprocess_trace`
    Polaris-like raw trace synthesis and the paper's preprocessing
    pipeline (filter failed jobs, normalize timestamps, factorize
    users, derive memory from node count).
"""

from repro.workloads.arrivals import (
    AllAtZero,
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
)
from repro.workloads.dags import (
    chain_workload,
    critical_path_length,
    fork_join_workload,
    layered_dag_workload,
)
from repro.workloads.generator import generate_workload
from repro.workloads.swf import jobs_from_swf, jobs_to_swf
from repro.workloads.transforms import (
    with_all_at_zero,
    with_noisy_walltimes,
    with_scaled_arrivals,
)
from repro.workloads.polaris import (
    POLARIS_MEMORY_PER_NODE_GB,
    POLARIS_NODES,
    RawTraceRecord,
    preprocess_trace,
    synthesize_polaris_trace,
)
from repro.workloads.scenarios import SCENARIO_NAMES, SCENARIOS, Scenario
from repro.workloads.traceio import jobs_from_csv, jobs_to_csv

__all__ = [
    "AllAtZero",
    "ArrivalProcess",
    "BurstyArrivals",
    "PoissonArrivals",
    "chain_workload",
    "critical_path_length",
    "fork_join_workload",
    "jobs_from_swf",
    "jobs_to_swf",
    "layered_dag_workload",
    "with_all_at_zero",
    "with_noisy_walltimes",
    "with_scaled_arrivals",
    "POLARIS_MEMORY_PER_NODE_GB",
    "POLARIS_NODES",
    "RawTraceRecord",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "Scenario",
    "generate_workload",
    "jobs_from_csv",
    "jobs_to_csv",
    "preprocess_trace",
    "synthesize_polaris_trace",
]
