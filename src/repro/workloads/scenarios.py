"""The seven benchmark scenarios of paper §3.1.

Each scenario couples a per-job *sampler* (runtime, node and memory
distributions) with an *arrival process*. Parameters follow the paper's
descriptions verbatim where given:

* **Homogeneous Short** — uniform 30–120 s jobs with 2 nodes, 4 GB
  (lightweight CI/test workloads).
* **Heterogeneous Mix** — Gamma(shape=1.5, scale=300) runtimes and
  varied node/memory demands (production-like).
* **Long-Job Dominant** — 20% extremely long jobs (50 000 s, 128 nodes)
  among short ones (500 s, 2 nodes); probes convoy-effect handling.
* **High Parallelism** — large parallel jobs (64–256 nodes) with Gamma
  walltimes (tightly coupled simulations).
* **Resource Sparse** — 1-node, <8 GB, 30–300 s jobs.
* **Bursty + Idle** — alternating short and long jobs with modest
  demands, submitted in bursts separated by idle periods.
* **Adversarial** — one large blocking job (128 nodes, 100 000 s)
  followed by many tiny jobs (1 node, 60 s); exposes convoy effects.

Every sampler draws against the paper's 256-node / 2048 GB partition
and never emits a job that exceeds total capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
)

#: Cluster the scenarios are calibrated for (paper §3.1).
CLUSTER_NODES = 256
CLUSTER_MEMORY_GB = 2048.0

#: Size of the synthetic user population; per-user fairness (Jain over
#: per-user mean waits) needs multiple users per workload.
DEFAULT_USER_POOL = 8


@dataclass(frozen=True)
class JobDraw:
    """One sampled job profile (before ids/arrival times are attached)."""

    duration: float
    nodes: int
    memory_gb: float

    def clamped(self) -> "JobDraw":
        """Clamp to cluster capacity and sane minima."""
        nodes = int(min(max(self.nodes, 1), CLUSTER_NODES))
        memory = float(min(max(self.memory_gb, 0.5), CLUSTER_MEMORY_GB))
        duration = float(max(self.duration, 1.0))
        return JobDraw(duration, nodes, memory)


Sampler = Callable[[np.random.Generator, int, int], JobDraw]


@dataclass(frozen=True)
class Scenario:
    """A named workload scenario: sampler + arrival process + metadata."""

    name: str
    description: str
    sampler: Sampler
    arrivals: ArrivalProcess
    #: Degree of heterogeneity in [0, 1]; feeds the simulated-LLM latency
    #: model (reasoning is slower on diverse queues, paper §3.7.1).
    heterogeneity: float = 0.0
    user_pool: int = DEFAULT_USER_POOL

    def sample(self, rng: np.random.Generator, index: int, n: int) -> JobDraw:
        return self.sampler(rng, index, n).clamped()


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------

def _homogeneous_short(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    return JobDraw(duration=rng.uniform(30.0, 120.0), nodes=2, memory_gb=4.0)


#: Node-count menu for heterogeneous production mixes, weighted toward
#: small jobs the way real traces are, but including full-machine jobs
#: (the paper's Fig. 2 traces show 256-node, up-to-2048 GB jobs in this
#: scenario) — these create the head-blocking that separates schedulers.
_HET_NODES = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256])
_HET_NODE_WEIGHTS = np.array(
    [0.24, 0.20, 0.15, 0.12, 0.10, 0.08, 0.06, 0.03, 0.02]
)


def _heterogeneous_mix(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    duration = rng.gamma(shape=1.5, scale=300.0)
    nodes = int(rng.choice(_HET_NODES, p=_HET_NODE_WEIGHTS))
    if rng.random() < 0.1:
        # Memory-heavy job: demand decoupled from node count.
        memory = rng.uniform(512.0, 2048.0)
    else:
        memory = nodes * rng.uniform(1.0, 8.0)
    return JobDraw(duration=duration, nodes=nodes, memory_gb=memory)


def _long_job_dominant(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    if rng.random() < 0.2:
        return JobDraw(duration=50_000.0, nodes=128, memory_gb=512.0)
    return JobDraw(duration=500.0, nodes=2, memory_gb=8.0)


def _high_parallelism(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    nodes = int(rng.integers(64, CLUSTER_NODES + 1))
    duration = rng.gamma(shape=2.0, scale=400.0)
    per_node_gb = rng.uniform(2.0, 6.0)
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * per_node_gb)


def _resource_sparse(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    return JobDraw(
        duration=rng.uniform(30.0, 300.0),
        nodes=1,
        memory_gb=rng.uniform(1.0, 8.0),
    )


def _bursty_idle(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    # Alternate short and long jobs (paper: "alternates between short and
    # long-running jobs with modest resource demands").
    if i % 2 == 0:
        duration = rng.uniform(60.0, 300.0)
    else:
        duration = rng.uniform(4000.0, 10000.0)
    nodes = int(rng.choice([4, 8, 16, 32]))
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * 4.0)


def _adversarial(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    if i == 0:
        return JobDraw(duration=100_000.0, nodes=128, memory_gb=256.0)
    return JobDraw(duration=60.0, nodes=1, memory_gb=2.0)


def _checkpoint_stress(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    # Long-running, moderately parallel jobs: each holds a big slab of
    # the cluster for hours, so a node failure without checkpointing
    # throws away enormous node-time. The regime where restart policies
    # separate (pair with --mtbf / the "flaky"/"hostile" presets).
    duration = rng.gamma(shape=3.0, scale=6000.0)
    nodes = int(rng.choice([16, 32, 48, 64]))
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * 4.0)


def _rack_storm(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    # Many sub-rack jobs (8-32 nodes, tens of minutes to a few hours):
    # with a 32-node rack topology each job sits inside one or two
    # racks, so a whole-rack shock wipes several jobs at one instant —
    # the blast-radius regime domain-spread placement exists to blunt.
    # Pair with --rack-size 32 and the "rack_storm" preset.
    duration = rng.gamma(shape=2.0, scale=2_000.0)
    nodes = int(rng.choice([8, 16, 24, 32]))
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * 4.0)


def _switch_outage(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    # Wide, long jobs (32-128 nodes) spanning several racks behind one
    # switch group: a switch-level outage is the largest single-event
    # work loss the blast-radius metrics track. Pair with
    # --rack-size 32 --racks-per-switch 4 and the "switch_outage"
    # preset.
    duration = rng.gamma(shape=2.5, scale=4_000.0)
    nodes = int(rng.choice([32, 64, 96, 128]))
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * 3.0)


def _drain_window(rng: np.random.Generator, i: int, n: int) -> JobDraw:
    # Steady mix of medium jobs whose walltimes straddle typical
    # maintenance-window scales: whether a scheduler parks long jobs
    # until after an announced drain (or walks into it) dominates the
    # outcome. Pair with --drain-every / the "maintenance" preset.
    if rng.random() < 0.3:
        duration = rng.uniform(4000.0, 12000.0)  # spans a 1h drain
    else:
        duration = rng.uniform(300.0, 1800.0)  # fits between drains
    nodes = int(rng.choice([2, 4, 8, 16, 32]))
    return JobDraw(duration=duration, nodes=nodes, memory_gb=nodes * 6.0)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {
    "homogeneous_short": Scenario(
        name="homogeneous_short",
        description="Uniform 30-120s jobs, 2 nodes / 4 GB (CI/test load)",
        sampler=_homogeneous_short,
        arrivals=PoissonArrivals(rate=1 / 2.0),
        heterogeneity=0.05,
    ),
    "heterogeneous_mix": Scenario(
        name="heterogeneous_mix",
        description=(
            "Gamma(1.5, 300) runtimes, varied node/memory demands "
            "(production mix)"
        ),
        sampler=_heterogeneous_mix,
        arrivals=PoissonArrivals(rate=1 / 8.0),
        heterogeneity=1.0,
    ),
    "long_job_dominant": Scenario(
        name="long_job_dominant",
        description=(
            "20% extremely long 50000s/128-node jobs among 500s/2-node "
            "jobs (convoy effect)"
        ),
        sampler=_long_job_dominant,
        arrivals=PoissonArrivals(rate=1 / 60.0),
        heterogeneity=0.7,
    ),
    "high_parallelism": Scenario(
        name="high_parallelism",
        description=(
            "Large 64-256 node jobs with Gamma walltimes (tightly "
            "coupled simulations)"
        ),
        sampler=_high_parallelism,
        arrivals=PoissonArrivals(rate=1 / 120.0),
        heterogeneity=0.6,
    ),
    "resource_sparse": Scenario(
        name="resource_sparse",
        description="1-node, <8 GB, 30-300s jobs (sparse lightweight load)",
        sampler=_resource_sparse,
        arrivals=PoissonArrivals(rate=1 / 10.0),
        heterogeneity=0.1,
    ),
    "bursty_idle": Scenario(
        name="bursty_idle",
        description=(
            "Alternating short/long jobs with modest demands, bursty "
            "submissions with idle gaps"
        ),
        sampler=_bursty_idle,
        arrivals=BurstyArrivals(burst_size=12, burst_rate=0.5, idle_gap=1800.0),
        heterogeneity=0.5,
    ),
    "adversarial": Scenario(
        name="adversarial",
        description=(
            "One 128-node/100000s blocking job followed by many 1-node/60s "
            "jobs (stress test)"
        ),
        sampler=_adversarial,
        arrivals=PoissonArrivals(rate=1 / 5.0),
        heterogeneity=0.3,
    ),
    # -- failure-themed scenarios (beyond the paper's seven): workload
    # shapes built to stress the disruption subsystem. The disruption
    # regime itself is orthogonal — attach one via run_single(
    # disruptions=...) or the CLI --disruptions/--mtbf/--drain-* flags.
    "checkpoint_stress": Scenario(
        name="checkpoint_stress",
        description=(
            "Hours-long 16-64 node jobs; node failures without "
            "checkpointing waste massive node-time (pair with --mtbf)"
        ),
        sampler=_checkpoint_stress,
        arrivals=PoissonArrivals(rate=1 / 300.0),
        heterogeneity=0.5,
    ),
    "drain_window": Scenario(
        name="drain_window",
        description=(
            "Mixed 300s-12000s jobs around maintenance-window scales "
            "(pair with --drain-every / the maintenance preset)"
        ),
        sampler=_drain_window,
        arrivals=PoissonArrivals(rate=1 / 60.0),
        heterogeneity=0.6,
    ),
    "rack_storm": Scenario(
        name="rack_storm",
        description=(
            "8-32 node sub-rack jobs; whole-rack shocks kill several "
            "at once (pair with --rack-size 32 / the rack_storm preset)"
        ),
        sampler=_rack_storm,
        arrivals=PoissonArrivals(rate=1 / 120.0),
        heterogeneity=0.5,
    ),
    "switch_outage": Scenario(
        name="switch_outage",
        description=(
            "Wide 32-128 node jobs spanning racks; a switch-group "
            "outage maximizes single-event loss (pair with "
            "--racks-per-switch / the switch_outage preset)"
        ),
        sampler=_switch_outage,
        arrivals=PoissonArrivals(rate=1 / 240.0),
        heterogeneity=0.6,
    ),
}

#: Canonical ordering used in figures (Fig. 3 shows six of the seven —
#: heterogeneous_mix is covered separately in the scalability analysis).
SCENARIO_NAMES: tuple[str, ...] = tuple(SCENARIOS)

#: The paper's original seven scenarios (§3.1).
PAPER_SCENARIOS: tuple[str, ...] = (
    "homogeneous_short",
    "heterogeneous_mix",
    "long_job_dominant",
    "high_parallelism",
    "resource_sparse",
    "bursty_idle",
    "adversarial",
)

#: Scenarios added for the disruption subsystem (not in the paper).
FAILURE_SCENARIOS: tuple[str, ...] = (
    "checkpoint_stress",
    "drain_window",
    "rack_storm",
    "switch_outage",
)

#: The six scenarios plotted in Fig. 3 (§3.5 excludes heterogeneous_mix).
FIGURE3_SCENARIOS: tuple[str, ...] = tuple(
    name for name in PAPER_SCENARIOS if name != "heterogeneous_mix"
)

#: Queue sizes instantiated per scenario in the paper.
PAPER_JOB_COUNTS: tuple[int, ...] = (10, 20, 40, 60, 80, 100)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
