"""Polaris trace substitute (paper §5).

The paper evaluates on 100 jobs from the November-2024 public job
history of the **Polaris** supercomputer at Argonne (560 compute nodes,
512 GB memory each). We have no access to that log, so this module
provides:

* :func:`synthesize_polaris_trace` — a statistical stand-in generating
  *raw* accounting records with the structure of a PBS job history:
  absolute epoch timestamps, requested node counts and walltimes, exit
  statuses (including failures), real user/group names. The mixture
  parameters (heavy-tailed walltimes, debug/small/medium/large node
  classes, bursty daytime submissions) follow published
  characterizations of leadership-class traces, so the preprocessing
  and scheduling code paths are exercised exactly as with the real log.
* :func:`preprocess_trace` — the paper's preprocessing pipeline, which
  *is* faithful: filter failed jobs (``EXIT_STATUS == -1``), sort by
  submission time, normalize timestamps relative to the earliest
  submission, factorize user/group labels to anonymized ids
  (``User_1``, ``Group_1``, …), keep node counts as-is and derive
  memory as 512 GB × nodes.

Substitution note (DESIGN.md §2): the paper's §5 claim is that the
agent *generalizes to real traces under an assumed-idle start*; the
claim is exercised by trace structure, not by the identity of specific
November-2024 jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.job import Job, validate_workload

#: Polaris partition size (paper §5).
POLARIS_NODES = 560
#: Memory per Polaris node in GB (paper §5).
POLARIS_MEMORY_PER_NODE_GB = 512.0
#: Total memory of the modeled partition.
POLARIS_TOTAL_MEMORY_GB = POLARIS_NODES * POLARIS_MEMORY_PER_NODE_GB

#: Epoch of 2024-11-01 00:00:00 UTC, the nominal trace window start.
_TRACE_EPOCH = 1730419200


@dataclass(frozen=True)
class RawTraceRecord:
    """One raw accounting record, PBS-history-shaped.

    Timestamps are absolute epoch seconds; ``exit_status == -1`` marks a
    failed job (filtered by preprocessing, as in the paper).
    """

    job_name: str
    user: str
    group: str
    submit_ts: float
    start_ts: float
    end_ts: float
    nodes_requested: int
    walltime_requested_s: float
    exit_status: int

    @property
    def runtime_s(self) -> float:
        return self.end_ts - self.start_ts

    @property
    def queued_wait_s(self) -> float:
        return self.start_ts - self.submit_ts


# Node-count classes observed on leadership systems: debug/test (1-2),
# small (3-10), medium (11-64), large capability (65-560).
_NODE_CLASS_P = np.array([0.35, 0.30, 0.25, 0.10])
_USERS = [
    "aphysicist", "bchemist", "cclimate", "dfusion", "ebioinf",
    "fmaterials", "gcosmo", "hQCD", "iengine", "jneutron",
]
_GROUPS = ["physics", "chemistry", "climate", "fusion", "bio"]


def synthesize_polaris_trace(
    n_jobs: int = 120,
    seed: int | np.random.SeedSequence = 2024,
    *,
    failed_fraction: float = 0.12,
) -> list[RawTraceRecord]:
    """Generate a Polaris-like raw job history segment.

    Parameters
    ----------
    n_jobs:
        Number of raw records (the paper preprocesses down to 100
        completed jobs from a larger raw segment; default 120 leaves
        headroom for the failure filter).
    seed:
        RNG seed.
    failed_fraction:
        Fraction of records marked ``EXIT_STATUS = -1``.

    Returns
    -------
    list[RawTraceRecord]
        Records in *submission* order with absolute timestamps.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be non-negative")
    if not 0.0 <= failed_fraction < 1.0:
        raise ValueError("failed_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)

    # Bursty daytime submissions: lognormal interarrivals (median ~6 min).
    gaps = rng.lognormal(mean=np.log(360.0), sigma=1.3, size=n_jobs)
    gaps[0] = 0.0
    submits = _TRACE_EPOCH + np.cumsum(gaps)

    records: list[RawTraceRecord] = []
    for i in range(n_jobs):
        klass = rng.choice(4, p=_NODE_CLASS_P)
        if klass == 0:
            nodes = int(rng.integers(1, 3))
        elif klass == 1:
            nodes = int(rng.integers(3, 11))
        elif klass == 2:
            nodes = int(rng.integers(11, 65))
        else:
            nodes = int(rng.integers(65, POLARIS_NODES + 1))

        # Requested walltime: heavy-tailed, quantized to 15-minute steps
        # the way users request it; actual runtime is a fraction of it.
        walltime_req = float(
            np.clip(rng.lognormal(np.log(3600.0), 1.0), 300.0, 24 * 3600.0)
        )
        walltime_req = float(np.ceil(walltime_req / 900.0) * 900.0)
        runtime = float(
            np.clip(walltime_req * rng.beta(2.0, 2.5), 60.0, walltime_req)
        )

        queued_wait = float(rng.exponential(1200.0))
        start_ts = float(submits[i] + queued_wait)
        failed = rng.random() < failed_fraction
        if failed:
            # Failed jobs often die early.
            runtime = float(min(runtime, rng.exponential(600.0) + 30.0))

        user = _USERS[int(rng.integers(0, len(_USERS)))]
        group = _GROUPS[int(rng.integers(0, len(_GROUPS)))]
        records.append(
            RawTraceRecord(
                job_name=f"polaris_job_{i:05d}",
                user=user,
                group=group,
                submit_ts=float(submits[i]),
                start_ts=start_ts,
                end_ts=start_ts + runtime,
                nodes_requested=nodes,
                walltime_requested_s=walltime_req,
                exit_status=-1 if failed else 0,
            )
        )
    return records


def preprocess_trace(
    records: Sequence[RawTraceRecord],
    *,
    n_jobs: int | None = 100,
    memory_per_node_gb: float = POLARIS_MEMORY_PER_NODE_GB,
) -> list[Job]:
    """The paper's §5 preprocessing pipeline.

    1. Filter failed jobs (``EXIT_STATUS == -1``).
    2. Sort by submission time and (optionally) take a contiguous
       segment of the first *n_jobs* completed jobs.
    3. Normalize timestamps relative to the earliest submission.
    4. Factorize user and group labels to anonymized ids in first-seen
       order (``User_1``, ``Group_1``, …).
    5. Use the node count as-is; derive total memory as
       ``memory_per_node_gb × nodes``.

    Durations come from the recorded runtime (end − start); the
    requested walltime is retained on :attr:`Job.walltime`.
    """
    completed = sorted(
        (r for r in records if r.exit_status != -1),
        key=lambda r: r.submit_ts,
    )
    if n_jobs is not None:
        completed = completed[:n_jobs]
    if not completed:
        return []

    t0 = completed[0].submit_ts
    user_ids: dict[str, int] = {}
    group_ids: dict[str, int] = {}
    jobs: list[Job] = []
    for i, rec in enumerate(completed):
        uid = user_ids.setdefault(rec.user, len(user_ids) + 1)
        gid = group_ids.setdefault(rec.group, len(group_ids) + 1)
        duration = max(rec.runtime_s, 1.0)
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=rec.submit_ts - t0,
                duration=duration,
                walltime=max(rec.walltime_requested_s, duration),
                nodes=rec.nodes_requested,
                memory_gb=rec.nodes_requested * memory_per_node_gb,
                user=f"User_{uid}",
                group=f"Group_{gid}",
                name=rec.job_name,
            )
        )
    return validate_workload(jobs)
