"""Workload instantiation: scenarios × job counts → ``list[Job]``.

The paper instantiates each scenario with [10, 20, 40, 60, 80, 100]
jobs (§3.1), assigning per-job user metadata and arrival times from the
scenario's arrival process. The §3.3 static experiments instead submit
every job at ``t = 0``; pass ``arrival_mode="zero"`` for that.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence

import numpy as np

from repro.sim.job import Job, validate_workload
from repro.workloads.arrivals import AllAtZero
from repro.workloads.scenarios import Scenario, get_scenario

ArrivalMode = Literal["scenario", "zero"]


def generate_workload(
    scenario: str | Scenario,
    n_jobs: int,
    seed: int | np.random.SeedSequence = 0,
    *,
    arrival_mode: ArrivalMode = "scenario",
    user_pool: Optional[int] = None,
) -> list[Job]:
    """Generate a workload instance for *scenario*.

    Parameters
    ----------
    scenario:
        Scenario name (see :data:`repro.workloads.scenarios.SCENARIOS`)
        or a :class:`Scenario` object.
    n_jobs:
        Number of jobs to draw.
    seed:
        Seed for the underlying :class:`numpy.random.Generator`; equal
        seeds reproduce identical workloads bit-for-bit.
    arrival_mode:
        ``"scenario"`` uses the scenario's arrival process (Poisson or
        bursty); ``"zero"`` submits everything at ``t = 0`` (paper §3.3).
    user_pool:
        Override the number of distinct users (default: scenario's).

    Returns
    -------
    list[Job]
        Jobs sorted by (submit_time, job_id); ids are 1..n like the
        paper's traces.
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be non-negative, got {n_jobs}")
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    rng = np.random.default_rng(seed)
    pool = user_pool if user_pool is not None else spec.user_pool

    arrivals = (
        AllAtZero() if arrival_mode == "zero" else spec.arrivals
    ).times(rng, n_jobs)

    jobs: list[Job] = []
    for i in range(n_jobs):
        draw = spec.sample(rng, i, n_jobs)
        user_idx = int(rng.integers(0, pool))
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=float(arrivals[i]),
                duration=draw.duration,
                nodes=draw.nodes,
                memory_gb=draw.memory_gb,
                user=f"user_{user_idx}",
                group=f"group_{user_idx % max(pool // 2, 1)}",
                name=f"{spec.name}_{i + 1}",
            )
        )
    return validate_workload(jobs)


def workload_heterogeneity(jobs: Sequence[Job]) -> float:
    """Empirical heterogeneity score in [0, 1] for a job list.

    Combines the coefficients of variation of duration, node count and
    memory demand; used by the simulated-LLM latency model, which the
    paper observes to slow down on diverse queues (§3.7.1). A uniform
    workload scores ~0; the heterogeneous mix scores near 1.
    """
    if len(jobs) < 2:
        return 0.0
    arr = np.array([[j.duration, j.nodes, j.memory_gb] for j in jobs])
    means = arr.mean(axis=0)
    stds = arr.std(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        cvs = np.where(means > 0, stds / means, 0.0)
    # Gamma(1.5, 300) durations have CV ≈ 0.8; saturate around there.
    return float(np.clip(cvs.mean() / 0.8, 0.0, 1.0))
