"""Dependency-structured (DAG) workload generators.

The paper lists "advanced constraint handling for job dependencies" as
future work (§6); this module provides the workload side of that
extension: scientific-workflow-shaped job graphs whose edges are
expressed through :attr:`repro.sim.job.Job.depends_on` and enforced by
the simulator's eligibility tracking.

Three canonical shapes cover most real workflow patterns:

* :func:`chain_workload` — strictly sequential pipelines (e.g.
  simulate → post-process → archive);
* :func:`fork_join_workload` — one setup job fanning out to parallel
  workers that join into a reduce job (bag-of-tasks with barriers);
* :func:`layered_dag_workload` — random layered DAGs with configurable
  fan-in, the standard random-workflow model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.job import Job, validate_dependencies, validate_workload
from repro.workloads.scenarios import Scenario, get_scenario


def _draw_job(
    scenario: Scenario,
    rng: np.random.Generator,
    job_id: int,
    *,
    submit_time: float,
    depends_on: tuple[int, ...],
    user_pool: int,
    index: int,
    total: int,
) -> Job:
    draw = scenario.sample(rng, index, total)
    user_idx = int(rng.integers(0, user_pool))
    return Job(
        job_id=job_id,
        submit_time=submit_time,
        duration=draw.duration,
        nodes=draw.nodes,
        memory_gb=draw.memory_gb,
        user=f"user_{user_idx}",
        group=f"group_{user_idx % max(user_pool // 2, 1)}",
        name=f"{scenario.name}_dag_{job_id}",
        depends_on=depends_on,
    )


def chain_workload(
    n_jobs: int,
    seed: int | np.random.SeedSequence = 0,
    *,
    scenario: str | Scenario = "heterogeneous_mix",
    user_pool: int = 4,
) -> list[Job]:
    """A single sequential pipeline: job *i* depends on job *i − 1*.

    All jobs are submitted at ``t = 0`` (the workflow is known up
    front); only the head is ever eligible, so the schedule serializes
    regardless of policy — the degenerate case dependency handling must
    get right.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be non-negative")
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    rng = np.random.default_rng(seed)
    jobs = [
        _draw_job(
            spec, rng, i + 1,
            submit_time=0.0,
            depends_on=(i,) if i >= 1 else (),
            user_pool=user_pool, index=i, total=n_jobs,
        )
        for i in range(n_jobs)
    ]
    validate_dependencies(jobs)
    return validate_workload(jobs)


def fork_join_workload(
    n_workers: int,
    seed: int | np.random.SeedSequence = 0,
    *,
    scenario: str | Scenario = "resource_sparse",
    user_pool: int = 4,
) -> list[Job]:
    """Fork-join: setup job → *n_workers* parallel jobs → join job.

    Returns ``n_workers + 2`` jobs. The workers all depend on the setup
    job (id 1); the join job depends on every worker.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    rng = np.random.default_rng(seed)
    total = n_workers + 2
    jobs = [
        _draw_job(
            spec, rng, 1, submit_time=0.0, depends_on=(),
            user_pool=user_pool, index=0, total=total,
        )
    ]
    worker_ids = []
    for w in range(n_workers):
        jid = 2 + w
        worker_ids.append(jid)
        jobs.append(
            _draw_job(
                spec, rng, jid, submit_time=0.0, depends_on=(1,),
                user_pool=user_pool, index=w + 1, total=total,
            )
        )
    jobs.append(
        _draw_job(
            spec, rng, total, submit_time=0.0,
            depends_on=tuple(worker_ids),
            user_pool=user_pool, index=total - 1, total=total,
        )
    )
    validate_dependencies(jobs)
    return validate_workload(jobs)


def layered_dag_workload(
    n_jobs: int,
    seed: int | np.random.SeedSequence = 0,
    *,
    scenario: str | Scenario = "heterogeneous_mix",
    n_layers: int = 4,
    max_fan_in: int = 3,
    edge_prob: float = 0.6,
    user_pool: int = 6,
    arrival_rate: Optional[float] = None,
) -> list[Job]:
    """Random layered DAG: jobs are assigned to layers; each job in
    layer *k* > 0 draws up to ``max_fan_in`` dependencies from layer
    *k − 1* (each with probability ``edge_prob``, at least one forced
    so layers actually order execution).

    Parameters
    ----------
    arrival_rate:
        When given, submissions follow a Poisson process (jobs can
        arrive before their dependencies complete — the simulator holds
        them); when ``None`` everything is submitted at ``t = 0``.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be non-negative")
    if n_layers < 1:
        raise ValueError("n_layers must be at least 1")
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must be in [0, 1]")
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    rng = np.random.default_rng(seed)

    layer_of = np.sort(rng.integers(0, n_layers, size=n_jobs))
    if arrival_rate is not None:
        gaps = rng.exponential(1.0 / arrival_rate, size=n_jobs)
        gaps[0] = 0.0 if n_jobs else gaps
        submits = np.cumsum(gaps)
    else:
        submits = np.zeros(n_jobs)

    ids_by_layer: dict[int, list[int]] = {}
    jobs: list[Job] = []
    for i in range(n_jobs):
        layer = int(layer_of[i])
        jid = i + 1
        deps: tuple[int, ...] = ()
        prev = ids_by_layer.get(layer - 1, [])
        if prev:
            k = int(min(max_fan_in, len(prev)))
            chosen = [
                int(p)
                for p in rng.choice(prev, size=k, replace=False)
                if rng.random() < edge_prob
            ]
            if not chosen:
                chosen = [int(rng.choice(prev))]
            deps = tuple(sorted(chosen))
        jobs.append(
            _draw_job(
                spec, rng, jid,
                submit_time=float(submits[i]),
                depends_on=deps,
                user_pool=user_pool, index=i, total=n_jobs,
            )
        )
        ids_by_layer.setdefault(layer, []).append(jid)

    validate_dependencies(jobs)
    return validate_workload(jobs)


def critical_path_length(jobs: list[Job]) -> float:
    """Length (in seconds of pure compute) of the workload's critical
    path — the lower bound on any schedule's makespan imposed purely by
    the dependency structure."""
    by_id = {j.job_id: j for j in jobs}
    memo: dict[int, float] = {}

    def finish(jid: int) -> float:
        if jid in memo:
            return memo[jid]
        job = by_id[jid]
        start = max(
            (finish(dep) for dep in job.depends_on), default=0.0
        )
        memo[jid] = start + job.duration
        return memo[jid]

    return max((finish(j.job_id) for j in jobs), default=0.0)
