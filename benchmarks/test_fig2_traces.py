"""Figure 2 — representative ReAct reasoning traces.

Regenerates the qualitative panel of the paper: a multiobjective
StartJob decision, an opportunistic BackfillJob, a resource-blocked
Delay, a closing Stop, and a constraint-violation recovery with
environment feedback appended to the scratchpad.
"""

from repro.experiments.figures import figure2


def test_fig2_reasoning_traces(bench_once):
    samples = bench_once(
        figure2,
        scenario="heterogeneous_mix",
        n_jobs=20,
        model="claude-3.7-sim",
        seed=0,
        hallucination_rate=0.25,
    )

    print()
    for sample in samples:
        print(sample.render())
        print("-" * 60)

    kinds = {s.action.split("(")[0] for s in samples}
    # The four action verbs of §2.2 all appear in one short run.
    assert "StartJob" in kinds
    assert "Delay" in kinds
    assert "Stop" in kinds
    # Every decision carries an interpretable natural-language thought.
    assert all(s.thought for s in samples)
    # The constraint-recovery trace (Fig. 2 bottom-right): a rejected
    # action with environment feedback naming the resource shortfall.
    rejected = [s for s in samples if not s.accepted]
    assert rejected, "expected at least one rejected proposal"
    assert any("cannot be started" in s.feedback for s in rejected)
