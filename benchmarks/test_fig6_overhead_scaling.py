"""Figure 6 — overhead scaling with queue size (Heterogeneous Mix).

Prints the elapsed-time/call-count/latency series for 10–100 jobs and
asserts §3.7.2/§3.7.3: call counts scale linearly with job count for
both models; Claude-sim's total elapsed time grows near-linearly while
O4-Mini-sim grows superlinearly with heavy-tailed outliers; at 100
jobs the gap is several-fold (paper: ~4 000–7 000 s vs ~700 s).
"""


from repro.experiments.figures import figure6
from repro.experiments.report import render_overhead_table

SIZES = [10, 20, 40, 60, 80, 100]


def test_fig6_overhead_scaling(bench_once):
    data = bench_once(figure6, sizes=SIZES, workload_seed=0, scheduler_seed=0)
    print()
    print(
        render_overhead_table(
            data,
            key_label="n_jobs",
            title="Figure 6 — overhead scaling (heterogeneous mix)",
        )
    )

    for model in ("claude-3.7-sim", "o4-mini-sim"):
        placements = [data[n][model].n_accepted_placements for n in SIZES]
        # Linear call scaling: placements == job count at every size.
        assert placements == SIZES, model
        elapsed = [data[n][model].elapsed_s for n in SIZES]
        # Monotonic-ish growth (allow one local dip from stochastic draws).
        dips = sum(1 for a, b in zip(elapsed, elapsed[1:]) if b < a)
        assert dips <= 1, (model, elapsed)

    claude_100 = data[100]["claude-3.7-sim"]
    o4_100 = data[100]["o4-mini-sim"]
    # Several-fold end-to-end gap at 100 jobs.
    assert o4_100.elapsed_s > 3.0 * claude_100.elapsed_s

    # Superlinearity check: o4's per-job cost grows with scale while
    # claude's stays roughly flat.
    o4_per_job_small = data[10]["o4-mini-sim"].elapsed_s / 10
    o4_per_job_large = o4_100.elapsed_s / 100
    assert o4_per_job_large > 1.5 * o4_per_job_small
    claude_per_job_small = data[10]["claude-3.7-sim"].elapsed_s / 10
    claude_per_job_large = claude_100.elapsed_s / 100
    assert claude_per_job_large < 2.5 * claude_per_job_small

    # Deployment-implication summary (§3.7.3).
    print(
        f"\n§3.7.3 summary: at 100 jobs, o4-mini-sim total scheduling time "
        f"{o4_100.elapsed_s:.0f}s vs claude-3.7-sim {claude_100.elapsed_s:.0f}s "
        f"({o4_100.elapsed_s / claude_100.elapsed_s:.1f}x); "
        f"o4 outliers >100s: {o4_100.latency.over_100s}"
    )
