"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these quantify how much each architectural piece
of the ReAct agent contributes:

* scratchpad feedback memory → fewer repeated infeasible proposals;
* constraint enforcement → violations never reach the cluster;
* the backfill action → Long-Job-Dominant wait times;
* annealing iterations → optimizer plan quality;
* fairness weight sweep → the fairness/utilization trade-off surface.
"""

import numpy as np

from repro.core.agent import create_llm_scheduler
from repro.core.profiles import CLAUDE_37_SIM
from repro.metrics.objectives import compute_metrics
from repro.schedulers.optimizer import AnnealingConfig, AnnealingOptimizer
from repro.sim.simulator import HPCSimulator
from repro.workloads.generator import generate_workload


def run(jobs, scheduler):
    result = HPCSimulator(jobs=jobs, scheduler=scheduler).run()
    result.verify_capacity()
    return result


def test_ablation_feedback_memory_prevents_repeats(bench_once):
    """With the scratchpad feedback loop, a rejected job is never
    re-proposed at the same timestep — the §2.4 correction mechanism."""

    def experiment():
        jobs = generate_workload("high_parallelism", 30, seed=0)
        agent = create_llm_scheduler(
            "claude-3.7-sim", seed=0, hallucination_rate=0.5
        )
        result = run(jobs, agent)
        repeats = 0
        rejected_at: dict[float, set[int]] = {}
        for d in result.decisions:
            if d.action.places_job:
                seen = rejected_at.setdefault(d.time, set())
                if not d.accepted:
                    if d.action.job_id in seen:
                        repeats += 1
                    seen.add(d.action.job_id)
        return result, repeats

    result, repeats = bench_once(experiment)
    assert any(not d.accepted for d in result.decisions)  # loop exercised
    assert repeats == 0
    print(f"\nrejected proposals: {len(result.rejected_decisions)}, "
          f"same-timestep repeats: {repeats}")


def test_ablation_constraint_enforcement_blocks_all_violations(bench_once):
    """Even a heavily hallucinating agent never oversubscribes the
    cluster — enforcement, not model quality, carries safety."""

    def experiment():
        jobs = generate_workload("heterogeneous_mix", 40, seed=1)
        agent = create_llm_scheduler(
            "o4-mini-sim", seed=1, hallucination_rate=0.8
        )
        return run(jobs, agent)

    result = bench_once(experiment)
    result.verify_capacity()  # would raise on any violation
    assert len(result.records) == 40
    print(f"\nhallucination stress: {len(result.rejected_decisions)} "
          "rejected proposals, 0 capacity violations")


def test_ablation_annealing_iterations(bench_once):
    """More annealing improves (or at least never worsens) the plan
    objective; the default budget captures most of the benefit."""

    def experiment():
        jobs = generate_workload(
            "heterogeneous_mix", 50, seed=2, arrival_mode="zero"
        )
        makespans = {}
        for iters in (0, 50, 400):
            config = AnnealingConfig(
                base_iterations=iters, per_job_iterations=0,
                max_iterations=iters,
            )
            sched = AnnealingOptimizer(seed=3, config=config)
            makespans[iters] = compute_metrics(run(jobs, sched))["makespan"]
        return makespans

    makespans = bench_once(experiment)
    print(f"\nmakespan by annealing iterations: {makespans}")
    assert makespans[400] <= makespans[0] * 1.001


def test_ablation_fairness_weight_sweep(bench_once):
    """Raising the policy's fairness weight (and lowering its
    starvation patience) trades utilization for wait-time fairness —
    the surface the paper's prompt explicitly asks the model to
    balance."""

    def experiment():
        jobs = generate_workload("heterogeneous_mix", 60, seed=3)
        out = {}
        for label, patience, fairness in (
            ("efficiency-leaning", 50.0, 0.05),
            ("balanced", 0.3, 0.24),
            ("fairness-leaning", 0.15, 0.6),
        ):
            profile = CLAUDE_37_SIM.with_weights(
                fairness=fairness, starvation_patience=patience
            )
            agent = create_llm_scheduler(profile, seed=4)
            report = compute_metrics(run(jobs, agent))
            out[label] = (
                report["wait_fairness"],
                report["node_utilization"],
            )
        return out

    out = bench_once(experiment)
    print("\nfairness weight sweep (wait_fairness, node_utilization):")
    for label, pair in out.items():
        print(f"  {label:20s} fairness={pair[0]:.3f} util={pair[1]:.3f}")
    # Fairness-leaning configuration achieves the best wait fairness.
    assert out["fairness-leaning"][0] >= out["efficiency-leaning"][0]


def test_ablation_scratchpad_window(bench_once):
    """A small scratchpad window does not change scheduling outcomes
    for these queue depths (the policy needs only same-timestep
    feedback), but keeps prompt sizes bounded."""

    def experiment():
        jobs = generate_workload("bursty_idle", 36, seed=5)
        outcomes = {}
        prompts = {}
        for window in (4, None):
            agent = create_llm_scheduler(
                "claude-3.7-sim", seed=6, scratchpad_window=window
            )
            result = run(jobs, agent)
            outcomes[window] = {
                r.job.job_id: r.start_time for r in result.records
            }
            prompts[window] = max(
                c.input_tokens for c in result.extras["llm_calls"]
            )
        return outcomes, prompts

    outcomes, prompts = bench_once(experiment)
    assert outcomes[4] == outcomes[None]
    assert prompts[4] <= prompts[None]
    print(f"\nmax prompt tokens: window=4 → {prompts[4]}, "
          f"unbounded → {prompts[None]}")
