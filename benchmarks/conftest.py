"""Benchmark configuration.

Each benchmark regenerates one paper figure/table end-to-end, prints
the same rows/series the paper reports (run with ``-s`` to see them),
and asserts the qualitative claims — who wins, by roughly what factor.
Experiment drivers run for seconds, so every bench uses
``benchmark.pedantic`` with a single round rather than letting
pytest-benchmark autocalibrate.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
