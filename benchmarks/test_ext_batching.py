"""Extension bench — plan-ahead batching vs. per-decision calls.

Quantifies the §3.7.3 deployment mitigation: how much of the LLM call
overhead does planning k placements per call recover, and what does it
cost in schedule quality?
"""

from repro.core.agent import create_llm_scheduler
from repro.core.batching import create_batched_llm_scheduler
from repro.metrics.objectives import compute_metrics
from repro.sim.simulator import HPCSimulator
from repro.workloads.generator import generate_workload


def test_batching_overhead_reduction(bench_once):
    def experiment():
        jobs = generate_workload("heterogeneous_mix", 60, seed=0)
        rows = {}
        for label, agent in (
            ("per-decision", create_llm_scheduler("o4-mini-sim", seed=0)),
            ("batch=4", create_batched_llm_scheduler(
                "o4-mini-sim", batch_size=4, seed=0)),
            ("batch=8", create_batched_llm_scheduler(
                "o4-mini-sim", batch_size=8, seed=0)),
            ("batch=8+cooldown", create_batched_llm_scheduler(
                "o4-mini-sim", batch_size=8, delay_cooldown_s=300.0,
                seed=0)),
        ):
            result = HPCSimulator(jobs=jobs, scheduler=agent).run()
            result.verify_capacity()
            calls = result.extras["llm_calls"]
            elapsed = sum(c.latency_s for c in calls if c.accepted)
            report = compute_metrics(result)
            rows[label] = (
                len(calls),
                elapsed,
                report["makespan"],
                report["node_utilization"],
            )
        return rows

    rows = bench_once(experiment)
    print(f"\n{'mode':14s} {'calls':>6s} {'elapsed_s':>10s} "
          f"{'makespan':>10s} {'util':>6s}")
    for label, (calls, elapsed, makespan, util) in rows.items():
        print(f"{label:14s} {calls:>6d} {elapsed:>10.0f} "
              f"{makespan:>10.0f} {util:>6.3f}")

    base_calls, base_elapsed, base_makespan, _ = rows["per-decision"]
    b8_calls, b8_elapsed, b8_makespan, _ = rows["batch=8"]
    pc_calls, pc_elapsed, pc_makespan, _ = rows["batch=8+cooldown"]
    # Batching cuts calls and total reasoning latency...
    assert b8_calls < base_calls * 0.9
    assert b8_elapsed < base_elapsed * 0.8
    # ...the periodic (cooldown) mode cuts further...
    assert pc_calls <= b8_calls
    # ...without wrecking schedule quality.
    assert b8_makespan <= base_makespan * 1.2
    assert pc_makespan <= base_makespan * 1.3
