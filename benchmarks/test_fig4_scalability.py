"""Figure 4 — scalability on Heterogeneous Mix, 10 to 100 jobs.

Prints one normalized block per queue size and asserts the paper's
§3.6 claims: small queues show little differentiation; at large scale
the optimizer reaches the highest utilization while the LLM agents
keep a multiobjective balance (strong throughput/utilization *and*
better fairness than the optimizer).
"""

import math

from repro.experiments.figures import figure4
from repro.experiments.report import render_figure4


def test_fig4_scalability(bench_once):
    data = bench_once(
        figure4,
        sizes=[10, 20, 40, 60, 80, 100],
        workload_seed=0,
        scheduler_seed=0,
    )
    print()
    print(render_figure4(data))

    llms = ("claude-3.7-sim", "o4-mini-sim")

    # Small scale (10 jobs): all methods comparable across most
    # objectives (fairness ratios can swing on tiny wait denominators,
    # so the band covers the efficiency metrics the paper points at).
    for sched, metrics in data[10].items():
        for metric in (
            "makespan", "throughput", "node_utilization",
            "memory_utilization", "avg_turnaround_time",
        ):
            value = metrics[metric]
            if math.isnan(value):
                continue
            assert 0.7 <= value <= 1.3, (sched, metric, value)

    # Large scale (100 jobs): differentiation emerges.
    big = data[100]
    # Optimizer posts the top utilization, well above FCFS.
    assert big["ortools_like"]["node_utilization"] > 1.2
    for model in llms:
        # LLMs: strong throughput and utilization...
        assert big[model]["throughput"] > 1.15
        assert big[model]["node_utilization"] > 1.15
        # ...while beating the fairness-blind optimizer on fairness.
        assert (
            big[model]["wait_fairness"]
            > big["ortools_like"]["wait_fairness"]
        )
        # And cutting wait time well below FCFS.
        assert big[model]["avg_wait_time"] < 0.8

    # Heuristics remain largely static: SJF never approaches the
    # optimizer's utilization gains.
    assert big["sjf"]["node_utilization"] < big["ortools_like"]["node_utilization"]
