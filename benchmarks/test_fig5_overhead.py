"""Figure 5 — computational overhead per scenario (60 jobs).

Prints elapsed time, call counts and latency distributions for both
simulated models on every Fig. 3 scenario, restricted to accepted
placements (§3.7.1), and asserts the paper's observations: Claude-sim
is several-fold faster end-to-end with tightly clustered sub-10s call
latencies; O4-Mini-sim shows high variance with >100 s outliers on
complex workloads; call counts track job counts for both.
"""

from repro.experiments.figures import figure5
from repro.experiments.report import render_overhead_table


def test_fig5_overhead_per_scenario(bench_once):
    data = bench_once(figure5, n_jobs=60, workload_seed=0, scheduler_seed=0)
    print()
    print(
        render_overhead_table(
            data,
            key_label="scenario",
            title="Figure 5 — overhead per scenario (60 jobs)",
        )
    )

    speedups = []
    for scenario, per_model in data.items():
        claude = per_model["claude-3.7-sim"]
        o4 = per_model["o4-mini-sim"]
        # Placement counts equal the job count for both models
        # (call-count parity: runtime differences are per-call latency).
        assert claude.n_accepted_placements == 60
        assert o4.n_accepted_placements == 60
        # Claude-sim is faster end-to-end in every scenario.
        assert claude.elapsed_s < o4.elapsed_s, scenario
        speedups.append(o4.elapsed_s / claude.elapsed_s)
        # Claude-sim latencies cluster tightly (p90 ≈ 10s).
        assert claude.latency.p90_s < 15.0, scenario
        assert claude.latency.over_100s == 0, scenario

    # Multi-fold end-to-end advantage (paper: up to ~7×).
    assert max(speedups) > 3.0

    # O4-Mini-sim exhibits >100s outliers somewhere in the suite.
    assert any(
        per_model["o4-mini-sim"].latency.max_s > 100.0
        for per_model in data.values()
    )
