"""Extension bench — on-premise fast reasoning (§6 / §3.7.3).

The paper concludes that cloud-API latency limits real-time deployment
and that "on-premise fast reasoning models are critical to overcome the
computational overhead barriers". This bench quantifies that claim with
the ``onprem-fast-sim`` profile: identical policy to Claude-sim, local
sub-second latencies.
"""

from repro.experiments.figures import figure6
from repro.experiments.report import render_overhead_table

MODELS = ("o4-mini-sim", "claude-3.7-sim", "onprem-fast-sim")


def test_onprem_deployment_viability(bench_once):
    data = bench_once(
        figure6, sizes=[20, 60, 100], models=MODELS, workload_seed=0
    )
    print()
    print(
        render_overhead_table(
            data,
            key_label="n_jobs",
            title="On-prem fast reasoning vs cloud profiles "
            "(heterogeneous mix)",
        )
    )

    for n, per_model in data.items():
        onprem = per_model["onprem-fast-sim"]
        claude = per_model["claude-3.7-sim"]
        o4 = per_model["o4-mini-sim"]
        # Same decision quality channel (placements equal the job count
        # for all three — only the latency changes).
        assert onprem.n_accepted_placements == n
        # Orders of magnitude less scheduling time than the cloud models.
        assert onprem.elapsed_s < claude.elapsed_s / 20
        assert onprem.elapsed_s < o4.elapsed_s / 100

    onprem_100 = data[100]["onprem-fast-sim"]
    # 100 jobs scheduled with ~seconds of total reasoning: the regime
    # the paper calls viable for "increasingly latency sensitive and
    # large-scale HPC applications".
    assert onprem_100.elapsed_s < 60.0
    print(
        f"\n100-job total reasoning time: onprem "
        f"{onprem_100.elapsed_s:.1f}s vs claude "
        f"{data[100]['claude-3.7-sim'].elapsed_s:.0f}s vs o4 "
        f"{data[100]['o4-mini-sim'].elapsed_s:.0f}s"
    )
