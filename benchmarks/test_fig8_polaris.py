"""Figure 8 — evaluation on the Polaris trace substitute.

100 preprocessed jobs on the 560-node × 512 GB partition, assumed idle
at t=0 (§5). Prints the normalized block and asserts the paper's
claims: LLM schedulers substantially improve wait and turnaround time
(comparable to SJF or better), while resource utilization and
throughput stay on par with every baseline.
"""

import math

from repro.experiments.figures import figure8
from repro.experiments.report import render_figure8


def test_fig8_polaris_trace(bench_once):
    data = bench_once(figure8, n_jobs=100, trace_seed=2024, scheduler_seed=0)
    print()
    print(render_figure8(data))

    llms = ("claude-3.7-sim", "o4-mini-sim")
    for model in llms:
        metrics = data[model]
        # Substantial wait/turnaround improvement over FCFS...
        assert metrics["avg_wait_time"] < 0.95
        assert metrics["avg_turnaround_time"] <= 1.0
        # ...at least comparable to (not far behind) SJF.
        assert metrics["avg_wait_time"] <= data["sjf"]["avg_wait_time"] * 1.2
        # System efficiency preserved: utilization and throughput on
        # par with the baselines (±10%).
        for metric in ("node_utilization", "memory_utilization", "throughput"):
            assert 0.9 <= metrics[metric] <= 1.15, (model, metric)

    # Every scheduler preserves makespan within a few percent (the
    # trace's span is arrival-dominated).
    for sched, metrics in data.items():
        if not math.isnan(metrics["makespan"]):
            assert 0.9 <= metrics["makespan"] <= 1.1, sched
