"""Figure 7 — statistical robustness over 5 repetitions.

Heterogeneous Mix with 100 jobs, 5 independent runs per method,
normalized to FCFS. Prints box-plot statistics per scheduler × metric
and asserts §4: deterministic heuristics are flat; LLM agents show
tight variance bounds with consistent improvements; no LLM outliers on
the negative metrics.
"""

from repro.experiments.figures import figure7
from repro.experiments.report import render_figure7

NEGATIVE_METRICS = ("makespan", "avg_wait_time", "avg_turnaround_time")


def test_fig7_robustness(bench_once):
    data = bench_once(figure7, n_jobs=100, n_repeats=5, workload_seed=0)
    print()
    print(render_figure7(data))

    # FCFS and SJF are deterministic → zero spread on every metric.
    for name in ("fcfs", "sjf"):
        for metric, bs in data[name].items():
            assert bs.iqr == 0.0, (name, metric)
            assert bs.whisker_lo == bs.whisker_hi

    for model in ("claude-3.7-sim", "o4-mini-sim"):
        stats = data[model]
        # Tight variance bounds across repetitions (relative IQR).
        for metric in ("makespan", "throughput", "node_utilization"):
            bs = stats[metric]
            assert bs.iqr <= 0.15 * max(abs(bs.median), 1e-9), (model, metric)
        # Consistent improvements over FCFS on the latency metrics.
        assert stats["avg_wait_time"].median < 0.9
        assert stats["avg_turnaround_time"].median < 0.9
        # No outliers on negative metrics (paper: "no significant
        # outliers ... suggesting robustness of the ReAct framework").
        for metric in NEGATIVE_METRICS:
            assert len(stats[metric].outliers) <= 1, (model, metric)
