"""Scaling benchmarks: simulator hot path + parallel experiment engine.

Two claims are tracked here:

1. Per-decision simulator cost no longer scans every job. The decision
   loop used to recompute the next arrival with an O(n) pass over the
   whole workload, making long-arrival-tail sweeps O(n²); it now reads
   a pre-sorted arrival cursor. On a workload whose queue stays tiny
   while thousands of arrivals are pending, per-decision cost must be
   (near-)flat in workload size — an 8× larger workload may not cost
   more than ~3× per decision (the old scan trended toward 8×).

2. ``run_matrix_parallel`` converts cores into wall-clock speedup:
   >2× at 4 workers on a ≥4-core machine (skipped on smaller runners —
   a 1-core container cannot demonstrate parallelism).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.parallel import run_matrix_parallel
from repro.sim.job import Job
from repro.sim.simulator import simulate
from repro.schedulers.registry import create_scheduler


def spread_arrivals(n_jobs: int) -> list[Job]:
    """A long arrival tail: inter-arrival > duration, so at every
    decision the queue holds ~1 job while ~n arrivals are pending —
    exactly the regime where the old per-decision full scan was O(n)."""
    return [
        Job(
            job_id=i,
            submit_time=10.0 * i,
            duration=5.0,
            nodes=1,
            memory_gb=4.0,
            user=f"user_{i % 7}",
        )
        for i in range(n_jobs)
    ]


def per_decision_seconds(n_jobs: int, repeats: int = 3) -> tuple[float, int]:
    """Best-of-*repeats* per-decision cost (minimum is the standard
    noise-robust estimator for micro-timings on shared runners)."""
    best = float("inf")
    n_decisions = 0
    for _ in range(repeats):
        jobs = spread_arrivals(n_jobs)
        scheduler = create_scheduler("fcfs")
        start = time.perf_counter()
        result = simulate(jobs, scheduler)
        elapsed = time.perf_counter() - start
        assert len(result.records) == n_jobs
        n_decisions = len(result.decisions)
        best = min(best, elapsed / n_decisions)
    return best, n_decisions


class TestHotPath:
    def test_per_decision_cost_flat_in_workload_size(self):
        # Warm caches/allocator once before timing.
        per_decision_seconds(50)

        small, n_small = per_decision_seconds(250)
        big, n_big = per_decision_seconds(2000)
        print(
            f"\nper-decision: {small * 1e6:.1f} us at 250 jobs "
            f"({n_small} decisions), {big * 1e6:.1f} us at 2000 jobs "
            f"({n_big} decisions), ratio {big / small:.2f}x"
        )
        # 8x the jobs must not cost ~8x per decision. The pre-fix
        # full-job scan measured ~5x on this workload; the cursor
        # version stays near 1x. 3x leaves room for timer noise.
        assert big / small < 3.0, (
            f"per-decision cost grew {big / small:.1f}x from 250 to 2000 "
            "jobs — the next-arrival scan has regressed to O(n)"
        )

    def test_2000_job_sweep_finishes_quickly(self):
        # Absolute guardrail for the 2000-job workload of the
        # acceptance criteria: the whole simulation is sub-second on
        # any modern core once the hot path is O(log n).
        start = time.perf_counter()
        jobs = spread_arrivals(2000)
        result = simulate(jobs, create_scheduler("fcfs"))
        elapsed = time.perf_counter() - start
        print(f"\n2000-job spread-arrival sweep: {elapsed:.3f}s")
        assert len(result.records) == 2000
        assert elapsed < 5.0


class TestParallelSpeedup:
    SCENARIOS = ("heterogeneous_mix",)
    SIZES = (400,)
    SCHEDULERS = ("fcfs", "sjf")
    SEEDS = tuple(range(4))  # 1 × 1 × 2 × 4 = 8 cells

    def _measure(self) -> tuple[float, list, list]:
        kwargs = dict(workload_seeds=self.SEEDS)

        start = time.perf_counter()
        serial = run_matrix_parallel(
            self.SCENARIOS, self.SIZES, self.SCHEDULERS,
            workers=1, **kwargs,
        )
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        parallel = run_matrix_parallel(
            self.SCENARIOS, self.SIZES, self.SCHEDULERS,
            workers=4, **kwargs,
        )
        parallel_s = time.perf_counter() - start

        speedup = serial_s / parallel_s
        print(
            f"\n{len(serial)} cells: serial {serial_s:.2f}s, "
            f"4 workers {parallel_s:.2f}s, speedup {speedup:.2f}x"
        )
        return speedup, serial, parallel

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup needs >= 4 cores",
    )
    def test_speedup_at_four_workers(self):
        speedup, serial, parallel = self._measure()
        # Determinism survives the pool.
        assert [r.values for r in serial] == [r.values for r in parallel]
        if speedup <= 2.0:
            # One retry absorbs transient scheduler jitter on shared
            # CI runners; a genuinely serial engine still fails twice.
            speedup, _, _ = self._measure()
        assert speedup > 2.0, (
            f"expected >2x speedup at 4 workers, measured {speedup:.2f}x"
        )
