"""Figure 3 — normalized metrics across six scenarios, 60 jobs each.

Prints one normalized block per scenario (FCFS = 1.0) and asserts the
paper's qualitative observations (§3.5):

* Long-Job-Dominant: heuristics suffer the convoy effect; the LLM
  agents and the optimizer cut wait/turnaround times well below FCFS.
* High Parallelism: optimization- and reasoning-based packing achieve
  the highest utilization/throughput; heuristics trail.
* Adversarial and Homogeneous-Short/Resource-Sparse: flattened
  differences — every method performs nearly identically.
"""

import math

from repro.experiments.figures import figure3
from repro.experiments.report import render_figure3


def test_fig3_six_scenarios(bench_once):
    data = bench_once(figure3, n_jobs=60, workload_seed=0, scheduler_seed=0)
    print()
    print(render_figure3(data))

    llms = ("claude-3.7-sim", "o4-mini-sim")

    # Long-Job-Dominant: LLMs dramatically reduce wait & turnaround.
    ljd = data["long_job_dominant"]
    for model in llms:
        assert ljd[model]["avg_wait_time"] < 0.8
        assert ljd[model]["avg_turnaround_time"] < 0.8

    # High Parallelism: optimizer and LLMs at or above FCFS utilization.
    hp = data["high_parallelism"]
    assert hp["ortools_like"]["node_utilization"] >= 0.99
    for model in llms:
        assert hp[model]["node_utilization"] >= 0.95

    # Adversarial: flattened differences (all within a few percent).
    adv = data["adversarial"]
    for sched, metrics in adv.items():
        for metric, value in metrics.items():
            if math.isnan(value):
                continue
            assert 0.9 <= value <= 1.1, (sched, metric, value)

    # Homogeneous Short / Resource Sparse: near-uniform performance.
    for scenario in ("homogeneous_short", "resource_sparse"):
        for sched, metrics in data[scenario].items():
            for metric, value in metrics.items():
                if math.isnan(value):
                    continue
                assert 0.8 <= value <= 1.25, (scenario, sched, metric, value)
