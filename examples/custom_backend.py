#!/usr/bin/env python
"""Plugging a custom LLM backend into the ReAct agent.

The agent's model layer is the :class:`repro.core.backends.LLMBackend`
protocol: anything that maps a rendered prompt to ReAct text works —
the simulated profiles shipped with this library, a real API client,
or, as here, a tiny hand-written "greedy-shortest" model. The prompt
construction, scratchpad memory, action parsing and constraint
enforcement all stay identical, which is exactly the paper's
separation of reasoning from enforcement (§2.4).

Run:  python examples/custom_backend.py
"""

from repro import compute_metrics, create_scheduler, generate_workload, simulate
from repro.core import ReActSchedulingAgent
from repro.core.backends import LLMReply
from repro.core.prompt import PromptContext, estimate_tokens
from repro.sim.actions import BackfillJob, Delay, StartJob, Stop


class GreedyShortestBackend:
    """A minimal hand-rolled 'model': always run the shortest feasible
    job, with a one-line thought. Ignores fairness entirely — compare
    its metrics against the shipped multiobjective profiles."""

    name = "greedy-shortest"

    def reset(self) -> None:  # no internal state
        pass

    def complete(self, prompt: str, context: PromptContext) -> LLMReply:
        view = context.view
        if view.all_jobs_scheduled:
            text = "Thought: every job has been scheduled.\nAction: Stop"
        else:
            feasible = view.feasible_jobs()
            if not feasible:
                text = (
                    "Thought: nothing fits the free resources; waiting for "
                    "a completion.\nAction: Delay"
                )
            else:
                pick = min(feasible, key=lambda j: (j.walltime, j.job_id))
                verb = (
                    StartJob(pick.job_id)
                    if pick.job_id == view.queued[0].job_id
                    else BackfillJob(pick.job_id)
                )
                text = (
                    f"Thought: Job {pick.job_id} is the shortest feasible "
                    f"job (walltime={pick.walltime:g}s); finishing it first "
                    f"maximizes throughput.\nAction: {verb.render()}"
                )
        return LLMReply(
            text=text,
            latency_s=0.05,  # hand-written rules are fast
            input_tokens=estimate_tokens(prompt),
            output_tokens=estimate_tokens(text),
        )


def main() -> None:
    jobs = generate_workload("heterogeneous_mix", 40, seed=3)

    custom = ReActSchedulingAgent(GreedyShortestBackend())
    shipped = create_scheduler("claude-3.7-sim", seed=3)

    print(f"{'agent':18s} {'wait':>8s} {'fairness':>9s} {'util':>7s} "
          f"{'makespan':>9s}")
    for agent in (custom, shipped):
        result = simulate(jobs, agent)
        result.verify_capacity()
        report = compute_metrics(result)
        print(
            f"{agent.name:18s} {report['avg_wait_time']:>7.0f}s "
            f"{report['wait_fairness']:>9.3f} "
            f"{report['node_utilization']:>7.3f} "
            f"{report['makespan']:>8.0f}s"
        )

    print(
        "\nThe greedy backend minimizes waits for small jobs but ignores "
        "the prompt's fairness objective; the shipped multiobjective "
        "profile trades a little throughput for a fairer wait "
        "distribution — the balance the paper evaluates."
    )


if __name__ == "__main__":
    main()
