#!/usr/bin/env python
"""Quickstart: schedule one workload with the LLM agent vs. baselines.

Generates a 30-job Heterogeneous Mix instance (paper §3.1), runs FCFS,
SJF, the optimization baseline and the Claude-3.7-sim ReAct agent on
the identical instance, and prints every §3.2 objective normalized to
FCFS, plus the agent's first reasoning trace.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_metrics,
    create_scheduler,
    generate_workload,
    normalize_to_baseline,
    simulate,
)
from repro.experiments.report import render_normalized_block

N_JOBS = 30
SEED = 7


def main() -> None:
    jobs = generate_workload("heterogeneous_mix", N_JOBS, seed=SEED)
    print(f"Workload: heterogeneous_mix, {N_JOBS} jobs, "
          f"{len({j.user for j in jobs})} users, "
          f"first arrival t={jobs[0].submit_time:g}s, "
          f"last t={jobs[-1].submit_time:.0f}s")

    results = {}
    for name in ("fcfs", "sjf", "ortools_like", "claude-3.7-sim"):
        result = simulate(jobs, create_scheduler(name, seed=SEED))
        result.verify_capacity()
        results[name] = result

    baseline = compute_metrics(results["fcfs"]).values
    block = {
        name: normalize_to_baseline(compute_metrics(res).values, baseline)
        for name, res in results.items()
    }
    print()
    print(render_normalized_block(block, f"heterogeneous_mix, {N_JOBS} jobs"))

    # Peek at the agent's interpretable reasoning (paper Fig. 2).
    agent_result = results["claude-3.7-sim"]
    first = agent_result.decisions[0]
    print("\nFirst LLM decision:")
    print(f"  Action: {first.action.render()}  "
          f"(virtual latency {first.meta['latency_s']:.1f}s)")
    print("  Thought:")
    for line in str(first.meta["thought"]).splitlines():
        print(f"    {line}")

    calls = agent_result.extras["llm_calls"]
    placed = [c for c in calls if c.accepted and c.is_placement]
    print(f"\nLLM overhead: {len(calls)} calls, "
          f"{sum(c.latency_s for c in placed):.0f}s total virtual "
          f"scheduling time over {len(placed)} accepted placements")


if __name__ == "__main__":
    main()
