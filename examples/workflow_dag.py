#!/usr/bin/env python
"""Scheduling dependency-structured workflows (paper §6 future work).

Builds a layered random DAG workload (a scientific-workflow shape:
setup layers feeding compute layers feeding reduction layers), runs it
through FCFS and the LLM agent, and shows:

* the simulator holding jobs until their dependencies complete,
* the makespan lower bound imposed by the critical path,
* an ASCII Gantt chart of the resulting schedule,
* the energy cost difference between the two schedules.

Run:  python examples/workflow_dag.py
"""

from repro import compute_metrics, create_scheduler, simulate
from repro.analysis.gantt import render_gantt, utilization_sparkline
from repro.metrics.energy import compare_energy
from repro.workloads.dags import critical_path_length, layered_dag_workload


def main() -> None:
    jobs = layered_dag_workload(
        24, seed=5, scenario="heterogeneous_mix", n_layers=4, max_fan_in=2
    )
    n_edges = sum(len(j.depends_on) for j in jobs)
    cp = critical_path_length(jobs)
    print(
        f"Workflow: {len(jobs)} jobs, {n_edges} dependency edges, "
        f"critical path {cp:.0f}s (makespan lower bound)\n"
    )

    results = {}
    for name in ("fcfs", "claude-3.7-sim"):
        result = simulate(jobs, create_scheduler(name, seed=0))
        result.verify_capacity()
        results[name] = result
        report = compute_metrics(result)
        print(
            f"{name:16s} makespan {report['makespan']:>8.0f}s "
            f"(≥ {cp:.0f}s critical path)  "
            f"util {report['node_utilization']:.3f}  "
            f"wait {report['avg_wait_time']:.0f}s"
        )

    print("\nLLM agent schedule (dots = waiting on queue/dependencies):")
    print(render_gantt(results["claude-3.7-sim"], width=64, max_jobs=24))
    print(utilization_sparkline(results["claude-3.7-sim"], width=64))

    energy = compare_energy(results)
    print("\nEnergy (§6 energy-aware extension):")
    for name, report in energy.items():
        print(
            f"  {name:16s} total {report.total_kwh:8.1f} kWh "
            f"(idle fraction {report.idle_fraction:.1%})"
        )


if __name__ == "__main__":
    main()
