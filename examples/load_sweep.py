#!/usr/bin/env python
"""Load sweep: when does reasoning-based scheduling start to pay?

The paper's flat scenarios (Resource Sparse, Homogeneous Short) and its
scalability analysis both say the same thing: scheduling intelligence
only matters under contention. This example makes that explicit by
sweeping *offered load* — compressing the same Heterogeneous Mix
instance's arrival times — and tracking the LLM agent's advantage over
FCFS, plus a paired cross-seed significance check at the highest load.

Run:  python examples/load_sweep.py
"""

from repro import compute_metrics, create_scheduler, simulate
from repro.analysis.significance import compare_schedulers, render_comparison
from repro.analysis.workload_stats import characterize
from repro.metrics import normalize_to_baseline
from repro.workloads.generator import generate_workload
from repro.workloads.transforms import with_scaled_arrivals

N_JOBS = 40
SEED = 9


def main() -> None:
    base_jobs = generate_workload("heterogeneous_mix", N_JOBS, seed=SEED)

    print(f"{'arrival scale':>13s} {'offered load':>13s} "
          f"{'LLM wait vs FCFS':>17s} {'LLM util vs FCFS':>17s}")
    for factor in (4.0, 2.0, 1.0, 0.5, 0.25):
        jobs = with_scaled_arrivals(base_jobs, factor)
        stats = characterize(jobs)
        fcfs = compute_metrics(simulate(jobs, create_scheduler("fcfs")))
        llm = compute_metrics(
            simulate(jobs, create_scheduler("claude-3.7-sim", seed=0))
        )
        norm = normalize_to_baseline(llm.values, fcfs.values)
        wait = norm["avg_wait_time"]
        wait_text = "—   " if wait != wait else f"{wait:.3f}"  # NaN: no waits
        print(
            f"{factor:>13.2f} {stats.offered_load:>13.2f} "
            f"{wait_text:>17s} {norm['node_utilization']:>17.3f}"
        )

    print(
        "\nReading: at low offered load every job starts on arrival and "
        "all schedulers coincide (the paper's flat scenarios); as load "
        "crosses ~1.0, queues form and the reasoning agent's wait/"
        "utilization advantage opens up (the paper's Fig. 4 trend).\n"
    )

    print("Cross-seed check at 4x compression (paired Wilcoxon, 6 seeds):")
    comps = compare_schedulers(
        "heterogeneous_mix", N_JOBS, "claude-3.7-sim", "fcfs",
        n_seeds=6, metrics=("avg_wait_time", "node_utilization"),
    )
    print(render_comparison(comps, "claude-3.7-sim", "fcfs"))


if __name__ == "__main__":
    main()
