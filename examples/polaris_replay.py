#!/usr/bin/env python
"""Replay a (synthetic) Polaris trace through every scheduler (paper §5).

Pipeline, exactly as the paper describes:

1. take a raw job-history segment (here: the statistical Polaris
   substitute — 560 nodes × 512 GB, PBS-shaped records with failures);
2. preprocess it — drop EXIT_STATUS = -1 jobs, sort by submission,
   normalize timestamps, factorize users/groups, derive memory as
   512 GB × nodes;
3. save/reload the cleaned trace as CSV (the artifact you would
   publish for reproducibility);
4. evaluate FCFS, SJF, the optimizer and both LLM agents on the
   assumed-idle partition and print normalized metrics.

Run:  python examples/polaris_replay.py
"""

import tempfile
from pathlib import Path

from repro import compute_metrics, create_scheduler, normalize_to_baseline
from repro.experiments.report import render_normalized_block
from repro.sim.cluster import ResourcePool
from repro.sim.simulator import HPCSimulator
from repro.workloads.polaris import (
    POLARIS_MEMORY_PER_NODE_GB,
    POLARIS_NODES,
    preprocess_trace,
    synthesize_polaris_trace,
)
from repro.workloads.traceio import jobs_from_csv, jobs_to_csv

N_JOBS = 100
TRACE_SEED = 2024


def main() -> None:
    raw = synthesize_polaris_trace(n_jobs=130, seed=TRACE_SEED)
    failed = sum(1 for r in raw if r.exit_status == -1)
    print(f"Raw trace: {len(raw)} records, {failed} failed (filtered)")

    jobs = preprocess_trace(raw, n_jobs=N_JOBS)
    users = {j.user for j in jobs}
    print(
        f"Preprocessed: {len(jobs)} jobs, {len(users)} anonymized users, "
        f"node range {min(j.nodes for j in jobs)}-"
        f"{max(j.nodes for j in jobs)}, memory = 512 GB x nodes"
    )

    # Publishable artifact: save and reload the cleaned trace.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "polaris_100.csv"
        jobs_to_csv(jobs, path)
        jobs = jobs_from_csv(path)
        print(f"Trace round-tripped through {path.name} "
              f"({path.stat().st_size} bytes)\n")

    results = {}
    for name in ("fcfs", "sjf", "ortools_like", "claude-3.7-sim", "o4-mini-sim"):
        sim = HPCSimulator(
            jobs=jobs,
            scheduler=create_scheduler(name, seed=0),
            cluster=ResourcePool(
                total_nodes=POLARIS_NODES,
                total_memory_gb=POLARIS_NODES * POLARIS_MEMORY_PER_NODE_GB,
            ),
        )
        result = sim.run()
        result.verify_capacity()
        results[name] = compute_metrics(result).values

    block = {
        name: normalize_to_baseline(values, results["fcfs"])
        for name, values in results.items()
    }
    print(
        render_normalized_block(
            block,
            f"Polaris trace, {N_JOBS} jobs, {POLARIS_NODES} nodes x "
            f"{POLARIS_MEMORY_PER_NODE_GB:g} GB, assumed idle at t=0",
        )
    )
    print(
        "\nNote: as in the paper, the idle-start assumption makes this a "
        "generalization check, not a comparison against the real Polaris "
        "scheduler."
    )


if __name__ == "__main__":
    main()
