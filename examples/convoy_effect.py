#!/usr/bin/env python
"""Convoy effect study: Long-Job-Dominant scheduling (paper §3.1/§3.5).

The Long-Job-Dominant scenario mixes 20% extremely long 128-node jobs
with many short 2-node jobs. A strict FCFS queue lets one long job at
the head block everything behind it (the *convoy effect*); backfilling
and reasoning-based scheduling dodge it.

This example runs FCFS, EASY backfilling, SJF and both simulated LLM
agents on the same instance and reports the wait-time distribution of
the short jobs — the users who actually feel the convoy.

Run:  python examples/convoy_effect.py
"""

import numpy as np

from repro import create_scheduler, generate_workload, simulate

N_JOBS = 60
SEED = 11
SCHEDULERS = ("fcfs", "fcfs_backfill", "sjf", "claude-3.7-sim", "o4-mini-sim")


def main() -> None:
    jobs = generate_workload("long_job_dominant", N_JOBS, seed=SEED)
    long_ids = {j.job_id for j in jobs if j.duration >= 50_000.0}
    short_ids = {j.job_id for j in jobs} - long_ids
    print(
        f"Long-Job-Dominant: {len(long_ids)} convoy-forming jobs "
        f"(50000s × 128 nodes) among {len(short_ids)} short jobs "
        f"(500s × 2 nodes)\n"
    )

    header = (
        f"{'scheduler':16s} {'short-job wait: mean':>22s} {'median':>10s} "
        f"{'p95':>10s} {'long-job wait mean':>20s}"
    )
    print(header)
    print("-" * len(header))
    for name in SCHEDULERS:
        result = simulate(jobs, create_scheduler(name, seed=SEED))
        result.verify_capacity()
        short_waits = np.array(
            [
                r.wait_time
                for r in result.records
                if r.job.job_id in short_ids
            ]
        )
        long_waits = np.array(
            [r.wait_time for r in result.records if r.job.job_id in long_ids]
        )
        print(
            f"{name:16s} {short_waits.mean():>20.0f}s "
            f"{np.median(short_waits):>9.0f}s "
            f"{np.percentile(short_waits, 95):>9.0f}s "
            f"{long_waits.mean():>19.0f}s"
        )

    print(
        "\nReading: FCFS short jobs queue behind long-running 128-node "
        "jobs; backfilling and the LLM agents start them opportunistically "
        "while preserving the long jobs' progress (paper Fig. 3, "
        "Long Job Dominant panel)."
    )


if __name__ == "__main__":
    main()
