#!/usr/bin/env python
"""Interpretability: full ReAct reasoning traces (paper Fig. 2).

Runs the simulated Claude-3.7 agent on a contended workload with an
elevated infeasible-proposal rate so every panel of the paper's
Figure 2 shows up in one run:

* a multiobjective StartJob decision with explicit trade-off analysis,
* an opportunistic BackfillJob,
* a Delay when nothing fits (naming the next expected completion),
* a rejected proposal with the environment's natural-language feedback
  appended to the scratchpad, followed by the corrected decision,
* the closing Stop.

Run:  python examples/interpretability_traces.py
"""

from repro.experiments.figures import figure2


def main() -> None:
    samples = figure2(
        scenario="heterogeneous_mix",
        n_jobs=20,
        model="claude-3.7-sim",
        seed=0,
        hallucination_rate=0.25,
    )
    for sample in samples:
        print(sample.render())
        print("=" * 70)
    print(
        f"{len(samples)} distinct decision kinds captured. Every "
        "scheduling choice above is explained in natural language — the "
        "transparency the paper argues is critical for HPC operations."
    )


if __name__ == "__main__":
    main()
