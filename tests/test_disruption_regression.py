"""Pinning tests for the disruption subsystem's two contracts.

1. **Zero-disruption identity**: with no trace (or an empty one), every
   scheduler produces schedules, decisions, and objective floats
   exactly equal to the legacy engine — the subsystem is invisible
   when unused.
2. **Disrupted determinism**: a seeded failure/drain trace is
   bit-reproducible across repeated runs, and serial vs. parallel
   matrix execution of disrupted cells yields identical metrics.
"""

import pytest

from repro.experiments.parallel import expand_cells, run_cells
from repro.experiments.runner import run_single
from repro.metrics.objectives import compute_metrics
from repro.schedulers.registry import create_scheduler
from repro.sim.disruptions import DisruptionSpec, DisruptionTrace
from repro.sim.simulator import HPCSimulator
from repro.workloads.generator import generate_workload

SCHEDULERS = (
    "fcfs",
    "fcfs_backfill",
    "sjf",
    "first_fit",
    "largest_first",
    "ortools_like",
    "genetic",
    "random",
)

HOSTILE = DisruptionSpec(
    mtbf=60_000.0,
    mttr=800.0,
    drain_every=6_000.0,
    drain_duration=1_000.0,
    drain_nodes=48,
    drain_lead=1_500.0,
    drain_first=2_000.0,
    seed=5,
)


def run_with(scheduler_name, jobs, **sim_kwargs):
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=create_scheduler(scheduler_name, seed=0),
        **sim_kwargs,
    )
    return sim.run()


class TestZeroDisruptionIdentity:
    """Empty trace ⇒ byte-identical to no trace at all."""

    @pytest.mark.parametrize("scheduler_name", SCHEDULERS)
    def test_schedules_and_objectives_identical(self, scheduler_name):
        jobs = generate_workload("heterogeneous_mix", 40, seed=3)
        legacy = run_with(scheduler_name, jobs)
        gated = run_with(
            scheduler_name, jobs, disruptions=DisruptionTrace()
        )
        # Full structural equality: every record and every decision
        # (including rejection violations and meta) must match.
        assert legacy.records == gated.records
        assert legacy.decisions == gated.decisions
        assert not gated.disrupted and not gated.preemptions
        # Objective floats exactly equal — no epsilon.
        assert (
            compute_metrics(legacy).as_dict()
            == compute_metrics(gated).as_dict()
        )

    def test_no_disruption_metrics_leak_into_clean_runs(self):
        jobs = generate_workload("resource_sparse", 20, seed=0)
        result = run_with("fcfs", jobs, disruptions=DisruptionTrace())
        values = compute_metrics(result).as_dict()
        assert "goodput_node_hours" not in values
        assert set(values) == {
            "makespan", "avg_wait_time", "avg_turnaround_time",
            "throughput", "node_utilization", "memory_utilization",
            "wait_fairness", "user_fairness",
        }

    def test_restart_policy_alone_changes_nothing(self):
        jobs = generate_workload("adversarial", 25, seed=1)
        legacy = run_with("fcfs_backfill", jobs)
        gated = run_with(
            "fcfs_backfill", jobs,
            disruptions=DisruptionTrace(),
            restart_policy="preempt_migrate",
        )
        assert legacy.records == gated.records
        assert legacy.decisions == gated.decisions


class TestDisruptedDeterminism:
    @pytest.mark.parametrize(
        "scheduler_name", ["fcfs", "fcfs_backfill", "ortools_like"]
    )
    def test_bit_reproducible_across_runs(self, scheduler_name):
        def one():
            return run_single(
                "drain_window", 30, scheduler_name,
                workload_seed=2,
                disruptions=HOSTILE,
                restart_policy="checkpoint",
                checkpoint_interval=400.0,
            )

        a, b = one(), one()
        assert a.result.records == b.result.records
        assert a.result.decisions == b.result.decisions
        assert [
            (p.job_id, p.time, p.reason, p.work_saved, p.work_lost)
            for p in a.result.preemptions
        ] == [
            (p.job_id, p.time, p.reason, p.work_saved, p.work_lost)
            for p in b.result.preemptions
        ]
        assert a.metrics.as_dict() == b.metrics.as_dict()
        assert a.key == b.key

    def test_serial_vs_parallel_matrix_identical(self, tmp_path):
        cells = expand_cells(
            ("drain_window",),
            (15,),
            ("fcfs", "fcfs_backfill"),
            workload_seeds=(0, 1),
            disruptions=HOSTILE,
            restart_policy="checkpoint",
            checkpoint_interval=400.0,
        )
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=2)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert s.key == p.key
            assert s.metrics.as_dict() == p.metrics.as_dict()
            assert len(s.result.preemptions) == len(p.result.preemptions)

    def test_disruption_regime_is_part_of_cell_identity(self):
        clean = run_single("drain_window", 10, "fcfs", workload_seed=0)
        disrupted = run_single(
            "drain_window", 10, "fcfs", workload_seed=0,
            disruptions=HOSTILE,
            restart_policy="checkpoint", checkpoint_interval=400.0,
        )
        assert clean.key != disrupted.key
        assert clean.disruption_sig == "none"
        assert disrupted.disruption_sig != "none"


class TestStoreRoundTrip:
    def test_disruption_columns_round_trip(self, tmp_path):
        from repro.experiments.store import RunStore, StoredRun

        run = run_single(
            "drain_window", 12, "fcfs_backfill",
            workload_seed=0,
            disruptions=HOSTILE,
            restart_policy="checkpoint", checkpoint_interval=400.0,
        )
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(run)
        (loaded,) = store.load()
        assert loaded.key == run.key
        assert loaded.disruption_sig == run.disruption_sig
        assert loaded.disruption is not None
        assert loaded.disruption["restart_policy"] == "checkpoint"
        assert loaded.disruption["checkpoint_interval"] == 400.0
        assert loaded.disruption["spec"]["mtbf"] == HOSTILE.mtbf
        assert "n_preemptions" in loaded.disruption
        # Reliability objectives persisted alongside the §3.2 metrics.
        assert "goodput_node_hours" in loaded.metrics
        # And a JSON round-trip of the line itself is stable.
        assert StoredRun.from_json(loaded.to_json()) == loaded

    def test_resume_distinguishes_disruption_regimes(self, tmp_path):
        from repro.experiments.store import RunStore

        store = RunStore(tmp_path / "runs.jsonl")
        clean_cells = expand_cells(("drain_window",), (8,), ("fcfs",))
        run_cells(clean_cells, workers=1, store=store)
        disrupted_cells = expand_cells(
            ("drain_window",), (8,), ("fcfs",),
            disruptions=HOSTILE,
            restart_policy="checkpoint",
            checkpoint_interval=400.0,
        )
        # The clean cell in the store must NOT satisfy the disrupted
        # cell on resume.
        executed = run_cells(
            disrupted_cells, workers=1, store=store, resume=True
        )
        assert len(executed) == 1
        assert len(store.load()) == 2
