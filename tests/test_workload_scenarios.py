"""Unit tests for the seven paper scenarios."""

import numpy as np
import pytest

from repro.workloads.scenarios import (
    CLUSTER_MEMORY_GB,
    CLUSTER_NODES,
    FAILURE_SCENARIOS,
    FIGURE3_SCENARIOS,
    PAPER_JOB_COUNTS,
    PAPER_SCENARIOS,
    SCENARIOS,
    get_scenario,
)


class TestRegistry:
    def test_seven_paper_scenarios(self):
        assert len(PAPER_SCENARIOS) == 7
        assert all(name in SCENARIOS for name in PAPER_SCENARIOS)

    def test_paper_names_present(self):
        expected = {
            "homogeneous_short",
            "heterogeneous_mix",
            "long_job_dominant",
            "high_parallelism",
            "resource_sparse",
            "bursty_idle",
            "adversarial",
        }
        assert set(PAPER_SCENARIOS) == expected
        assert expected <= set(SCENARIOS)

    def test_failure_scenarios_registered(self):
        assert set(FAILURE_SCENARIOS) == {
            "checkpoint_stress",
            "drain_window",
            "rack_storm",
            "switch_outage",
        }
        assert all(name in SCENARIOS for name in FAILURE_SCENARIOS)
        # The disruption additions never displace a paper scenario.
        assert set(FAILURE_SCENARIOS).isdisjoint(PAPER_SCENARIOS)

    def test_figure3_excludes_heterogeneous_mix(self):
        assert "heterogeneous_mix" not in FIGURE3_SCENARIOS
        assert len(FIGURE3_SCENARIOS) == 6

    def test_paper_job_counts(self):
        assert PAPER_JOB_COUNTS == (10, 20, 40, 60, 80, 100)

    def test_get_scenario_error(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_get_scenario_lookup(self):
        assert get_scenario("adversarial").name == "adversarial"


class TestSamplers:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_draws_within_capacity(self, name, rng):
        scenario = SCENARIOS[name]
        for i in range(200):
            draw = scenario.sample(rng, i, 200)
            assert 1 <= draw.nodes <= CLUSTER_NODES
            assert 0 < draw.memory_gb <= CLUSTER_MEMORY_GB
            assert draw.duration >= 1.0

    def test_homogeneous_short_spec(self, rng):
        scenario = SCENARIOS["homogeneous_short"]
        for i in range(100):
            draw = scenario.sample(rng, i, 100)
            assert draw.nodes == 2
            assert draw.memory_gb == 4.0
            assert 30.0 <= draw.duration <= 120.0

    def test_resource_sparse_spec(self, rng):
        scenario = SCENARIOS["resource_sparse"]
        for i in range(100):
            draw = scenario.sample(rng, i, 100)
            assert draw.nodes == 1
            assert draw.memory_gb <= 8.0
            assert 30.0 <= draw.duration <= 300.0

    def test_long_job_dominant_mixture(self):
        rng = np.random.default_rng(5)
        scenario = SCENARIOS["long_job_dominant"]
        draws = [scenario.sample(rng, i, 1000) for i in range(1000)]
        long_jobs = [d for d in draws if d.duration == 50_000.0]
        short_jobs = [d for d in draws if d.duration == 500.0]
        assert len(long_jobs) + len(short_jobs) == 1000
        assert 0.15 <= len(long_jobs) / 1000 <= 0.25
        assert all(d.nodes == 128 for d in long_jobs)
        assert all(d.nodes == 2 for d in short_jobs)

    def test_high_parallelism_node_range(self, rng):
        scenario = SCENARIOS["high_parallelism"]
        nodes = [scenario.sample(rng, i, 100).nodes for i in range(100)]
        assert min(nodes) >= 64
        assert max(nodes) <= 256

    def test_adversarial_structure(self, rng):
        scenario = SCENARIOS["adversarial"]
        first = scenario.sample(rng, 0, 50)
        assert first.nodes == 128
        assert first.duration == 100_000.0
        rest = [scenario.sample(rng, i, 50) for i in range(1, 50)]
        assert all(d.nodes == 1 and d.duration == 60.0 for d in rest)

    def test_bursty_idle_alternation(self, rng):
        scenario = SCENARIOS["bursty_idle"]
        short = scenario.sample(rng, 0, 10)
        long = scenario.sample(rng, 1, 10)
        assert short.duration <= 300.0
        assert long.duration >= 4000.0

    def test_heterogeneous_mix_gamma_mean(self):
        rng = np.random.default_rng(9)
        scenario = SCENARIOS["heterogeneous_mix"]
        durations = [scenario.sample(rng, i, 3000).duration for i in range(3000)]
        # Gamma(1.5, 300) has mean 450 (clamping at 1s barely shifts it).
        assert np.mean(durations) == pytest.approx(450.0, rel=0.1)

    def test_heterogeneity_scores(self):
        assert SCENARIOS["heterogeneous_mix"].heterogeneity == 1.0
        assert SCENARIOS["homogeneous_short"].heterogeneity < 0.2


class TestClamping:
    def test_clamped_draw(self):
        from repro.workloads.scenarios import JobDraw

        draw = JobDraw(duration=0.1, nodes=1000, memory_gb=10_000.0).clamped()
        assert draw.duration == 1.0
        assert draw.nodes == CLUSTER_NODES
        assert draw.memory_gb == CLUSTER_MEMORY_GB

    def test_clamped_minimum(self):
        from repro.workloads.scenarios import JobDraw

        draw = JobDraw(duration=5.0, nodes=0, memory_gb=0.0).clamped()
        assert draw.nodes == 1
        assert draw.memory_gb == 0.5
